"""Table 1: model memory footprint per precision.

Regenerates the paper's Table 1 from the architecture descriptions and
quantized storage model, and checks every cell against the published
value.
"""

import pytest

from repro.calibration import paperdata
from repro.models import PAPER_MODELS, footprint_table
from repro.reporting import compare_rows, deviation_summary, format_table


def _build():
    return footprint_table(PAPER_MODELS.values())


def test_table1_footprints(benchmark, emit):
    rows = benchmark(_build)

    paper_rows = [
        {"model": m, **{f"{p}_gb": v for p, v in cells.items() if p != "params_b"},
         "params_b": cells["params_b"]}
        for m, cells in paperdata.TABLE1_FOOTPRINT.items()
    ]
    cols = ["fp32_gb", "fp16_gb", "int8_gb", "int4_gb"]
    ours = [{**r} for r in rows]
    for r, p in zip(ours, paper_rows):
        assert r["model"] == p["model"]
    compared = compare_rows(paper_rows, ours, ["model"], cols)
    summary = deviation_summary(compared, cols)

    emit(
        "table1_footprint",
        format_table(rows, title="Table 1 — model weights per precision (GB)")
        + "\n\n"
        + format_table(compared, title="paper vs ours")
        + "\n\n"
        + format_table(
            [{"column": k, **v} for k, v in summary.items()],
            title="deviation summary",
        ),
        rows,
    )

    # Every cell within 6% of the paper (8% for the paper's own red
    # 'estimate' cells on Deepseek).
    for row in compared:
        for c in cols:
            dev = row[f"{c}_dev"]
            tol = 0.08 if row["model"] == "Deepseek-Qwen" else 0.06
            assert dev is not None and abs(dev) <= tol, (row["model"], c, dev)
