"""Ablations of the design choices DESIGN.md calls out.

Each ablation toggles one mechanism and quantifies its contribution:

1. DynamicCache vs StaticCache — the concat-churn memory overhead.
2. Eager-attention score buffers — the Phi-2 OOM mechanism.
3. Allocator GC threshold — fragmentation control under growing streams.
4. GQA expansion traffic — the long-context latency collapse.
"""

from conftest import N_RUNS

from repro.backends import get_backend
from repro.engine import EngineCostParams, GenerationSpec, ServingEngine
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepTimer
from repro.engine.request import BatchRequest
from repro.engine.state import EngineState
from repro.hardware import get_device
from repro.memsys.allocator import CachingAllocator
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.reporting import format_table
from repro.sim import Environment
from repro.units import gib


def test_dynamic_vs_static_kv_cache_memory(benchmark, emit):
    def build():
        rows = []
        for mode in ("dynamic", "static"):
            eng = ServingEngine(
                get_device("jetson-orin-agx-64gb"), get_model("llama"),
                Precision.FP16,
                backend=get_backend("hf-transformers", kv_mode=mode),
            )
            res = eng.run(batch_size=32, gen=GenerationSpec(256, 768),
                          n_runs=N_RUNS)
            rows.append({
                "kv_mode": mode,
                "ram_gb": round(res.model_gb + res.incremental_gb, 2),
                "latency_s": round(res.mean_latency_s, 2),
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_kv_cache_mode",
         format_table(rows, title="Ablation — DynamicCache vs StaticCache (Llama, sl=1024)"),
         rows)
    dyn, sta = rows[0], rows[1]
    assert dyn["ram_gb"] > sta["ram_gb"] * 1.05  # churn costs real memory
    assert dyn["latency_s"] > sta["latency_s"]   # and concat copies cost time


def _phi2_peak(eager: bool, gen: GenerationSpec):
    from repro.models.footprint import weight_bytes

    device = get_device("jetson-orin-agx-64gb")
    allocator = CachingAllocator(device.memory.usable_bytes)
    arch = get_model("phi2")
    allocator.alloc(weight_bytes(arch, Precision.FP16), tag="weights")
    timer = StepTimer(arch, device, Precision.FP16)
    execu = BatchExecutor(timer, allocator, eager_score_buffers=eager,
                          workspace_bytes=int(0.45e9))
    env = Environment()
    res = env.run(until=env.process(
        execu.run(env, BatchRequest(batch_size=32, gen=gen), EngineState())
    ))
    return res.oom, allocator.stats.peak_reserved / 1e9


def test_eager_score_buffers_cause_phi2_oom(benchmark, emit):
    def build():
        rows = []
        for sl, gen in ((256, GenerationSpec(64, 192)), (512, GenerationSpec(128, 384))):
            for eager in (True, False):
                oom, peak = _phi2_peak(eager, gen)
                rows.append({"seq_len": sl, "eager_buffers": eager,
                             "oom": oom, "peak_gb": round(peak, 1)})
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_eager_buffers",
         format_table(rows, title="Ablation — Phi-2 eager attention buffers"),
         rows)
    cell = {(r["seq_len"], r["eager_buffers"]): r for r in rows}
    # With the legacy eager path Phi-2 dies at sl=512, as the paper saw;
    # with SDPA-style attention it would have survived comfortably.
    assert cell[(512, True)]["oom"]
    assert not cell[(512, False)]["oom"]
    assert not cell[(256, True)]["oom"]
    # At sl=256 the buffers already dominate the non-weight footprint.
    weights_gb = 5.56
    eager_extra = cell[(256, True)]["peak_gb"] - weights_gb
    sdpa_extra = cell[(256, False)]["peak_gb"] - weights_gb
    assert eager_extra > 1.3 * sdpa_extra


def test_allocator_gc_bounds_fragmentation(benchmark, emit):
    from repro.memsys.kvcache import KVCache, KVCacheSpec

    def build():
        rows = []
        spec = KVCacheSpec(n_layers=32, kv_heads=8, head_dim=128)
        for gc in (None, 0.5):
            alloc = CachingAllocator(gib(48), gc_threshold=gc)
            kv = KVCache(spec, alloc, batch_size=32)
            kv.prefill(256)
            for _ in range(768):
                kv.append_token()
            rows.append({
                "gc_threshold": "off" if gc is None else gc,
                "live_gb": round(kv.live_bytes / 1e9, 2),
                "peak_reserved_gb": round(alloc.stats.peak_reserved / 1e9, 2),
                "reclaims": alloc.stats.n_reclaims,
            })
            kv.release()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_allocator_gc",
         format_table(rows, title="Ablation — allocator GC vs fragmentation (Llama KV, sl=1024)"),
         rows)
    off, on = rows[0], rows[1]
    assert on["peak_reserved_gb"] < off["peak_reserved_gb"]
    assert on["reclaims"] > 0


def test_gqa_expansion_traffic_drives_long_context_cost(benchmark, emit):
    def build():
        device = get_device("jetson-orin-agx-64gb")
        arch = get_model("llama")
        timer = StepTimer(arch, device, Precision.FP16, EngineCostParams())
        rows = []
        for context in (96, 1024):
            with_exp = timer.decode_step(32, context).seconds
            # Compare against an MHA-equivalent traffic model by zeroing
            # the expansion through a spoofed counts object.
            from repro.models.flops import decode_step_counts

            counts = decode_step_counts(arch, 32, context, timer.weight_bytes)
            no_exp = timer._combine(
                type(counts)(
                    flops=counts.flops,
                    weight_bytes_read=counts.weight_bytes_read,
                    kv_bytes_read=counts.kv_bytes_read,
                    kv_bytes_written=counts.kv_bytes_written,
                    kv_expand_bytes=0.0,
                    activation_bytes=counts.activation_bytes,
                ),
                32, 0.0, False,
            ).seconds
            rows.append({
                "context": context,
                "step_ms_with_expansion": round(with_exp * 1e3, 1),
                "step_ms_without": round(no_exp * 1e3, 1),
                "overhead": round(with_exp / no_exp - 1, 3),
            })
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_gqa_expansion",
         format_table(rows, title="Ablation — repeat_kv expansion traffic (Llama decode step)"),
         rows)
    short, long = rows[0], rows[1]
    assert long["overhead"] > 4 * max(short["overhead"], 0.01)
