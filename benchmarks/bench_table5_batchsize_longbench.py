"""Table 5 / Figure 7: batch-size sweep on LongBench.

The paper finds LongBench results within ~10% of WikiText2 under an
identical setup, attributing the gap to noise; the simulator is
deterministic, so our two workloads produce matching performance rows
by construction (documented in EXPERIMENTS.md).
"""

from _helpers import assert_latency_band, perf_report, run_batch_sweep
from conftest import N_RUNS

from repro.calibration import paperdata


def test_table5_fig7(benchmark, emit):
    rows = benchmark.pedantic(
        run_batch_sweep, args=("longbench", N_RUNS), rounds=1, iterations=1
    )
    emit(
        "table5_batchsize_longbench",
        perf_report("Table 5 — batch-size sweep, LongBench (MaxN, sl=96)",
                    rows, paperdata.TABLE5_BATCH_LONGBENCH, "batch_size"),
        rows,
    )

    assert_latency_band(rows, paperdata.TABLE5_BATCH_LONGBENCH, "batch_size")

    # The paper's cross-workload throughput gap stays within ~10%; check
    # the two paper tables agree with each other the way ours do.
    for model in paperdata.MODELS:
        for bs in paperdata.BATCH_SIZES:
            wiki = paperdata.TABLE4_BATCH_WIKITEXT[model][bs][2]
            lb = paperdata.TABLE5_BATCH_LONGBENCH[model][bs][2]
            assert abs(lb / wiki - 1.0) < 0.21  # paper's own variation band
