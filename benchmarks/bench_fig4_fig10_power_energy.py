"""Figures 4 & 10: power load and energy vs batch size per precision.

MAXN, sl=96, batch sizes 1-128, precisions FP16/INT8/INT4 per model
(skipping cells the board cannot fit).  Shape checks encode §3.3 and
§A.3: INT8 draws the least power (it keeps only ~60% of the GPU busy),
INT4 draws the most and wastes the most energy, and the FP16-vs-INT8
energy ordering is model-dependent but always close.
"""

from conftest import N_RUNS
from _helpers import sweep_rows

from repro.core import ExperimentSpec
from repro.core.sweeps import batch_quant_power_sweep
from repro.quant.dtypes import Precision
from repro.reporting import ascii_lines, format_table

BATCH_SIZES = (1, 4, 16, 64, 128)
MODELS = ("phi2", "llama", "mistral", "deepq")


def _build():
    out = {}
    for m in MODELS:
        out[m] = batch_quant_power_sweep(
            ExperimentSpec.for_model(m, n_runs=N_RUNS), batch_sizes=BATCH_SIZES)
    return out


def _rows(data):
    rows = []
    for m, by_prec in data.items():
        for prec, results in by_prec.items():
            for r in results:
                base = sweep_rows([r], "batch_size", lambda x: x.batch_size)[0]
                base["precision"] = prec.value
                rows.append(base)
    return rows


def test_fig4_fig10_power_energy(benchmark, emit):
    data = benchmark.pedantic(_build, rounds=1, iterations=1)
    rows = _rows(data)

    panels = [format_table(
        rows, title="Fig 4/10 — power & energy vs batch size x precision",
        columns=["model", "precision", "batch_size", "power_w", "energy_j",
                 "latency_s"],
    )]
    for m in ("Llama3", "Mistral-Base"):
        series = {}
        for prec in ("fp16", "int8", "int4"):
            series[prec] = [
                next((r["power_w"] for r in rows
                      if r["model"] == m and r["precision"] == prec
                      and r["batch_size"] == bs), None)
                for bs in BATCH_SIZES
            ]
        panels.append(ascii_lines(series, [str(b) for b in BATCH_SIZES],
                                  title=f"{m} power (W) vs batch size"))
    emit("fig4_fig10_power_energy", "\n\n".join(panels), rows)

    cell = {(r["model"], r["precision"], r["batch_size"]): r for r in rows}

    for model in ("MS-Phi2", "Llama3", "Mistral-Base"):
        for bs in BATCH_SIZES:
            fp16 = cell[(model, "fp16", bs)]
            int8 = cell[(model, "int8", bs)]
            int4 = cell[(model, "int4", bs)]
            # INT8 draws the least power; INT4 the most (paper: INT8 uses
            # ~60% of the GPU, INT4 saturates it).
            assert int8["power_w"] < fp16["power_w"], (model, bs)
            assert int8["power_w"] < int4["power_w"], (model, bs)
            # INT4 is the energy loser at every batch size.
            assert int4["energy_j"] > fp16["energy_j"], (model, bs)
            assert int4["energy_j"] > int8["energy_j"], (model, bs)
            # FP16 and INT8 energy stay within a factor band (the paper
            # reports them comparable-to-favourable for INT8; our INT8
            # latency penalty pushes small models toward the high end —
            # see EXPERIMENTS.md).
            ratio = int8["energy_j"] / fp16["energy_j"]
            assert 0.4 < ratio < 2.0, (model, bs, ratio)

    # Deepseek: FP16 cannot run; INT8 must beat INT4 on energy (§A.3).
    for bs in BATCH_SIZES:
        assert cell[("Deepseek-Qwen", "fp16", bs)]["energy_j"] is None
        assert cell[("Deepseek-Qwen", "int8", bs)]["energy_j"] < \
            cell[("Deepseek-Qwen", "int4", bs)]["energy_j"]

    # Power grows with batch size for FP16 (more compute saturation).
    for model in ("Llama3", "Mistral-Base"):
        powers = [cell[(model, "fp16", bs)]["power_w"] for bs in BATCH_SIZES]
        assert powers[-1] > powers[0]
