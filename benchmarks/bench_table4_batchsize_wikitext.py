"""Table 4 / Figures 1 & 6: batch-size sweep on WikiText2.

MAXN, sl=96 (32 input + 64 output), FP16 (INT8 for Deepseek-Qwen),
batch sizes 1-128.  Regenerates RAM / latency / throughput per model
and compares each cell with the paper.
"""

from _helpers import assert_latency_band, perf_report, run_batch_sweep
from conftest import N_RUNS

from repro.calibration import paperdata


def test_table4_fig1_fig6(benchmark, emit):
    rows = benchmark.pedantic(
        run_batch_sweep, args=("wikitext2", N_RUNS), rounds=1, iterations=1
    )
    emit(
        "table4_batchsize_wikitext",
        perf_report("Table 4 — batch-size sweep, WikiText2 (MaxN, sl=96)",
                    rows, paperdata.TABLE4_BATCH_WIKITEXT, "batch_size"),
        rows,
    )

    # Shape assertions (§3.1): throughput rises with batch size,
    # latency rises, memory rises; nothing OOMs.
    for model in paperdata.MODELS:
        mine = [r for r in rows if r["model"] == model]
        mine.sort(key=lambda r: r["batch_size"])
        tps = [r["throughput_tok_s"] for r in mine]
        rams = [r["ram_gb"] for r in mine]
        assert all(v is not None for v in tps)
        assert tps == sorted(tps)
        assert rams == sorted(rams)

    assert_latency_band(rows, paperdata.TABLE4_BATCH_WIKITEXT, "batch_size")
