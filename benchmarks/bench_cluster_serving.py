"""Cluster serving: routing policies across load levels (extension).

The paper characterises one Orin; this bench puts a heterogeneous
three-node fleet (Orin AGX 64GB + Orin AGX 32GB + Xavier AGX) behind
each routing policy and sweeps the arrival rate.  Asserted shape:

- every policy completes or rejects every request (conservation);
- the energy-aware policy reaches a lower fleet J/token than
  round-robin at equal-or-better SLO attainment on at least one load
  level (it steers traffic off the inefficient Xavier);
- the power-mode autoscaler cuts fleet energy on a bursty trace versus
  pinning every node at MAXN, at equal SLO attainment.
"""

from repro.cluster import (
    AutoscalerConfig,
    EdgeCluster,
    FleetSpec,
    NodeSpec,
    PowerModeAutoscaler,
    SLOSpec,
    bursty_workload,
    list_policies,
    poisson_workload,
)
from repro.reporting import format_table

FLEET = (
    NodeSpec("jetson-orin-agx-64gb"),
    NodeSpec("jetson-orin-agx-32gb"),
    NodeSpec("jetson-xavier-agx-32gb"),
)
SLO = SLOSpec(ttft_s=20.0, tpot_s=1.5)
RATES = (1.0, 2.0, 4.0)
N_REQUESTS = 60


def _serve(policy: str, rate: float, autoscale: bool = False,
           trace: str = "poisson"):
    cluster = EdgeCluster.of(
        FleetSpec.of(list(FLEET), model="llama", precision="fp16",
                     policy=policy),
        slo=SLO,
    )
    if autoscale:
        cluster.attach_autoscaler(PowerModeAutoscaler(
            cluster.env, cluster.nodes, AutoscalerConfig(period_s=2.0)
        ))
    if trace == "poisson":
        reqs = poisson_workload(rate, N_REQUESTS, input_tokens=64,
                                output_tokens=48, seed=11)
    else:
        # Long calm stretches with short flash crowds: the regime where
        # running calm traffic at reduced clocks pays (arrival-limited,
        # so the slower service does not stretch the makespan).
        reqs = bursty_workload(rate, 15.0 * rate, N_REQUESTS,
                               input_tokens=64, output_tokens=48,
                               mean_calm_s=40.0, mean_burst_s=8.0, seed=11)
    return cluster.run(reqs)


def _policy_sweep():
    rows = []
    for rate in RATES:
        for policy in list_policies():
            rep = _serve(policy, rate)
            assert rep.completed + rep.rejected == rep.n_requests, policy
            rows.append({"rate_req_s": rate, **rep.as_row()})
    return rows


def test_routing_policies_across_load(benchmark, emit):
    rows = benchmark.pedantic(_policy_sweep, rounds=1, iterations=1)
    emit(
        "cluster_routing_policies",
        format_table(rows, title="routing policies across arrival rates "
                                 "(3-node heterogeneous fleet, Llama3 fp16)"),
        rows,
    )
    by = {(r["rate_req_s"], r["policy"]): r for r in rows}
    wins = [
        rate for rate in RATES
        if by[(rate, "energy-aware")]["j_per_token"]
        < by[(rate, "round-robin")]["j_per_token"]
        and by[(rate, "energy-aware")]["slo_attainment"]
        >= by[(rate, "round-robin")]["slo_attainment"]
    ]
    assert wins, "energy-aware never beat round-robin on J/token at equal SLO"


def test_autoscaler_saves_energy_on_bursty_trace(benchmark, emit):
    def _build():
        fixed = _serve("jsq", 0.4, autoscale=False, trace="bursty")
        scaled = _serve("jsq", 0.4, autoscale=True, trace="bursty")
        return [
            {"config": "maxn-pinned", **fixed.as_row()},
            {"config": "autoscaled", **scaled.as_row()},
        ]

    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit(
        "cluster_autoscaling",
        format_table(rows, title="power-mode autoscaler vs MAXN-pinned "
                                 "fleet (bursty trace, JSQ routing)"),
        rows,
    )
    fixed, scaled = rows
    assert scaled["fleet_energy_j"] < fixed["fleet_energy_j"]
    assert scaled["slo_attainment"] >= fixed["slo_attainment"]
