"""Multi-tenant fair serving: schedulers, throttling, prefix affinity.

The fairness subsystem's committed evidence (extension beyond the
paper's single-tenant measurements):

- **Scheduler sweep** — the ``repro fairness`` grid over the balanced
  and flooded tenant mixes.  Asserted shape: on the flood mix VTC and
  WSC raise the token-weighted Jain index strictly above FCFS, because
  the polite tenants jump the flooder's backlog instead of waiting
  minutes for first token.
- **Adversarial comparison** — a front-loaded 20-request burst from one
  tenant against two trickling polite tenants, laid side by side with
  :func:`repro.reporting.fairness_comparison`; with the token throttle
  on, the flooder's injection is capped at the door and its share of
  served tokens drops below half.
- **Prefix affinity** — multi-turn sessions on a two-node paged fleet
  with ``swap-lru`` KV lifecycle: the ``prefix-affinity`` router keeps
  each conversation on the node that cached its history, lifting the
  radix prefix hit rate over round-robin placement.
- **Weighted entitlements** — the ``weighted`` mix carries non-equal
  tenant weights into the schedulers (premium pays for 3x); the
  ``weight_fidelity`` column (served tokens per unit entitlement inside
  the contended window) shows VTC tracking the 3:1 ratio while FCFS
  serves demand.
"""

import numpy as np

from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
from repro.cluster.slo import SLOSpec
from repro.cluster.workload import ClusterRequest
from repro.fairness import (FairnessSpec, TokenThrottle, run_fairness,
                            session_workload)
from repro.reporting import fairness_comparison, format_table

SWEEP_SPEC = FairnessSpec(  # fcfs/vtc/wsc x all three mixes, 24 sessions
    mixes=("balanced", "flood", "weighted"))

ADVERSARIAL_WEIGHTS = {"flood": 1.0, "polite-a": 1.0, "polite-b": 1.0}


def _adversarial_workload(seed=0):
    """20 flood requests in the first second; 3+3 polite stragglers."""
    rng = np.random.default_rng(seed)
    reqs = [ClusterRequest(req_id=i,
                           arrival_s=float(rng.uniform(0.0, 1.0)),
                           input_tokens=32, output_tokens=32,
                           tenant="flood")
            for i in range(20)]
    rid = 20
    for tenant in ("polite-a", "polite-b"):
        for _ in range(3):
            reqs.append(ClusterRequest(
                req_id=rid, arrival_s=float(rng.uniform(1.0, 30.0)),
                input_tokens=24, output_tokens=24, tenant=tenant))
            rid += 1
    return sorted(reqs, key=lambda r: (r.arrival_s, r.req_id))


def _adversarial_run(scheduler, throttle=None):
    cluster = EdgeCluster.of(
        FleetSpec.of([NodeSpec("jetson-orin-agx-64gb", max_batch=1,
                               scheduler=scheduler)]),
        slo=SLOSpec(ttft_s=10.0), throttle=throttle,
        tenant_weights=ADVERSARIAL_WEIGHTS)
    return cluster.run(_adversarial_workload())


def _session_run(policy):
    cluster = EdgeCluster.of(FleetSpec.of(
        [NodeSpec("jetson-orin-agx-64gb", max_batch=4, runtime="paged",
                  kv_policy="swap-lru"),
         NodeSpec("jetson-orin-agx-64gb", max_batch=4, runtime="paged",
                  kv_policy="swap-lru")],
        policy=policy))
    inters = session_workload(2.0, 12, mean_turns=4.0, max_turns=6,
                              mean_think_time_s=0.5, seed=0)
    return cluster.run_interactions(inters)


def test_fair_schedulers_beat_fcfs_on_the_flood_mix(benchmark, emit):
    report = benchmark.pedantic(lambda: run_fairness(SWEEP_SPEC),
                                rounds=1, iterations=1)
    emit(
        "fairness_sweep",
        format_table(report.rows,
                     title="Fair-scheduler sweep (Orin AGX 64GB, "
                           "Llama3.1-8B fp16, multi-turn sessions)"),
        report.rows,
    )
    by = {(r["mix"], r["scheduler"]): r for r in report.rows}

    # Flood mix: fair queueing strictly raises token-weighted Jain.
    fcfs = by[("flood", "fcfs")]
    for name in ("vtc", "wsc"):
        fair = by[("flood", name)]
        assert fair["jain_tokens"] > fcfs["jain_tokens"], name
        # The polite tenants' first tokens arrive in seconds, not the
        # minutes FCFS makes them wait behind the flooder's backlog.
        assert fair["p99_ttft_s"] < fcfs["p99_ttft_s"], name

    # Balanced mix: no tenant floods, so the discipline barely matters.
    spread = [by[("balanced", s)]["jain_tokens"]
              for s in ("fcfs", "vtc", "wsc")]
    assert max(spread) - min(spread) < 0.2

    # Weighted mix: premium's 3x entitlement reaches the schedulers;
    # VTC serves tokens near the entitled ratio while weight-blind
    # FCFS serves demand (~1:1, a third of the entitlement).
    assert by[("weighted", "vtc")]["weight_fidelity"] >= 0.5
    assert by[("weighted", "vtc")]["weight_fidelity"] > \
        by[("weighted", "fcfs")]["weight_fidelity"] + 0.2

    # Every point balanced its token books (run_fairness raises
    # otherwise); the wasted column exists and stayed finite.
    assert all(r["wasted_tokens"] >= 0 for r in report.rows)


def test_adversarial_comparison_and_throttle(benchmark, emit):
    def _runs():
        rows = [(s, _adversarial_run(s)) for s in ("fcfs", "vtc", "wsc")]
        rows.append(("fcfs+throttle", _adversarial_run(
            "fcfs", throttle=TokenThrottle(20.0, burst_s=4.0))))
        return rows

    runs = benchmark.pedantic(_runs, rounds=1, iterations=1)
    rows = fairness_comparison(runs)
    emit(
        "fairness_adversarial",
        format_table(rows,
                     title="Adversarial flood vs polite tenants "
                           "(Orin AGX 64GB, max_batch=1, TTFT SLO 10s)"),
        rows,
    )
    by = {r["scheduler"]: r for r in rows}
    assert by["vtc"]["jain_tokens_gain"] > 0
    assert by["wsc"]["jain_tokens_gain"] > 0
    assert by["vtc"]["min_share_gain"] > 0

    throttled = next(rep for label, rep in runs
                     if label == "fcfs+throttle")
    flood = next(t for t in throttled.tenants if t.tenant == "flood")
    total = sum(t.served_tokens for t in throttled.tenants)
    assert flood.throttled >= 10
    assert flood.served_tokens / total < 0.5
    for name in ("polite-a", "polite-b"):
        t = next(t for t in throttled.tenants if t.tenant == name)
        assert t.throttled == 0 and t.completed == 3


def test_prefix_affinity_lifts_hit_rate_on_swap_lru_fleet(benchmark, emit):
    def _pair():
        return [(p, _session_run(p))
                for p in ("round-robin", "prefix-affinity")]

    pair = benchmark.pedantic(_pair, rounds=1, iterations=1)
    rows = [{
        "routing": label,
        "kv_policy": "swap-lru",
        "runtime": "paged",
        "completed": rep.completed,
        "prefix_hit_tokens": rep.prefix_hit_tokens,
        "prefix_hit_rate": round(rep.prefix_hit_rate, 3),
        "p99_ttft_s": round(rep.p99_ttft_s, 3),
        "goodput_rps": round(rep.goodput_rps, 4),
        "j_per_token": round(rep.j_per_token, 4),
    } for label, rep in pair]
    emit(
        "fairness_prefix_affinity",
        format_table(rows,
                     title="Session routing on a 2-node paged fleet "
                           "(swap-lru KV lifecycle, multi-turn sessions)"),
        rows,
    )
    rr, affinity = rows
    assert affinity["prefix_hit_rate"] > rr["prefix_hit_rate"]
    assert affinity["prefix_hit_tokens"] > rr["prefix_hit_tokens"]
    assert affinity["completed"] == rr["completed"]


def test_vtc_fairness_holds_under_downshifted_power_mode(benchmark, emit):
    """ROADMAP close-out: fairness x power mode.  Downshifting the node
    (nvpmodel B) slows everything, but the *fairness* of the schedule
    is a property of the queueing discipline, not the clock: VTC's
    token-weighted Jain edge over FCFS survives the downshift nearly
    unchanged."""
    spec = FairnessSpec(mixes=("flood",), schedulers=("fcfs", "vtc"),
                        power_modes=("MAXN", "B"))
    report = benchmark.pedantic(lambda: run_fairness(spec),
                                rounds=1, iterations=1)
    emit(
        "fairness_power_modes",
        format_table(report.rows,
                     title="Fairness x power mode (flood mix, "
                           "Orin AGX 64GB downshifted MAXN -> B)"),
        report.rows,
    )
    by = {(r["scheduler"], r["power_mode"]): r for r in report.rows}
    for mode in ("MAXN", "B"):
        assert by[("vtc", mode)]["jain_tokens"] > \
            by[("fcfs", mode)]["jain_tokens"], mode
    # The downshift costs latency, not fairness: p99 TTFT grows ~50%
    # while VTC's Jain index moves by a couple percent.
    assert by[("vtc", "B")]["p99_ttft_s"] > \
        by[("vtc", "MAXN")]["p99_ttft_s"] * 1.2
    assert abs(by[("vtc", "B")]["jain_tokens"] -
               by[("vtc", "MAXN")]["jain_tokens"]) < 0.05
