"""The analytic capacity planner: DES cross-validation and the search.

The ``repro plan`` tier answers deployment questions in milliseconds by
solving the fluid model instead of replaying the DES.  Its committed
evidence:

- **Cross-validation grid** — every (workload, router, runtime) cell of
  the default :class:`~repro.plan.ValidationSpec` replayed through both
  tiers on the *same* deterministic arrival trace.  Asserted shape: at
  least :data:`~repro.plan.DEFAULT_PASS_FRACTION` of cells keep both
  steady throughput and mean request latency within
  :data:`~repro.plan.DEFAULT_TOLERANCE` relative error of the DES.  The
  CSV is written via :func:`~repro.plan.validation_rows_csv`, the same
  canonical bytes ``repro plan --validate --csv`` emits, so CI can
  byte-diff a fresh run against this committed artifact.
- **Capacity search** — the default :class:`~repro.plan.PlanSpec`
  answered end to end; the whole candidate walk must finish inside the
  one-second interactivity budget that justifies the analytic tier.
"""

import time

from repro.plan import (DEFAULT_PASS_FRACTION, PlanSpec, ValidationSpec,
                        plan, run_validation, validation_rows_csv)
from repro.reporting import format_table, plan_table

VALIDATION_SPEC = ValidationSpec()  # 4 workloads x 3 routers x 3 runtimes
PLAN_SPEC = PlanSpec()


def test_fluid_model_tracks_the_des(benchmark, emit, results_dir):
    report = benchmark.pedantic(lambda: run_validation(VALIDATION_SPEC),
                                rounds=1, iterations=1)
    text = format_table(
        report.rows,
        title="Fluid-vs-DES validation (2x Orin AGX 64GB, Llama3.1-8B "
              "fp16 MAXN, 60 requests, identical arrival traces)")
    text += (f"\nwithin_tolerance={report.within_fraction:.3f} "
             f"(tolerance={VALIDATION_SPEC.tolerance}, "
             f"gate={DEFAULT_PASS_FRACTION})")
    emit("plan_validation", text)
    # The canonical CSV bytes (identical to `repro plan --validate
    # --csv`), not write_csv's DictWriter output — CI byte-diffs this.
    (results_dir / "plan_validation.csv").write_text(
        validation_rows_csv(report))

    assert report.within_fraction >= DEFAULT_PASS_FRACTION
    # Both metrics exist in every cell and the DES actually ran.
    for row in report.rows:
        assert row["des_tput_tok_s"] > 0
        assert row["des_latency_s"] > 0


def test_capacity_search_answers_inside_a_second(benchmark, emit):
    start = time.perf_counter()
    report = plan(PLAN_SPEC)
    elapsed = time.perf_counter() - start
    benchmark.pedantic(lambda: plan(PLAN_SPEC), rounds=1, iterations=1)

    rows = plan_table(report)
    emit(
        "plan_capacity",
        format_table(rows,
                     title=f"Capacity search: {PLAN_SPEC.model} @ "
                           f"{PLAN_SPEC.rate_per_s} req/s, TTFT SLO "
                           f"{PLAN_SPEC.slo_ttft_s}s"),
        rows,
    )
    assert elapsed < 1.0
    assert report.chosen is not None
    assert report.chosen["slo_ok"]
    # The chosen row is marked in the emitted table.
    assert any(r["chosen"] for r in rows)
