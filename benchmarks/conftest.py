"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper, prints it in
paper format, writes it (plus the paper-vs-ours comparison) under
``benchmarks/results/``, and asserts the qualitative shape.

The simulator is deterministic, so the paper's 5-run averaging protocol
adds no information here; benches default to 2 measured runs per
configuration to keep wall time short.  Override with the
``REPRO_BENCH_RUNS`` environment variable.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Measured runs per configuration (paper: 5; the sim is deterministic).
N_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """emit(name, text, rows=None): print + persist one artifact."""
    from repro.reporting import write_csv

    def _emit(name: str, text: str, rows: Sequence[Dict] = None) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")
        if rows:
            write_csv(results_dir / f"{name}.csv", list(rows))

    return _emit


def run_result_rows(results) -> List[Dict]:
    """RunResult list -> flat dict rows (OOM-aware)."""
    rows = []
    for r in results:
        row = r.as_row()
        if r.oom:
            row["ram_gb"] = None
            row["latency_s"] = None
            row["throughput_tok_s"] = None
            row["power_w"] = None
            row["energy_j"] = None
        else:
            row["ram_gb"] = round(r.model_gb + r.incremental_gb, 2)
        rows.append(row)
    return rows
