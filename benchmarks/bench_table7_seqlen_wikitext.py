"""Table 7 / Figure 9: sequence-length sweep on WikiText2."""

from _helpers import assert_latency_band, perf_report, run_seqlen_sweep
from conftest import N_RUNS

from repro.calibration import paperdata


def test_table7_fig9(benchmark, emit):
    rows = benchmark.pedantic(
        run_seqlen_sweep, args=("wikitext2", N_RUNS), rounds=1, iterations=1
    )
    emit(
        "table7_seqlen_wikitext",
        perf_report("Table 7 — sequence-length sweep, WikiText2 (MaxN, bs=32)",
                    rows, paperdata.TABLE7_SEQLEN_WIKITEXT, "seq_len"),
        rows,
    )

    # Same OOM pattern as Table 6.
    phi = {r["seq_len"]: r for r in rows if r["model"] == "MS-Phi2"}
    assert phi[512]["latency_s"] is None and phi[1024]["latency_s"] is None

    # Llama latency grows superlinearly with sequence length (KV concat
    # churn + GQA expansion traffic): quadrupling sl from 256 to 1024
    # must much more than quadruple latency.
    llama = {r["seq_len"]: r for r in rows if r["model"] == "Llama3"}
    assert llama[1024]["latency_s"] > 4.5 * llama[256]["latency_s"]

    assert_latency_band(rows, paperdata.TABLE7_SEQLEN_WIKITEXT, "seq_len")
