"""Figures 3 & 11: quantization impact on throughput, latency, memory.

MAXN, bs=32, sl=96; FP32 -> INT4 for all four models, with the paper's
OOM cells (FP32 Mistral, FP32/FP16 Deepseek).  Shape checks encode the
§3.3 findings: INT8 cuts RAM roughly in half but *slows* small models
on this GPU (bitsandbytes fallback path), INT4 is slower still, and
Mistral's INT8 penalty is the mildest of the FP16-capable models.
"""

from conftest import N_RUNS
from _helpers import sweep_rows

from repro.core import ExperimentSpec
from repro.core.sweeps import quantization_sweep
from repro.quant.dtypes import Precision
from repro.reporting import ascii_bars, format_table

MODELS = ("phi2", "llama", "mistral", "deepq")


def _build():
    rows = []
    for m in MODELS:
        res = quantization_sweep(ExperimentSpec.for_model(m, n_runs=N_RUNS))
        rows.extend(sweep_rows(res, "precision",
                               lambda r: r.precision.value))
    return rows


def test_fig3_fig11_quantization(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)

    panels = [format_table(rows, title="Fig 3/11 — quantization sweep (MaxN, bs=32, sl=96)")]
    for metric, unit in (("latency_s", "s"), ("ram_gb", "GB")):
        for model in ("MS-Phi2", "Llama3", "Mistral-Base", "Deepseek-Qwen"):
            vals = {r["precision"]: r[metric] for r in rows if r["model"] == model}
            panels.append(ascii_bars(vals, title=f"{model} {metric}", unit=unit))
    emit("fig3_fig11_quantization", "\n\n".join(panels), rows)

    cell = {(r["model"], r["precision"]): r for r in rows}

    # OOM pattern identical to the paper.
    assert cell[("Mistral-Base", "fp32")]["latency_s"] is None
    assert cell[("Deepseek-Qwen", "fp32")]["latency_s"] is None
    assert cell[("Deepseek-Qwen", "fp16")]["latency_s"] is None
    assert cell[("MS-Phi2", "fp32")]["latency_s"] is not None

    # INT8 slower than FP16 for small models; RAM roughly halved
    # (weights-dominated models show the full saving).
    for model in ("MS-Phi2", "Llama3"):
        fp16, int8 = cell[(model, "fp16")], cell[(model, "int8")]
        assert int8["latency_s"] > 1.25 * fp16["latency_s"]
    assert cell[("Llama3", "int8")]["ram_gb"] < 0.70 * cell[("Llama3", "fp16")]["ram_gb"]

    # INT8 penalties sit in a consistent band for every FP16-capable
    # model.  (The paper reports Mistral's penalty as near-zero, but that
    # claim rests on its anomalously slow FP16-Mistral baseline at bs=32
    # — see EXPERIMENTS.md; a smooth cost model keeps the penalty.)
    def penalty(model):
        return cell[(model, "int8")]["latency_s"] / cell[(model, "fp16")]["latency_s"]

    for model in ("MS-Phi2", "Llama3", "Mistral-Base"):
        assert 1.15 < penalty(model) < 1.8, (model, penalty(model))

    # INT4 never beats FP16 on latency despite its memory win.
    for model in ("MS-Phi2", "Llama3", "Mistral-Base"):
        assert cell[(model, "int4")]["latency_s"] > cell[(model, "fp16")]["latency_s"]
        assert cell[(model, "int4")]["ram_gb"] < cell[(model, "int8")]["ram_gb"]
