"""Shared builders for the performance-sweep benches."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.calibration import paperdata
from repro.core import ExperimentSpec
from repro.core.cache import ResultCache
from repro.core.sweeps import batch_size_sweep, seq_len_sweep
from repro.reporting import ascii_lines, compare_rows, deviation_summary, format_table

#: On-disk result cache shared by every bench in (and across) sessions.
#: The batch/seqlen sweeps overlap between tables (e.g. Table 4 and
#: Fig 1 consume the same grid), so later benches replay earlier work
#: from disk.  Content-addressed keys make stale hits impossible; set
#: ``REPRO_BENCH_CACHE=0`` to force recomputation.
_CACHE_DIR = Path(__file__).parent / ".cache"


def bench_cache() -> Optional[ResultCache]:
    if os.environ.get("REPRO_BENCH_CACHE", "1") == "0":
        return None
    return ResultCache(_CACHE_DIR)


_shared_cache = bench_cache()


def paper_perf_rows(table: Dict, x_name: str) -> List[Dict]:
    """Appendix table -> flat rows keyed (model, x)."""
    rows = []
    for model, cells in table.items():
        for x, (ram, lat, tp) in cells.items():
            rows.append({
                "model": model, x_name: x, "ram_gb": ram,
                "latency_s": lat, "throughput_tok_s": tp,
            })
    return rows


def sweep_rows(results, x_name: str, x_getter) -> List[Dict]:
    rows = []
    for r in results:
        oom = r.oom
        rows.append({
            "model": r.model, x_name: x_getter(r),
            "ram_gb": None if oom else round(r.model_gb + r.incremental_gb, 2),
            "latency_s": None if oom else round(r.mean_latency_s, 2),
            "throughput_tok_s": None if oom else round(r.throughput_tok_s, 2),
            "power_w": None if oom else round(r.median_power_w, 1),
            "energy_j": None if oom else round(r.energy_j, 1),
        })
    return rows


def perf_report(
    title: str,
    ours: List[Dict],
    paper_table: Dict,
    x_name: str,
) -> str:
    """Paper-format table + comparison + figure panel, as one text blob."""
    paper = paper_perf_rows(paper_table, x_name)
    value_cols = ["ram_gb", "latency_s", "throughput_tok_s"]
    compared = compare_rows(paper, ours, ["model", x_name], value_cols)
    summary = deviation_summary(compared, value_cols)

    xs = sorted({r[x_name] for r in ours})
    tp_series = {
        model: [next((r["throughput_tok_s"] for r in ours
                      if r["model"] == model and r[x_name] == x), None)
                for x in xs]
        for model in paper_table
    }
    fig = ascii_lines(tp_series, [str(x) for x in xs],
                      title=f"throughput (tok/s) vs {x_name}", log_y=True)

    return "\n\n".join([
        format_table(ours, title=title),
        fig,
        format_table(compared, title="paper vs ours",
                     columns=["model", x_name] + [f"{c}_{s}" for c in value_cols
                                                  for s in ("paper", "ours", "dev")]),
        format_table([{"column": k, **v} for k, v in summary.items()],
                     title="deviation summary"),
    ])


def run_batch_sweep(workload: str, n_runs: int,
                    models: Sequence[str] = ("phi2", "llama", "mistral", "deepq"),
                    batch_sizes=paperdata.BATCH_SIZES,
                    runtime: str = "hf-transformers") -> List[Dict]:
    out = []
    for m in models:
        spec = ExperimentSpec.for_model(m, workload=workload, n_runs=n_runs,
                                        runtime=runtime)
        res = batch_size_sweep(spec, batch_sizes=batch_sizes,
                               cache=_shared_cache)
        out.extend(sweep_rows(res, "batch_size", lambda r: r.batch_size))
    return out


def run_seqlen_sweep(workload: str, n_runs: int,
                     models: Sequence[str] = ("phi2", "llama", "mistral", "deepq"),
                     seq_lengths=paperdata.SEQ_LENGTHS,
                     runtime: str = "hf-transformers") -> List[Dict]:
    out = []
    for m in models:
        spec = ExperimentSpec.for_model(m, workload=workload, n_runs=n_runs,
                                        runtime=runtime)
        res = seq_len_sweep(spec, seq_lengths=seq_lengths,
                            cache=_shared_cache)
        out.extend(sweep_rows(res, "seq_len", lambda r: r.gen.total_tokens))
    return out


def assert_latency_band(ours: List[Dict], paper_table: Dict, x_name: str,
                        band: float = 2.2) -> None:
    """Every non-OOM latency within a multiplicative band of the paper."""
    paper = {(r["model"], r[x_name]): r
             for r in paper_perf_rows(paper_table, x_name)}
    for r in ours:
        p = paper[(r["model"], r[x_name])]
        if p["latency_s"] is None:
            assert r["latency_s"] is None, (r, "paper says OOM")
            continue
        assert r["latency_s"] is not None, (r, "we OOM, paper does not")
        ratio = r["latency_s"] / p["latency_s"]
        assert 1 / band < ratio < band, (r["model"], r[x_name], ratio)
