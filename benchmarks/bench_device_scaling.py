"""Extension bench: LLM serving across the Jetson family.

The authors' earlier poster (paper ref [7]) measured the Xavier AGX;
this bench sweeps the whole simulated device ladder — Orin Nano 8GB to
A100 — for each paper model, showing which (model, device) pairs are
feasible at all and how decode throughput tracks memory bandwidth (the
roofline prediction for memory-bound decode).
"""

from conftest import N_RUNS

from repro.engine import GenerationSpec, ServingEngine
from repro.errors import OutOfMemoryError
from repro.hardware import get_device
from repro.models import get_model
from repro.models.roofline import decode_roofline
from repro.quant.dtypes import Precision
from repro.reporting import format_table

DEVICES = (
    "jetson-orin-nano-8gb",
    "jetson-orin-nx-16gb",
    "jetson-xavier-agx-32gb",
    "jetson-orin-agx-32gb",
    "jetson-orin-agx-64gb",
    "a100-sxm-80gb",
)
MODELS = ("phi2", "llama", "mistral")
GEN = GenerationSpec(32, 64)


def _build():
    rows = []
    for dev_name in DEVICES:
        for m in MODELS:
            arch = get_model(m)
            try:
                eng = ServingEngine(get_device(dev_name), arch, Precision.FP16)
                res = eng.run(batch_size=8, gen=GEN, n_runs=N_RUNS)
                tput = None if res.oom else round(res.throughput_tok_s, 1)
                lat = None if res.oom else round(res.mean_latency_s, 2)
            except OutOfMemoryError:
                tput, lat = None, None
            rows.append({
                "device": dev_name,
                "model": arch.name,
                "fits": tput is not None,
                "latency_s": lat,
                "throughput_tok_s": tput,
            })
    return rows


def test_device_scaling(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit(
        "device_scaling",
        format_table(rows, title="FP16 serving across the device ladder (bs=8, sl=96)"),
        rows,
    )

    cell = {(r["device"], r["model"]): r for r in rows}

    # Feasibility ladder: the Nano fits nothing FP16 beyond Phi-2's
    # footprint limit; the 64GB AGX fits everything but Mistral only there
    # (among Jetsons); the A100 fits all three.
    assert not cell[("jetson-orin-nano-8gb", "Llama3")]["fits"]
    assert cell[("jetson-orin-nx-16gb", "MS-Phi2")]["fits"]
    assert not cell[("jetson-orin-nx-16gb", "Mistral-Base")]["fits"]
    assert cell[("jetson-orin-agx-64gb", "Mistral-Base")]["fits"]
    assert cell[("a100-sxm-80gb", "Mistral-Base")]["fits"]

    # The AGX 64GB leads every Jetson (most bandwidth AND most compute),
    # and the A100 leads everything.  Xavier vs Orin NX is a genuine
    # trade (Xavier: more bandwidth, much weaker Volta GPU), so no
    # ordering is asserted between them.
    for m in ("MS-Phi2",):
        nx = cell[("jetson-orin-nx-16gb", m)]["throughput_tok_s"]
        xavier = cell[("jetson-xavier-agx-32gb", m)]["throughput_tok_s"]
        agx = cell[("jetson-orin-agx-64gb", m)]["throughput_tok_s"]
        a100 = cell[("a100-sxm-80gb", m)]["throughput_tok_s"]
        assert max(nx, xavier) < agx < a100

    # Roofline sanity: all Jetson decode points at bs=8 are memory-bound.
    for dev_name in DEVICES[:-1]:
        pt = decode_roofline(get_model("phi2"), get_device(dev_name),
                             Precision.FP16, 8, 64)
        assert pt.bound == "memory", dev_name
