#!/usr/bin/env python
"""Before/after timings for the study-harness fast path.

Runs the same slice of the full study under several execution modes and
reports wall-clock speedups over the step-by-step serial baseline:

- ``baseline``      — per-token decode events, serial, no cache (the
  execution model of the original harness; kernel-cost memoization and
  the BLAS INT8 perplexity path cannot be disabled, so this *under*-
  states the end-to-end gain over the original code).
- ``fast-forward``  — decode stretches collapsed to one event each,
  vectorized decode stepping, and memoized allocator trajectories.
- ``parallel``      — fast-forward plus process fan-out (one row per
  ``--jobs`` value; the multi-core scaling picture).
- ``cache-cold``    — fast-forward, populating an empty result cache
  (single-flight claims active).
- ``cache-warm``    — every configuration served from the cache.

Every mode asserts its result rows are identical to the baseline's
before any timing is reported — speed that changes answers is a bug,
not a feature.  Every timed scenario starts from a cold process-global
state (trajectory cache cleared, worker pool torn down), so no row
inherits warmth from an earlier one.

Regression gates (CI ``speed-regression`` job): the cold fast-forward
serial run must be >= ``--min-ff-speedup`` (default 5x) over the
per-token baseline, and on a host with >= 4 cores ``--jobs 4`` must be
>= ``--min-jobs-speedup`` (default 2.5x) over fast-forward serial.

Usage::

    python benchmarks/bench_harness_speed.py            # committed numbers
    python benchmarks/bench_harness_speed.py --smoke    # CI budget check
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.cache import ResultCache  # noqa: E402
from repro.core.parallel import shutdown_pool  # noqa: E402
from repro.core.study import (FullStudyResults, StudySpec,  # noqa: E402
                              run_full_study)
from repro.memsys.fastpath import TRAJECTORY_CACHE  # noqa: E402
from repro.reporting import format_table, write_csv  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


def study_rows(res: FullStudyResults) -> list:
    rows = []
    for by_wl in (*res.batch_sweeps.values(), *res.seqlen_sweeps.values()):
        for runs in by_wl.values():
            rows += [r.as_row() for r in runs]
    for runs in (*res.quant_sweeps.values(), *res.power_mode_sweeps.values()):
        rows += [r.as_row() for r in runs]
    for by_prec in res.power_energy_sweeps.values():
        for runs in by_prec.values():
            rows += [r.as_row() for r in runs]
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small grid + wall-clock budget; exit 1 if busted")
    ap.add_argument("--jobs", type=int, default=4,
                    help="max workers for the parallel scaling rows")
    ap.add_argument("--budget-s", type=float, default=120.0,
                    help="--smoke: max allowed fast-forward serial seconds")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="required cache-warm speedup over baseline")
    ap.add_argument("--min-ff-speedup", type=float, default=5.0,
                    help="required cold fast-forward speedup over baseline")
    ap.add_argument("--min-jobs-speedup", type=float, default=2.5,
                    help="required --jobs 4 speedup over fast-forward "
                         "serial (only enforced on hosts with >= 4 cores)")
    args = ap.parse_args()

    if args.smoke:
        kw = dict(models=["MS-Phi2"], n_runs=1, include_power_energy=False)
    else:
        kw = dict(models=["MS-Phi2", "Llama3"], n_runs=2,
                  include_power_energy=True)

    def timed(label, fast_forward=True, **extra):
        # Cold-start honesty: scenarios share one process, and forked
        # workers inherit parent memory — clear the process-global
        # trajectory cache and tear down the persistent pool so every
        # timed row pays its own warm-up.
        TRAJECTORY_CACHE.clear()
        shutdown_pool()
        spec = StudySpec.of(fast_forward=fast_forward, **kw)
        t0 = time.perf_counter()
        res = run_full_study(spec, **extra)
        dt = time.perf_counter() - t0
        print(f"  {label:18s} {dt:8.2f}s", flush=True)
        return dt, study_rows(res)

    n_cores = os.cpu_count() or 1
    n_note = f"models={kw['models']} n_runs={kw['n_runs']} " \
             f"power_energy={kw['include_power_energy']}"
    print(f"harness speed — {n_note} ({n_cores} core(s))", flush=True)

    # Prime the process-global lru caches (perplexity anchors, FLOP
    # counts) untimed, so scenario order does not skew the comparison:
    # every timed run then differs only in execution mode.
    from repro.hardware import get_device
    from repro.perplexity import perplexity_table
    perplexity_table(get_device("jetson-orin-agx-64gb"))

    t_base, rows_base = timed("baseline", fast_forward=False)
    t_ff, rows_ff = timed("fast-forward")
    job_counts = [j for j in (2, args.jobs) if j > 1]
    job_counts = sorted(set(job_counts))
    par_times = {}
    rows_by_label = [("fast-forward", rows_ff)]
    for j in job_counts:
        t_par, rows_par = timed(f"parallel x{j}", jobs=j)
        par_times[j] = t_par
        rows_by_label.append((f"parallel x{j}", rows_par))
    with tempfile.TemporaryDirectory() as d:
        cache = ResultCache(d)
        t_cold, rows_cold = timed("cache-cold", cache=cache)
        t_warm, rows_warm = timed("cache-warm", cache=cache)
        stats = cache.stats.as_row()
    rows_by_label += [("cache-cold", rows_cold), ("cache-warm", rows_warm)]

    for label, rows in rows_by_label:
        assert rows == rows_base, f"{label} changed results vs baseline"

    table = []
    scenarios = [("baseline (per-token serial)", t_base),
                 ("fast-forward serial (cold)", t_ff)]
    scenarios += [(f"fast-forward + jobs={j}", par_times[j])
                  for j in job_counts]
    scenarios += [("fast-forward + cache cold", t_cold),
                  ("fast-forward + cache warm", t_warm)]
    for label, dt in scenarios:
        table.append({
            "scenario": label,
            "seconds": round(dt, 2),
            "speedup_vs_baseline": round(t_base / dt, 1),
            "speedup_vs_ff_serial": round(t_ff / dt, 2),
            "configs": len(rows_base),
        })
    text = format_table(
        table, title=f"study-harness speed — {n_note}, "
                     f"{n_cores} core(s)")
    text += (f"\n\ncache stats across cold+warm: {stats}"
             "\nall scenarios verified row-identical to the baseline."
             "\nevery timed row starts cold: trajectory cache cleared and"
             "\nworker pool torn down between scenarios."
             "\nnotes: the baseline keeps kernel-cost memoization and the"
             "\nBLAS INT8 perplexity path (not disableable); the"
             "\npre-fast-path harness was slower still.  --jobs only pays"
             "\noff with >1 core — on a 1-core host the parallel rows are"
             "\npure pool overhead (see speedup_vs_ff_serial).")
    print("\n" + text)

    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "harness_speed.txt").write_text(text + "\n")
        write_csv(RESULTS_DIR / "harness_speed.csv", table)
        print(f"\nwrote {RESULTS_DIR}/harness_speed.{{txt,csv}}")

    ok = True
    ff_speedup = t_base / t_ff
    if ff_speedup < args.min_ff_speedup:
        print(f"FAIL: cold fast-forward speedup {ff_speedup:.1f}x "
              f"< required {args.min_ff_speedup}x", file=sys.stderr)
        ok = False
    jobs_for_gate = max((j for j in job_counts if j >= 4), default=None)
    if n_cores >= 4 and jobs_for_gate is not None:
        jobs_speedup = t_ff / par_times[jobs_for_gate]
        if jobs_speedup < args.min_jobs_speedup:
            print(f"FAIL: jobs={jobs_for_gate} speedup {jobs_speedup:.2f}x "
                  f"over ff-serial < required {args.min_jobs_speedup}x "
                  f"({n_cores} cores)", file=sys.stderr)
            ok = False
        else:
            print(f"jobs={jobs_for_gate} speedup {jobs_speedup:.2f}x over "
                  f"ff-serial ({n_cores} cores)")
    else:
        print(f"jobs speedup gate skipped: {n_cores} core(s) < 4")
    warm_speedup = t_base / t_warm
    if warm_speedup < args.min_speedup:
        print(f"FAIL: cache-warm speedup {warm_speedup:.1f}x "
              f"< required {args.min_speedup}x", file=sys.stderr)
        ok = False
    if args.smoke and t_ff > args.budget_s:
        print(f"FAIL: fast-forward serial {t_ff:.1f}s "
              f"> budget {args.budget_s}s", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print(f"OK: cache-warm {warm_speedup:.0f}x, "
          f"fast-forward {ff_speedup:.1f}x over per-token baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
