"""Table 3: perplexity per model, precision and dataset.

The FP32/FP16 anchors come from the paper (not derivable offline); the
INT8/INT4 cells are *predictions* of the real-quantizer error pipeline,
and the OOM cells are decided by the memory model.  Checks: every
non-OOM cell within 3% of the paper; OOM pattern identical.
"""

import pytest

from repro.calibration import paperdata
from repro.hardware import get_device
from repro.perplexity import perplexity_table
from repro.reporting import format_table


def _build():
    return perplexity_table(get_device("jetson-orin-agx-64gb"))


def test_table3_perplexity(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit(
        "table3_perplexity",
        format_table(rows, title="Table 3 — perplexity by precision (OOM = does not fit)"),
        rows,
    )

    by_model = {r["model"]: r for r in rows}
    worst = 0.0
    for ds in ("wikitext2", "longbench"):
        for model, cells in paperdata.TABLE3_PERPLEXITY[ds].items():
            for prec, paper_val in cells.items():
                ours = by_model[model][f"{ds}_{prec}"]
                if paper_val is None:
                    assert ours is None, (ds, model, prec)
                    continue
                assert ours is not None, (ds, model, prec)
                dev = abs(ours / paper_val - 1.0)
                worst = max(worst, dev)
                assert dev <= 0.03, (ds, model, prec, ours, paper_val)
    print(f"worst perplexity deviation vs paper: {worst:.1%}")


def test_quantization_degrades_monotonically(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    for r in rows:
        for ds in ("wikitext2", "longbench"):
            vals = [r[f"{ds}_{p}"] for p in ("fp32", "fp16", "int8", "int4")]
            present = [v for v in vals if v is not None]
            assert present == sorted(present)
