"""Carbon-aware serving and SLM cascades: the repro.sustain evidence.

The paper measures energy per token on single edge boards; this bench
extends those calibrated J/token numbers into the sustainability
questions a globally placed fleet faces:

- **Trace-aware routing** — on the two-region scenario (a dirty diurnal
  grid vs. a clean duck-curve grid, 5x mean-intensity skew) the
  carbon-aware router serves the same completions as energy-aware
  routing while cutting fleet gCO₂, because marginal grams/token —
  J/token times the region's intensity *right now* — moves load onto
  the clean grid.
- **SLM cascades** — serving phi-2 int8 first and escalating failed
  requests to Llama3.1-8B fp16 buys a lower J/token than LLM-only
  serving at a bounded quality-proxy regression; the gate sweep traces
  the frontier (:func:`repro.reporting.carbon_frontier`).
- **The idle-power caveat** — adding an always-on A100 to the fleet
  nearly erases the routing win: the fleet integrates *every* node's
  draw over the whole makespan, so a big idle draw in any region
  dominates the grams the router can move.  Honest accounting is the
  point; the table shows the edge-only fleet is the regime where
  carbon-aware placement pays.
"""

from repro.cluster import EdgeCluster
from repro.cluster.workload import as_cluster_requests, poisson_workload
from repro.reporting import carbon_frontier, format_table
from repro.sustain import (CascadeSpec, SustainSpec, run_sustain,
                           served_by_tier)
from repro.sustain.sweep import _fleet_for

SWEEP_SPEC = SustainSpec()  # 2 scenarios x 2 routers x cascade on/off

A100_SPEC = SustainSpec(
    devices=("a100-sxm-80gb", "jetson-orin-agx-64gb",
             "jetson-orin-agx-32gb"),
    scenarios=("two-region",), cascades=("off",))


def _by(report, **match):
    rows = [r for r in report.rows
            if all(r[k] == v for k, v in match.items())]
    assert len(rows) == 1, (match, rows)
    return rows[0]


def test_carbon_aware_routing_cuts_grams_at_equal_goodput(benchmark, emit):
    report = benchmark.pedantic(lambda: run_sustain(SWEEP_SPEC),
                                rounds=1, iterations=1)
    emit(
        "sustain_sweep",
        format_table(report.rows,
                     title="Sustainability sweep (Orin 64GB + Orin 32GB "
                           "+ Xavier AGX, Llama3.1-8B fp16, phi-2 int8 "
                           "SLM tier)"),
        report.rows,
    )

    # Uniform scenario: one shared trace means the intensity factor is
    # common to every node, so carbon-aware IS energy-aware — exactly.
    ea = _by(report, scenario="uniform", router="energy-aware",
             cascade="off")
    ca = _by(report, scenario="uniform", router="carbon-aware",
             cascade="off")
    assert {k: v for k, v in ea.items() if k != "router"} == \
           {k: v for k, v in ca.items() if k != "router"}

    # Two-region scenario (the headline): identical completions, lower
    # fleet grams, goodput within ~2%.
    ea = _by(report, scenario="two-region", router="energy-aware",
             cascade="off")
    ca = _by(report, scenario="two-region", router="carbon-aware",
             cascade="off")
    assert ca["completed"] == ea["completed"]
    assert ca["carbon_g"] < ea["carbon_g"] * 0.75
    assert ca["goodput_rps"] > ea["goodput_rps"] * 0.98

    # Cascade rows: at least one operating point beats LLM-only on
    # J/token while the token-weighted quality proxy stays bounded.
    wins = [r for r in report.rows if r["cascade"] == "on"
            and r["j_per_token"] < _by(report, scenario=r["scenario"],
                                       router=r["router"],
                                       cascade="off")["j_per_token"]
            and r["quality_delta_pct"] <= 50.0]
    assert wins and all(r["escalations"] > 0 for r in wins)


def _workload(spec):
    return as_cluster_requests(poisson_workload(
        spec.rate_per_s, spec.n_requests, input_tokens=spec.input_tokens,
        output_tokens=spec.output_tokens, seed=spec.seed))


def _frontier_runs():
    """LLM-only baseline plus the cascade gate sweep on one fleet."""
    spec = SWEEP_SPEC
    base = EdgeCluster.of(
        _fleet_for(spec, "uniform", "energy-aware", "off", "MAXN"),
    ).run(_workload(spec))
    runs = [("llm-only", base, 0.0)]
    for gate in (0.25, 0.5, 1.0):
        cas = CascadeSpec(gate=gate)
        cluster = EdgeCluster.of(
            _fleet_for(spec, "uniform", "energy-aware", "on", "MAXN"))
        rep = cluster.run_cascade(
            _workload(spec), lambda r: cas.should_escalate(r.req_id))
        tiers = served_by_tier(rep.requests)
        dq = cas.quality_delta_pct(tiers["slm"], tiers["llm"])
        runs.append((f"cascade@gate={gate}", rep, dq))
    return runs


def test_cascade_frontier_trades_quality_for_joules(benchmark, emit):
    runs = benchmark.pedantic(_frontier_runs, rounds=1, iterations=1)
    rows = carbon_frontier(runs)
    emit(
        "sustain_frontier",
        format_table(rows,
                     title="SLM-cascade frontier vs LLM-only "
                           "(J/token and gCO2/token vs quality proxy)"),
        rows,
    )
    assert rows[0]["operating_point"] == "llm-only"
    assert rows[0]["j_saved_pct"] == 0.0
    # A harder gate escalates more, pulling quality back toward the
    # LLM while still saving joules: the frontier is monotone in gate.
    points = rows[1:]
    assert all(r["escalations"] > 0 for r in points)
    assert [r["quality_delta_pct"] for r in points] == \
        sorted((r["quality_delta_pct"] for r in points), reverse=True)
    best = max(points, key=lambda r: r["j_saved_pct"])
    assert best["j_saved_pct"] > 20.0
    assert best["quality_delta_pct"] <= 50.0
    assert best["g_saved_pct"] > 20.0


def test_a100_idle_draw_erases_the_routing_margin(benchmark, emit):
    edge = run_sustain(SustainSpec(scenarios=("two-region",),
                                   cascades=("off",)))
    dc = benchmark.pedantic(lambda: run_sustain(A100_SPEC),
                            rounds=1, iterations=1)
    rows = [dict(fleet="edge-only", **r) for r in edge.rows] + \
           [dict(fleet="+a100", **r) for r in dc.rows]
    emit(
        "sustain_a100_fleet",
        format_table(rows,
                     title="Idle-power caveat: the same two-region "
                           "routing comparison with an A100 added"),
        rows,
    )

    def saving(report):
        ea = _by(report, router="energy-aware")
        ca = _by(report, router="carbon-aware")
        assert ca["completed"] == ea["completed"]
        return 1.0 - ca["carbon_g"] / ea["carbon_g"]

    edge_saving, dc_saving = saving(edge), saving(dc)
    # The edge fleet's double-digit saving collapses to ~1% once the
    # A100's idle watts burn in every makespan second.
    assert edge_saving > 0.25
    assert dc_saving < 0.05
    # And total grams rise despite the A100 serving tokens faster.
    assert _by(dc, router="carbon-aware")["carbon_g"] > \
        _by(edge, router="carbon-aware")["carbon_g"]
