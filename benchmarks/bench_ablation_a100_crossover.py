"""Ablation: the INT8 quantization crossover, edge vs datacenter.

§3.3 contrasts the Orin result ("quantization makes small models
slower") with Dettmers et al.'s A100 result ("INT8 speeds up models
above ~13B").  Both fall out of one kernel-cost model once the GPU's
``int8_tensor_core_gemm`` capability is flipped: the Orin-era
bitsandbytes falls back to dequantize-then-FP16, paying per *weight*;
the A100 runs native igemmlt, paying per *activation* — a cost that
amortises with model size.
"""

from conftest import N_RUNS

from repro.engine import GenerationSpec, ServingEngine
from repro.errors import OutOfMemoryError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.reporting import format_table

MODELS = ("phi2", "llama", "mistral", "deepq")
GEN = GenerationSpec(32, 64)


def _latency(device_name, model, precision):
    try:
        eng = ServingEngine(get_device(device_name), get_model(model), precision)
    except OutOfMemoryError:
        return None
    return eng.run(batch_size=16, gen=GEN, n_runs=N_RUNS).mean_latency_s


def _build():
    rows = []
    for device in ("jetson-orin-agx-64gb", "a100-sxm-80gb"):
        for m in MODELS:
            fp16 = _latency(device, m, Precision.FP16)
            int8 = _latency(device, m, Precision.INT8)
            rows.append({
                "device": device,
                "model": get_model(m).name,
                "params_b": round(get_model(m).n_params_billions, 1),
                "fp16_latency_s": None if fp16 is None else round(fp16, 2),
                "int8_latency_s": None if int8 is None else round(int8, 2),
                "int8_speedup": None if (fp16 is None or int8 is None)
                else round(fp16 / int8, 3),
            })
    return rows


def test_a100_int8_crossover(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit(
        "ablation_a100_crossover",
        format_table(rows, title="INT8 speedup over FP16: edge vs A100 (bs=16, sl=96)"),
        rows,
    )

    speedup = {(r["device"], r["model"]): r["int8_speedup"] for r in rows}

    # Edge: INT8 always a slowdown where FP16 fits.
    for m in ("MS-Phi2", "Llama3", "Mistral-Base"):
        assert speedup[("jetson-orin-agx-64gb", m)] < 0.9

    # A100: small model gains nothing; big models gain clearly.
    assert speedup[("a100-sxm-80gb", "MS-Phi2")] < 1.05
    assert speedup[("a100-sxm-80gb", "Mistral-Base")] > 1.1
    assert speedup[("a100-sxm-80gb", "Deepseek-Qwen")] > 1.1

    # The speedup grows with model size on the A100 (the crossover).
    a100 = [speedup[("a100-sxm-80gb", get_model(m).name)] for m in MODELS]
    assert a100 == sorted(a100)
