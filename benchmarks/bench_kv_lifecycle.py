"""KV lifecycle under memory pressure: swap vs sacrifice, prefix share.

The kvtier subsystem's committed evidence (extension beyond the paper):

- **Pressure sweep** — goodput and J/token for each lifecycle policy at
  three memory-pressure levels (fractions of the node's natural KV
  budget).  Asserted shape: with no pressure the policies are
  indistinguishable; under forced preemption LRU host-swap keeps
  strictly higher goodput than sacrifice (drop + re-prefill), and loses
  zero tokens where sacrifice recomputes thousands.
- **Prefix sharing** — the >= 50% shared-system-prompt workload shows a
  measurable TTFT reduction over the no-sharing baseline via the radix
  prefix cache.
- **Determinism** — the prefix sweep run twice yields byte-identical
  CSV (the same gate CI applies to ``repro kvtier``).
"""

import dataclasses

from repro.kvtier import KvTierSpec, run_kvtier, sweep_rows_csv
from repro.reporting import format_table

#: Fraction of the natural KV budget kept: none / moderate / heavy
#: preemption pressure for the default 40-request shared-prefix trace.
PRESSURE_LEVELS = (0.0075, 0.005, 0.0035)

PRESSURE_SPEC = KvTierSpec(
    policies=("sacrifice", "swap-lifo", "swap-lru"),
    triggers=(1.0,),
    share_ratios=(0.0,),
)

PREFIX_SPEC = KvTierSpec(
    policies=("swap-lru",),
    triggers=(1.0,),
    share_ratios=(0.0, 0.5, 0.8),
    kv_budget_frac=0.005,
)


def _pressure_sweep():
    rows = []
    for frac in PRESSURE_LEVELS:
        spec = dataclasses.replace(PRESSURE_SPEC, kv_budget_frac=frac)
        for row in run_kvtier(spec).rows:
            rows.append({"kv_budget_frac": frac, **row})
    return rows


def test_swap_beats_sacrifice_under_pressure(benchmark, emit):
    rows = benchmark.pedantic(_pressure_sweep, rounds=1, iterations=1)
    emit(
        "kv_lifecycle_pressure",
        format_table(rows, title="KV lifecycle policies vs memory pressure "
                                 "(Orin AGX 64GB, Llama3.1-8B fp16, paged)"),
        rows,
    )
    by = {(r["kv_budget_frac"], r["policy"].split("-")[0],
           r["policy"].split("-")[1].split("@")[0]): r for r in rows}

    # No pressure: the policy axis must not change the outcome.
    calm = [r for r in rows if r["kv_budget_frac"] == PRESSURE_LEVELS[0]]
    assert len({(r["goodput_rps"], r["lost_tokens"]) for r in calm}) == 1
    assert all(r["sacrifices"] == 0 and r["swap_outs"] == 0 for r in calm)

    # Forced preemption: LRU swap strictly out-goodputs sacrifice, loses
    # nothing, and re-prefill's recompute shows up as sacrifice's lost
    # tokens and extra joules per served token.
    for frac in PRESSURE_LEVELS[1:]:
        sac = by[(frac, "sacrifice", "lifo")]
        lru = by[(frac, "swap", "lru")]
        assert sac["sacrifices"] > 0, frac
        assert lru["swap_outs"] > 0 and lru["swap_ins"] > 0, frac
        assert lru["goodput_rps"] > sac["goodput_rps"], frac
        assert lru["lost_tokens"] == 0 < sac["lost_tokens"], frac
        assert lru["j_per_token"] < sac["j_per_token"], frac


def test_prefix_share_cuts_ttft(benchmark, emit):
    report = benchmark.pedantic(lambda: run_kvtier(PREFIX_SPEC),
                                rounds=1, iterations=1)
    rows = report.rows
    emit(
        "kv_lifecycle_prefix_share",
        format_table(rows, title="shared-prefix ratio vs TTFT "
                                 "(radix prefix cache, swap-lru)"),
        rows,
    )
    by_share = {r["share_ratio"]: r for r in rows}
    cold = by_share[0.0]
    assert cold["prefix_hit_tokens"] == 0
    for share in (0.5, 0.8):
        hot = by_share[share]
        assert hot["prefix_hit_tokens"] > 0
        assert hot["p50_ttft_s"] < cold["p50_ttft_s"], share
    # More sharing, more reuse.
    assert by_share[0.8]["prefix_hit_rate"] > by_share[0.5]["prefix_hit_rate"]

    # The CI determinism gate, asserted in-bench too: same spec, same
    # bytes.
    assert sweep_rows_csv(report) == sweep_rows_csv(run_kvtier(PREFIX_SPEC))
