"""Microbenchmarks of the library's own hot paths.

Not a paper artifact — these track the simulator's performance so
regressions in the allocator, DES kernel, quantizers or the numpy
transformer are caught by ``pytest-benchmark``'s timing machinery.
"""

import numpy as np
import pytest

from repro.memsys.allocator import CachingAllocator
from repro.models.architecture import TransformerArchitecture
from repro.nn import NumpyTransformer
from repro.quant import LLMInt8Linear, blockwise_quantize
from repro.sim import Environment
from repro.units import gib, mib


def test_allocator_churn_throughput(benchmark):
    def churn():
        a = CachingAllocator(gib(8), gc_threshold=0.35, dead_cap_bytes=int(1e9))
        h = a.alloc(mib(24))
        for step in range(200):
            h = a.realloc_grow(h, mib(24) + step * 65536)
        return a.stats.n_allocs

    assert benchmark(churn) == 201


def test_des_event_throughput(benchmark):
    def run():
        env = Environment()

        def ping(n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ping(500))
        env.run()
        return env.now

    assert benchmark(run) == 500.0


def test_llm_int8_matmul(benchmark, rng):
    w = (rng.standard_normal((512, 1024)) * 0.02).astype(np.float32)
    x = rng.standard_normal((32, 1024)).astype(np.float32)
    layer = LLMInt8Linear(w)
    out = benchmark(layer.forward, x)
    assert out.shape == (32, 512)


def test_nf4_quantization(benchmark, rng):
    w = (rng.standard_normal((1024, 1024)) * 0.02).astype(np.float32)
    q = benchmark(blockwise_quantize, w)
    assert q.codes.shape[0] == 1024 * 1024 // 64


def test_numpy_transformer_decode_step(benchmark):
    arch = TransformerArchitecture(
        name="bench", hf_id="b", vocab_size=512, hidden_size=128,
        n_layers=4, n_heads=8, n_kv_heads=4, head_dim=16,
        intermediate_size=256,
    )
    model = NumpyTransformer(arch, seed=0)
    prompts = np.arange(32).reshape(4, 8) % 512

    def gen():
        return model.generate(prompts, 4)

    assert benchmark(gen).shape == (4, 4)


def test_full_experiment_simulation(benchmark):
    """One complete measured configuration end to end."""
    from repro.core import ExperimentSpec, run_experiment
    from repro.engine.request import GenerationSpec

    spec = ExperimentSpec(model="llama", batch_size=32,
                          gen=GenerationSpec(32, 64), n_runs=2)
    res = benchmark.pedantic(run_experiment, args=(spec,), rounds=1, iterations=1)
    assert not res.oom


@pytest.fixture
def rng():
    return np.random.default_rng(7)
