"""Ablation: static vs continuous batching under load (extension).

Quantifies the §4 future-work headroom on the calibrated Orin model:
iteration-level scheduling must cut p95 time-to-first-token under load
without losing aggregate throughput.
"""

import copy

from repro.engine.scheduler import (
    ContinuousBatchScheduler,
    StaticBatchScheduler,
    poisson_workload,
)
from repro.hardware import get_device
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.reporting import format_table


def _build():
    rows = []
    for rate in (1.0, 3.0, 6.0):
        reqs = poisson_workload(rate, 48, input_tokens=32, output_tokens=64,
                                seed=11)
        for cls in (StaticBatchScheduler, ContinuousBatchScheduler):
            sched = cls(get_device("jetson-orin-agx-64gb"), get_model("llama"),
                        Precision.FP16, max_batch=32)
            report = sched.serve(copy.deepcopy(reqs))
            rows.append({"rate_req_s": rate, **report.as_row()})
    return rows


def test_serving_disciplines(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit(
        "ablation_serving_disciplines",
        format_table(rows, title="static vs continuous batching across load"),
        rows,
    )
    by = {(r["rate_req_s"], r["discipline"]): r for r in rows}
    for rate in (3.0, 6.0):
        static = by[(rate, "static")]
        cont = by[(rate, "continuous")]
        assert cont["p95_ttft_s"] < static["p95_ttft_s"], rate
        assert cont["throughput_tok_s"] > 0.8 * static["throughput_tok_s"], rate
