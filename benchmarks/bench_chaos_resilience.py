"""Chaos resilience: fault-injected serving vs the fault-free twin.

The paper measures a single healthy Orin; this bench measures what its
implied failure modes (OOM walls, power-mode sensitivity, passive
cooling) cost a fleet that actually hits them.  Three scenarios run a
two-node Orin fleet against its fault-free twin:

- **crashes** — node deaths with KV-state loss, orphan requeue and
  re-prefill accounting;
- **brownout + OOM** — forced nvpmodel downshifts plus transient KV
  headroom shrink (the resource-pressure pair);
- **stragglers** — background interference stretching engine steps.

Asserted shape:

- every chaos report is bit-reproducible (same seed → identical rows);
- fault-free twins report availability == 1.0 exactly; faulted crash
  runs report availability < 1.0 with MTTR consistent with the
  schedule's downtime draws;
- goodput under fault never exceeds the fault-free baseline;
- retry amplification stays bounded (the backoff/budget machinery does
  not melt down).
"""

from repro.faults import ChaosSpec, FaultScheduleSpec, run_chaos
from repro.reporting import format_table

DEVICES = ("jetson-orin-agx-64gb", "jetson-orin-agx-32gb")

SCENARIOS = {
    "crashes": FaultScheduleSpec(
        seed=13, horizon_s=45.0, n_nodes=2,
        crash_rate_per_min=2.0, crash_downtime_s=6.0,
    ),
    "brownout-oom": FaultScheduleSpec(
        seed=13, horizon_s=45.0, n_nodes=2,
        brownout_rate_per_min=4.0, brownout_duration_s=12.0,
        oom_rate_per_min=2.5, oom_duration_s=10.0, oom_shrink=0.1,
    ),
    "stragglers": FaultScheduleSpec(
        seed=13, horizon_s=45.0, n_nodes=2,
        straggler_rate_per_min=3.0, straggler_duration_s=8.0,
        straggler_slowdown=3.0,
    ),
}


def _spec(faults: FaultScheduleSpec) -> ChaosSpec:
    return ChaosSpec(devices=DEVICES, precision="fp16", policy="jsq",
                     rate_per_s=2.5, n_requests=40,
                     input_tokens=128, output_tokens=64, faults=faults)


def _sweep():
    rows = []
    for name, faults in SCENARIOS.items():
        report = run_chaos(_spec(faults))
        # Reproducibility is the subsystem's acceptance bar; enforce it
        # inside the bench so the committed rows are trustworthy.
        again = run_chaos(_spec(faults))
        assert report.as_row() == again.as_row(), name
        assert report.injected_trace == again.injected_trace, name
        rows.append({"scenario": name, **report.as_row()})
    return rows


def test_chaos_scenarios(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "chaos_resilience",
        format_table(rows, title="chaos scenarios vs fault-free twin "
                                 "(2-node Orin fleet, Llama3 fp16, JSQ)"),
        rows,
    )
    by = {r["scenario"]: r for r in rows}

    crash = by["crashes"]
    assert crash["availability"] < 1.0
    assert crash["mttr_s"] > 0.0
    assert crash["requeues"] > 0

    for name, row in by.items():
        assert row["goodput_ratio"] <= 1.0 + 1e-9, name
        assert 1.0 <= row["retry_amp"] < 3.0, name

    # Only crashes take nodes down; pressure and interference degrade
    # service but never the fleet's availability accounting.
    assert by["brownout-oom"]["availability"] == 1.0
    assert by["stragglers"]["availability"] == 1.0
