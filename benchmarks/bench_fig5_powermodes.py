"""Figure 5: power-mode sweep (latency bars + energy and power markers).

bs=32, sl=96, FP16 (INT8 for Deepseek), all nine Table-2 modes, four
models.  The assertions encode every §3.4 claim:

- PM-A: ~28% lower power, mildly higher latency, lower energy than MAXN.
- PM-B: deepest GPU-clock power cut but energy *worse* than MAXN.
- PM-C/D: CPU-clock modes hit host-bound (small) models hardest.
- PM-E/F: core-count modes change latency negligibly (serial host loop).
- PM-G/H: memory clock is the most damaging dimension; H inflates
  latency ~4-5x, cuts power ~half, and wastes energy.
"""

import pytest
from conftest import N_RUNS
from _helpers import sweep_rows

from repro.core import ExperimentSpec
from repro.core.sweeps import POWER_MODES, power_mode_sweep
from repro.reporting import ascii_bars, format_table

MODELS = ("phi2", "llama", "mistral", "deepq")


def _build():
    rows = []
    for m in MODELS:
        res = power_mode_sweep(ExperimentSpec.for_model(m, n_runs=N_RUNS))
        rows.extend(sweep_rows(res, "power_mode", lambda r: r.power_mode))
    return rows


def test_fig5_power_modes(benchmark, emit):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)

    panels = [format_table(
        rows, title="Fig 5 — power-mode sweep (bs=32, sl=96)",
        columns=["model", "power_mode", "latency_s", "power_w", "energy_j"],
    )]
    for m in ("Llama3",):
        lat = {r["power_mode"]: r["latency_s"] for r in rows if r["model"] == m}
        pw = {r["power_mode"]: r["power_w"] for r in rows if r["model"] == m}
        panels.append(ascii_bars(lat, title=f"{m} latency (s) by power mode", unit="s"))
        panels.append(ascii_bars(pw, title=f"{m} power (W) by power mode", unit="W"))
    emit("fig5_powermodes", "\n\n".join(panels), rows)

    cell = {(r["model"], r["power_mode"]): r for r in rows}

    for model in ("MS-Phi2", "Llama3", "Mistral-Base", "Deepseek-Qwen"):
        maxn = cell[(model, "MAXN")]

        def rel(mode, metric):
            return cell[(model, mode)][metric] / maxn[metric]

        # A: meaningful power cut, bounded latency cost, energy win or tie
        # for the FP16 models.  Deepseek runs INT8 whose dequantization is
        # GPU-compute-bound, so cutting the GPU clock costs it more
        # latency than power — its energy rises under A (a genuine
        # precision/power-mode interaction the paper did not explore).
        assert rel("A", "power_w") < 0.85, model
        assert rel("A", "latency_s") < 1.6, model
        energy_bound = 1.3 if model == "Deepseek-Qwen" else 1.1
        assert rel("A", "energy_j") < energy_bound, model
        # B: deeper power cut than A; energy no better than MAXN for
        # GPU-sensitive (large) models.
        assert rel("B", "power_w") < rel("A", "power_w"), model
        # E/F: negligible latency impact.
        assert rel("E", "latency_s") == pytest.approx(1.0, abs=0.02), model
        assert rel("F", "latency_s") == pytest.approx(1.0, abs=0.02), model
        # G between MAXN and H; H catastrophic.
        assert 1.0 < rel("G", "latency_s") < rel("H", "latency_s"), model
        assert rel("H", "power_w") < 0.75, model
        assert rel("H", "energy_j") > 1.3, model

    # §3.4 headline numbers for Llama: A -28%/+26%, H +370%.
    llama_maxn = cell[("Llama3", "MAXN")]
    a = cell[("Llama3", "A")]
    h = cell[("Llama3", "H")]
    assert 1 - a["power_w"] / llama_maxn["power_w"] == pytest.approx(0.28, abs=0.10)
    assert a["latency_s"] / llama_maxn["latency_s"] - 1 == pytest.approx(0.26, abs=0.15)
    assert h["latency_s"] / llama_maxn["latency_s"] - 1 == pytest.approx(3.7, abs=1.2)

    # B is for power-constrained setups, not energy savings (§3.4): for
    # the large GPU-bound models energy under B exceeds MAXN.
    for model in ("Mistral-Base", "Deepseek-Qwen", "Llama3"):
        assert cell[(model, "B")]["energy_j"] > 0.95 * cell[(model, "MAXN")]["energy_j"]
