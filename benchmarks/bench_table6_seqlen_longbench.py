"""Table 6 / Figures 2 & 8: sequence-length sweep on LongBench.

MAXN, bs=32, sl in {128, 256, 512, 1024} split paper-style into
input+output tokens.  The headline mechanism checks: throughput falls
with sequence length (memory-bound decode), KV memory grows, and Phi-2
OOMs for sl >= 512 exactly as the paper reports.
"""

from _helpers import assert_latency_band, perf_report, run_seqlen_sweep
from conftest import N_RUNS

from repro.calibration import paperdata


def test_table6_fig2_fig8(benchmark, emit):
    rows = benchmark.pedantic(
        run_seqlen_sweep, args=("longbench", N_RUNS), rounds=1, iterations=1
    )
    emit(
        "table6_seqlen_longbench",
        perf_report("Table 6 — sequence-length sweep, LongBench (MaxN, bs=32)",
                    rows, paperdata.TABLE6_SEQLEN_LONGBENCH, "seq_len"),
        rows,
    )

    # Phi-2 OOM boundary (the paper's most distinctive memory result).
    phi = {r["seq_len"]: r for r in rows if r["model"] == "MS-Phi2"}
    assert phi[128]["latency_s"] is not None
    assert phi[256]["latency_s"] is not None
    assert phi[512]["latency_s"] is None
    assert phi[1024]["latency_s"] is None

    # Throughput decreases monotonically for every surviving model.
    for model in ("Llama3", "Mistral-Base", "Deepseek-Qwen"):
        tps = [r["throughput_tok_s"] for r in rows if r["model"] == model]
        assert all(v is not None for v in tps)
        assert tps == sorted(tps, reverse=True)

    # Memory grows with sequence length (KV cache + churn).
    for model in ("Llama3", "Mistral-Base", "Deepseek-Qwen"):
        rams = [r["ram_gb"] for r in rows if r["model"] == model]
        assert rams == sorted(rams)

    assert_latency_band(rows, paperdata.TABLE6_SEQLEN_LONGBENCH, "seq_len")
