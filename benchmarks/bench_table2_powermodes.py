"""Table 2: the power-mode resource configurations.

Emits the mode table, validates it against the paper's values, and
round-trips it through the nvpmodel config format.
"""

from repro.power import PAPER_POWER_MODES, parse_nvpmodel_conf, render_nvpmodel_conf
from repro.reporting import format_table


def _build():
    return [m.as_row() for m in PAPER_POWER_MODES.values()]


def test_table2_power_modes(benchmark, emit):
    rows = benchmark(_build)
    emit(
        "table2_powermodes",
        format_table(rows, title="Table 2 — power mode configurations"),
        rows,
    )

    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["MAXN"] == {
        "mode": "MAXN", "gpu_freq_mhz": 1301, "cpu_freq_ghz": 2.2,
        "cpu_cores_online": 12, "mem_freq_mhz": 3199,
    }
    assert by_mode["H"]["mem_freq_mhz"] == 665
    assert by_mode["F"]["cpu_cores_online"] == 4

    # Round-trip through the nvpmodel-conf format is lossless.
    parsed = parse_nvpmodel_conf(render_nvpmodel_conf(PAPER_POWER_MODES.values()))
    assert [m.name for m in parsed] == list(PAPER_POWER_MODES)
