"""A caching allocator in the style of the PyTorch CUDA allocator.

Model (simplified but structurally faithful):

- Requests are rounded up to 512 B.
- Memory is obtained from the device in *segments*.  Requests below the
  small/large threshold (1 MiB) come from 2 MiB small segments; larger
  requests come from segments of ``max(20 MiB, request rounded to 2 MiB)``.
- Each segment is a list of blocks.  Allocation best-fits a free block
  across cached segments of the matching pool, splitting off the
  remainder; freeing coalesces with adjacent free blocks.
- Segments are never returned to the device eagerly.  When an allocation
  would exceed capacity, fully-free segments are reclaimed and the
  allocation retried; only then does the allocator raise
  :class:`~repro.errors.OutOfMemoryError`.
- An optional *gc threshold* reclaims empty segments whenever the cached
  (free) fraction exceeds it, mimicking ``PYTORCH_CUDA_ALLOC_CONF
  garbage_collection_threshold``.

This reproduces the fragmentation behaviour that drives the paper's
incremental-memory numbers: a stream of monotonically growing
allocations (HF ``DynamicCache`` concatenation) reuses coalesced blocks
while tensors fit inside pooled 20 MiB segments, but accumulates
dead exact-size segments once tensors outgrow the pool — until pressure
forces a reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError, OutOfMemoryError
from repro.units import kib, mib

ROUND_SMALL = 512
SMALL_LARGE_THRESHOLD = mib(1)
SMALL_SEGMENT = mib(2)
LARGE_SEGMENT_MIN = mib(20)
LARGE_ROUND = mib(2)


def _round_up(n: int, mult: int) -> int:
    return ((n + mult - 1) // mult) * mult


@dataclass
class _Block:
    """One contiguous range inside a segment."""

    offset: int
    size: int
    free: bool = True


class _Segment:
    """A device-memory segment holding a block list sorted by offset.

    ``max_free`` caches the largest free block so the allocator can skip
    full segments (weights) without scanning their block lists.
    """

    __slots__ = ("size", "pool", "blocks", "max_free")

    def __init__(self, size: int, pool: str):
        self.size = size
        self.pool = pool
        self.blocks: List[_Block] = [_Block(offset=0, size=size, free=True)]
        self.max_free = size

    @property
    def fully_free(self) -> bool:
        return len(self.blocks) == 1 and self.blocks[0].free

    def _recompute_max_free(self) -> None:
        self.max_free = max((b.size for b in self.blocks if b.free), default=0)

    def best_fit(self, size: int) -> Optional[_Block]:
        """Smallest free block that fits ``size``."""
        if self.max_free < size:
            return None
        best: Optional[_Block] = None
        for b in self.blocks:
            if b.free and b.size >= size and (best is None or b.size < best.size):
                best = b
        return best

    def allocate_in(self, block: _Block, size: int) -> _Block:
        """Carve ``size`` bytes out of ``block`` (must be free and fit)."""
        if not block.free or block.size < size:
            raise AllocationError("internal: allocate_in on unsuitable block")
        idx = self.blocks.index(block)
        remainder = block.size - size
        block.size = size
        block.free = False
        if remainder >= ROUND_SMALL:
            self.blocks.insert(
                idx + 1, _Block(offset=block.offset + size, size=remainder, free=True)
            )
        else:
            # Too small to track separately: keep it attached to the block.
            block.size += remainder
        self._recompute_max_free()
        return block

    def release(self, block: _Block) -> None:
        """Mark ``block`` free and coalesce with free neighbours."""
        idx = self.blocks.index(block)
        block.free = True
        # Coalesce right then left.
        if idx + 1 < len(self.blocks) and self.blocks[idx + 1].free:
            nxt = self.blocks.pop(idx + 1)
            block.size += nxt.size
        if idx > 0 and self.blocks[idx - 1].free:
            prev = self.blocks[idx - 1]
            prev.size += block.size
            self.blocks.pop(idx)
            block = prev
        if block.size > self.max_free:
            self.max_free = block.size


@dataclass(frozen=True)
class Allocation:
    """Handle returned by :meth:`CachingAllocator.alloc`."""

    requested: int
    rounded: int
    segment: _Segment = field(repr=False, hash=False, compare=False)
    block: _Block = field(repr=False, hash=False, compare=False)
    tag: str = ""


@dataclass
class AllocStats:
    """Point-in-time and high-water statistics, in bytes."""

    allocated: int = 0
    reserved: int = 0
    peak_allocated: int = 0
    peak_reserved: int = 0
    n_allocs: int = 0
    n_segment_allocs: int = 0
    n_reclaims: int = 0
    n_oom_retries: int = 0


class CachingAllocator:
    """See module docstring.

    Parameters
    ----------
    capacity_bytes:
        Device memory available to this allocator (after OS reservations
        and any externally tracked usage).
    gc_threshold:
        If the free-cached fraction of reserved memory exceeds this value
        after a free, fully-free segments are reclaimed.  ``None``
        disables proactive GC (pure PyTorch default behaviour).
    """

    def __init__(
        self,
        capacity_bytes: int,
        gc_threshold: Optional[float] = 0.5,
        dead_cap_bytes: Optional[int] = None,
    ):
        if capacity_bytes <= 0:
            raise AllocationError("allocator capacity must be positive")
        if gc_threshold is not None and not (0.0 < gc_threshold <= 1.0):
            raise AllocationError("gc_threshold must be in (0, 1] or None")
        if dead_cap_bytes is not None and dead_cap_bytes < 0:
            raise AllocationError("dead_cap_bytes must be >= 0 or None")
        self.capacity = int(capacity_bytes)
        self.gc_threshold = gc_threshold
        #: Reclaim fully-free segments whenever they exceed this many
        #: bytes, regardless of the free *fraction*.  Monotonically
        #: growing allocation streams (KV-cache concat) strand old
        #: segments that the fraction test cannot see behind large live
        #: weights; real allocators release such oversize cached blocks.
        self.dead_cap_bytes = dead_cap_bytes
        self._pools: Dict[str, List[_Segment]] = {"small": [], "large": []}
        self._live: Dict[int, Allocation] = {}
        #: Bytes in fully-free segments, maintained incrementally so the
        #: GC check is O(1) per free.
        self._dead_bytes = 0
        self.stats = AllocStats()

    @property
    def _segments(self) -> List[_Segment]:
        """All segments (tests and reports iterate this)."""
        return self._pools["small"] + self._pools["large"]

    # -- public API --------------------------------------------------------
    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Allocate ``nbytes``; raises :class:`OutOfMemoryError` on failure."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        rounded = _round_up(int(nbytes), ROUND_SMALL)
        pool = "small" if rounded < SMALL_LARGE_THRESHOLD else "large"

        block_seg = self._find_cached(rounded, pool)
        if block_seg is None:
            seg = self._new_segment(rounded, pool)
            block_seg = (seg.blocks[0], seg)
        block, seg = block_seg
        if seg.fully_free:
            self._dead_bytes -= seg.size
        seg.allocate_in(block, rounded)

        handle = Allocation(requested=int(nbytes), rounded=rounded, segment=seg,
                            block=block, tag=tag)
        self._live[id(handle)] = handle
        self.stats.allocated += rounded
        self.stats.n_allocs += 1
        self.stats.peak_allocated = max(self.stats.peak_allocated, self.stats.allocated)
        return handle

    def free(self, handle: Allocation) -> None:
        """Return an allocation to the cache (not to the device)."""
        if self._live.pop(id(handle), None) is None:
            raise AllocationError("free() of unknown or already-freed allocation")
        seg = handle.segment
        seg.release(handle.block)
        if seg.fully_free:
            self._dead_bytes += seg.size
        self.stats.allocated -= handle.rounded
        self._maybe_gc()

    def realloc_grow(self, handle: Allocation, nbytes: int, tag: str = "") -> Allocation:
        """Alloc-new-then-free-old, as ``torch.cat`` on a cache does.

        Both the old and new allocation are briefly live simultaneously,
        which is exactly the churn that inflates peak memory.
        """
        new = self.alloc(nbytes, tag=tag or handle.tag)
        self.free(handle)
        return new

    @property
    def allocated_bytes(self) -> int:
        """Bytes in live allocations."""
        return self.stats.allocated

    @property
    def reserved_bytes(self) -> int:
        """Bytes held from the device (live + cached)."""
        return self.stats.reserved

    def live_allocations(self) -> List[Allocation]:
        """Currently live allocation handles."""
        return list(self._live.values())

    def reset_peaks(self) -> None:
        """Reset high-water marks to current values (jtop baseline reset)."""
        self.stats.peak_allocated = self.stats.allocated
        self.stats.peak_reserved = self.stats.reserved

    # -- internals ----------------------------------------------------------
    def _find_cached(self, rounded: int, pool: str):
        best: Optional[tuple[_Block, _Segment]] = None
        best_size = None
        for seg in self._pools[pool]:
            if seg.max_free < rounded:
                continue
            b = seg.best_fit(rounded)
            if b is not None and (best_size is None or b.size < best_size):
                best = (b, seg)
                best_size = b.size
        return best

    def _segment_size_for(self, rounded: int, pool: str) -> int:
        if pool == "small":
            return SMALL_SEGMENT
        return max(LARGE_SEGMENT_MIN, _round_up(rounded, LARGE_ROUND))

    def _new_segment(self, rounded: int, pool: str) -> _Segment:
        size = self._segment_size_for(rounded, pool)
        if self.stats.reserved + size > self.capacity:
            # Memory pressure: reclaim fully-free segments and retry.
            self.stats.n_oom_retries += 1
            self._reclaim_empty_segments()
            if self.stats.reserved + size > self.capacity:
                raise OutOfMemoryError(
                    requested_bytes=size,
                    available_bytes=self.capacity - self.stats.reserved,
                    context="caching allocator segment",
                )
        seg = _Segment(size=size, pool=pool)
        self._pools[pool].append(seg)
        self._dead_bytes += size  # fully free until allocate_in runs
        self.stats.reserved += size
        self.stats.n_segment_allocs += 1
        self.stats.peak_reserved = max(self.stats.peak_reserved, self.stats.reserved)
        return seg

    def _reclaim_empty_segments(self) -> None:
        reclaimed = False
        for pool, segs in self._pools.items():
            kept: List[_Segment] = []
            for seg in segs:
                if seg.fully_free:
                    self.stats.reserved -= seg.size
                    reclaimed = True
                else:
                    kept.append(seg)
            self._pools[pool] = kept
        if reclaimed:
            self.stats.n_reclaims += 1
        self._dead_bytes = 0

    def _maybe_gc(self) -> None:
        if self.stats.reserved == 0:
            return
        if self.gc_threshold is not None:
            free_frac = 1.0 - self.stats.allocated / self.stats.reserved
            if free_frac > self.gc_threshold:
                self._reclaim_empty_segments()
                return
        if self.dead_cap_bytes is not None and self._dead_bytes > self.dead_cap_bytes:
            self._reclaim_empty_segments()
