"""Baseline/peak/incremental memory bookkeeping.

The paper reports, per workload: *incremental peak memory* (peak during
the run minus the pre-model-load baseline) and occasionally the model
load footprint.  This tracker layers that accounting over the allocator
plus any non-allocator usage (OS, frameworks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.memsys.allocator import CachingAllocator


@dataclass
class MemorySnapshot:
    """One point-in-time memory reading, in bytes."""

    used: int
    reserved: int


class MemoryTracker:
    """Tracks the jtop-style memory milestones of one experiment run.

    Lifecycle::

        tracker.mark_baseline()     # before model load
        ... load model ...
        tracker.mark_model_loaded()
        ... run workload ...
        tracker.finish()

    ``incremental_peak_bytes`` then equals peak-during-workload minus the
    post-load level, and ``model_bytes`` the load footprint — matching
    the paper's reporting.
    """

    def __init__(self, allocator: CachingAllocator, base_system_bytes: int = 0):
        if base_system_bytes < 0:
            raise ConfigError("base system bytes must be >= 0")
        self.allocator = allocator
        self.base_system_bytes = base_system_bytes
        self._baseline: Optional[int] = None
        self._after_load: Optional[int] = None
        self._peak: Optional[int] = None

    def _reading(self) -> int:
        return self.base_system_bytes + self.allocator.reserved_bytes

    def mark_baseline(self) -> None:
        """Record the pre-model-load level and reset peaks."""
        self.allocator.reset_peaks()
        self._baseline = self._reading()

    def mark_model_loaded(self) -> None:
        """Record the level right after weights are resident."""
        if self._baseline is None:
            raise ConfigError("mark_model_loaded() before mark_baseline()")
        self._after_load = self._reading()
        self.allocator.reset_peaks()

    def finish(self) -> None:
        """Capture the workload peak."""
        if self._after_load is None:
            raise ConfigError("finish() before mark_model_loaded()")
        self._peak = self.base_system_bytes + self.allocator.stats.peak_reserved

    @property
    def model_bytes(self) -> int:
        """Model load footprint (post-load minus baseline)."""
        if self._baseline is None or self._after_load is None:
            raise ConfigError("model_bytes before load markers")
        return self._after_load - self._baseline

    @property
    def incremental_peak_bytes(self) -> int:
        """Workload peak minus post-load level (the paper's main metric)."""
        if self._peak is None or self._after_load is None:
            raise ConfigError("incremental_peak_bytes before finish()")
        return max(0, self._peak - self._after_load)

    @property
    def total_peak_bytes(self) -> int:
        """Workload peak minus pre-load baseline (the appendix 'RAM' column)."""
        if self._peak is None or self._baseline is None:
            raise ConfigError("total_peak_bytes before finish()")
        return self._peak - self._baseline
