"""Paged KV-cache block manager (vLLM-style; extension beyond the paper).

The paper's HF runtime grows one contiguous K/V tensor per layer
(DynamicCache) and pays the concat churn this repo's allocator exposes.
PagedAttention instead carves the cache region into fixed-size *blocks*
(``block_tokens`` token slots each) and maps sequences onto them through
per-sequence block tables, eliminating both the concat copies and the
contiguity fragmentation.  This module implements the block manager so
the ablation bench can quantify what the paper's setup leaves on the
table.

The manager is allocator-backed: the block pool is one large allocation
(as vLLM reserves its cache up front), and utilisation is tracked in
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError, ConfigError, OutOfMemoryError
from repro.memsys.allocator import Allocation, CachingAllocator
from repro.memsys.kvcache import KVCacheSpec


@dataclass
class PagedStats:
    """Block-pool utilisation counters."""

    total_blocks: int = 0
    used_blocks: int = 0
    peak_used_blocks: int = 0
    allocations: int = 0


class PagedKVCache:
    """Fixed-size-block KV cache with per-sequence block tables.

    Parameters
    ----------
    spec:
        KV geometry (shared with the contiguous caches).
    allocator:
        Device allocator the pool is reserved from.
    pool_bytes:
        Size of the up-front cache reservation.
    block_tokens:
        Token slots per block (vLLM default: 16).
    """

    def __init__(
        self,
        spec: KVCacheSpec,
        allocator: CachingAllocator,
        pool_bytes: int,
        block_tokens: int = 16,
    ):
        if block_tokens < 1:
            raise ConfigError("block_tokens must be >= 1")
        if pool_bytes <= 0:
            raise ConfigError("pool must be positive")
        self.spec = spec
        self.block_tokens = block_tokens
        self.bytes_per_block = (
            spec.bytes_per_token_per_layer * spec.n_layers * block_tokens
        )
        if pool_bytes < self.bytes_per_block:
            raise ConfigError("pool smaller than a single block")
        self.allocator = allocator
        self._pool: Allocation = allocator.alloc(pool_bytes, tag="paged-kv-pool")
        n_blocks = pool_bytes // self.bytes_per_block
        self._free: List[int] = list(range(n_blocks))
        #: sequence id -> (block ids, tokens used)
        self._tables: Dict[int, List[int]] = {}
        self._tokens: Dict[int, int] = {}
        self.stats = PagedStats(total_blocks=n_blocks)

    # -- block accounting ----------------------------------------------------
    def _take_block(self) -> int:
        if not self._free:
            raise OutOfMemoryError(
                requested_bytes=self.bytes_per_block,
                available_bytes=0,
                context="paged KV pool exhausted",
            )
        blk = self._free.pop()
        self.stats.used_blocks += 1
        self.stats.peak_used_blocks = max(
            self.stats.peak_used_blocks, self.stats.used_blocks
        )
        self.stats.allocations += 1
        return blk

    def blocks_needed(self, n_tokens: int) -> int:
        """Blocks required for a sequence of ``n_tokens``."""
        return -(-n_tokens // self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def can_admit(self, n_tokens: int) -> bool:
        """Would a sequence of ``n_tokens`` (total) fit right now?"""
        return self.blocks_needed(n_tokens) <= self.free_blocks

    # -- sequence lifecycle ----------------------------------------------------
    def add_sequence(self, seq_id: int, prompt_tokens: int) -> None:
        """Admit a sequence and allocate blocks for its prompt."""
        if seq_id in self._tables:
            raise AllocationError(f"sequence {seq_id} already present")
        if prompt_tokens < 1:
            raise ConfigError("prompt must have >= 1 token")
        needed = self.blocks_needed(prompt_tokens)
        if needed > self.free_blocks:
            raise OutOfMemoryError(
                requested_bytes=needed * self.bytes_per_block,
                available_bytes=self.free_blocks * self.bytes_per_block,
                context=f"admitting sequence {seq_id}",
            )
        self._tables[seq_id] = [self._take_block() for _ in range(needed)]
        self._tokens[seq_id] = prompt_tokens

    def append_token(self, seq_id: int) -> None:
        """Extend a sequence by one token, growing its table if needed."""
        table = self._tables.get(seq_id)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        tokens = self._tokens[seq_id] + 1
        if self.blocks_needed(tokens) > len(table):
            table.append(self._take_block())
        self._tokens[seq_id] = tokens

    def release_sequence(self, seq_id: int) -> None:
        """Free all blocks of a finished sequence."""
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        self._tokens.pop(seq_id)
        self._free.extend(table)
        self.stats.used_blocks -= len(table)

    @property
    def live_sequences(self) -> List[int]:
        """Ids of sequences currently holding blocks."""
        return list(self._tables)

    def seq_tokens(self, seq_id: int) -> int:
        """Current token count of a sequence."""
        if seq_id not in self._tokens:
            raise AllocationError(f"unknown sequence {seq_id}")
        return self._tokens[seq_id]

    # -- whole-pool views --------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes of KV data logically stored (not block-rounded)."""
        return sum(
            t * self.spec.bytes_per_token_per_layer * self.spec.n_layers
            for t in self._tokens.values()
        )

    @property
    def internal_fragmentation(self) -> float:
        """Wasted fraction inside allocated blocks (last-block slack)."""
        used_bytes = self.stats.used_blocks * self.bytes_per_block
        if used_bytes == 0:
            return 0.0
        return 1.0 - self.live_bytes / used_bytes

    def concat_traffic_bytes(self) -> int:
        """Paged caches never copy on growth."""
        return 0

    def release_pool(self) -> None:
        """Return the reservation to the device allocator."""
        if self._tables:
            raise AllocationError("release_pool() with live sequences")
        self.allocator.free(self._pool)
        self._free.clear()
        self.stats.used_blocks = 0
