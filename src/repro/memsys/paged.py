"""Paged KV-cache block manager (vLLM-style; extension beyond the paper).

The paper's HF runtime grows one contiguous K/V tensor per layer
(DynamicCache) and pays the concat churn this repo's allocator exposes.
PagedAttention instead carves the cache region into fixed-size *blocks*
(``block_tokens`` token slots each) and maps sequences onto them through
per-sequence block tables, eliminating both the concat copies and the
contiguity fragmentation.  This module implements the block manager so
the ablation bench can quantify what the paper's setup leaves on the
table.

The manager is allocator-backed: the block pool is one large allocation
(as vLLM reserves its cache up front), and utilisation is tracked in
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError, ConfigError, OutOfMemoryError
from repro.memsys.allocator import Allocation, CachingAllocator
from repro.memsys.kvcache import KVCacheSpec


@dataclass
class PagedStats:
    """Block-pool utilisation counters."""

    total_blocks: int = 0
    used_blocks: int = 0
    peak_used_blocks: int = 0
    allocations: int = 0
    #: Copy-on-write block duplications (a sequence wrote into a block
    #: it shared with someone else and got its own copy first).
    cow_copies: int = 0


class PagedKVCache:
    """Fixed-size-block KV cache with per-sequence block tables.

    Parameters
    ----------
    spec:
        KV geometry (shared with the contiguous caches).
    allocator:
        Device allocator the pool is reserved from.
    pool_bytes:
        Size of the up-front cache reservation.
    block_tokens:
        Token slots per block (vLLM default: 16).
    """

    def __init__(
        self,
        spec: KVCacheSpec,
        allocator: CachingAllocator,
        pool_bytes: int,
        block_tokens: int = 16,
    ):
        if block_tokens < 1:
            raise ConfigError("block_tokens must be >= 1")
        if pool_bytes <= 0:
            raise ConfigError("pool must be positive")
        self.spec = spec
        self.block_tokens = block_tokens
        self.bytes_per_block = (
            spec.bytes_per_token_per_layer * spec.n_layers * block_tokens
        )
        if pool_bytes < self.bytes_per_block:
            raise ConfigError("pool smaller than a single block")
        self.allocator = allocator
        self._pool: Allocation = allocator.alloc(pool_bytes, tag="paged-kv-pool")
        n_blocks = pool_bytes // self.bytes_per_block
        self._free: List[int] = list(range(n_blocks))
        #: sequence id -> (block ids, tokens used)
        self._tables: Dict[int, List[int]] = {}
        self._tokens: Dict[int, int] = {}
        #: block id -> reference count; a block referenced by more than
        #: one table is a shared prefix block (radix caching).
        self._refs: Dict[int, int] = {}
        self.stats = PagedStats(total_blocks=n_blocks)

    # -- block accounting ----------------------------------------------------
    def _take_block(self) -> int:
        if not self._free:
            raise OutOfMemoryError(
                requested_bytes=self.bytes_per_block,
                available_bytes=0,
                context="paged KV pool exhausted",
            )
        blk = self._free.pop()
        self._refs[blk] = 1
        self.stats.used_blocks += 1
        self.stats.peak_used_blocks = max(
            self.stats.peak_used_blocks, self.stats.used_blocks
        )
        self.stats.allocations += 1
        return blk

    def _acquire_block(self, blk: int) -> int:
        """Take another reference on a live (shared) block."""
        if self._refs.get(blk, 0) < 1:
            raise AllocationError(f"block {blk} is not live; cannot share")
        self._refs[blk] += 1
        return blk

    def _release_block(self, blk: int) -> None:
        refs = self._refs.get(blk, 0)
        if refs < 1:
            raise AllocationError(f"block {blk} released while free")
        if refs == 1:
            del self._refs[blk]
            self._free.append(blk)
            self.stats.used_blocks -= 1
        else:
            self._refs[blk] = refs - 1

    def blocks_needed(self, n_tokens: int) -> int:
        """Blocks required for a sequence of ``n_tokens``."""
        return -(-n_tokens // self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def can_admit(self, n_tokens: int) -> bool:
        """Would a sequence of ``n_tokens`` (total) fit right now?"""
        return self.blocks_needed(n_tokens) <= self.free_blocks

    # -- sequence lifecycle ----------------------------------------------------
    def add_sequence(self, seq_id: int, prompt_tokens: int,
                     shared_blocks: "Optional[List[int]]" = None) -> None:
        """Admit a sequence and allocate blocks for its prompt.

        ``shared_blocks`` (radix prefix caching) are live block ids whose
        KV covers the head of this prompt — they join the table by
        reference instead of fresh allocation, so only the tail past the
        shared prefix costs pool capacity.
        """
        if seq_id in self._tables:
            raise AllocationError(f"sequence {seq_id} already present")
        if prompt_tokens < 1:
            raise ConfigError("prompt must have >= 1 token")
        shared = list(shared_blocks or ())
        needed = self.blocks_needed(prompt_tokens)
        if len(shared) > needed:
            raise AllocationError(
                f"{len(shared)} shared blocks exceed the {needed} the "
                f"prompt needs")
        fresh = needed - len(shared)
        if fresh > self.free_blocks:
            raise OutOfMemoryError(
                requested_bytes=fresh * self.bytes_per_block,
                available_bytes=self.free_blocks * self.bytes_per_block,
                context=f"admitting sequence {seq_id}",
            )
        table = [self._acquire_block(b) for b in shared]
        table.extend(self._take_block() for _ in range(fresh))
        self._tables[seq_id] = table
        self._tokens[seq_id] = prompt_tokens

    def prefix_blocks(self, seq_id: int, n_blocks: int) -> List[int]:
        """The first ``n_blocks`` block ids of a live sequence (for
        sharing with a new sequence whose prompt starts identically)."""
        table = self._tables.get(seq_id)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        if n_blocks > len(table):
            raise AllocationError(
                f"sequence {seq_id} holds {len(table)} blocks, "
                f"{n_blocks} requested")
        return table[:n_blocks]

    def copy_block(self, seq_id: int, index: int) -> bool:
        """Copy-on-write: give ``seq_id`` a private copy of table block
        ``index`` if it is currently shared.  Returns True when a copy
        was made (may raise :class:`OutOfMemoryError` for the copy)."""
        table = self._tables.get(seq_id)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        blk = table[index]
        if self._refs.get(blk, 0) <= 1:
            return False
        fresh = self._take_block()
        table[index] = fresh
        self._release_block(blk)
        self.stats.cow_copies += 1
        return True

    def append_token(self, seq_id: int) -> None:
        """Extend a sequence by one token, growing its table if needed.

        Writing into a shared last block triggers copy-on-write first —
        the radix prefix the block belongs to must stay immutable.
        """
        table = self._tables.get(seq_id)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        tokens = self._tokens[seq_id] + 1
        if self.blocks_needed(tokens) > len(table):
            table.append(self._take_block())
        else:
            self.copy_block(seq_id, len(table) - 1)
        self._tokens[seq_id] = tokens

    def release_sequence(self, seq_id: int) -> None:
        """Drop all of a finished sequence's block references; blocks
        return to the pool once their last reference is gone."""
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise AllocationError(f"unknown sequence {seq_id}")
        self._tokens.pop(seq_id)
        for blk in table:
            self._release_block(blk)

    @property
    def live_sequences(self) -> List[int]:
        """Ids of sequences currently holding blocks."""
        return list(self._tables)

    def seq_tokens(self, seq_id: int) -> int:
        """Current token count of a sequence."""
        if seq_id not in self._tokens:
            raise AllocationError(f"unknown sequence {seq_id}")
        return self._tokens[seq_id]

    # -- whole-pool views --------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes of KV data logically stored (not block-rounded)."""
        return sum(
            t * self.spec.bytes_per_token_per_layer * self.spec.n_layers
            for t in self._tokens.values()
        )

    @property
    def shared_blocks(self) -> int:
        """Blocks currently referenced by more than one sequence."""
        return sum(1 for r in self._refs.values() if r > 1)

    @property
    def internal_fragmentation(self) -> float:
        """Wasted fraction inside allocated blocks (last-block slack).

        Clamped at 0: with prefix sharing, logical bytes can exceed the
        physical blocks backing them.
        """
        used_bytes = self.stats.used_blocks * self.bytes_per_block
        if used_bytes == 0:
            return 0.0
        return max(0.0, 1.0 - self.live_bytes / used_bytes)

    def concat_traffic_bytes(self) -> int:
        """Paged caches never copy on growth."""
        return 0

    def release_pool(self) -> None:
        """Return the reservation to the device allocator."""
        if self._tables:
            raise AllocationError("release_pool() with live sequences")
        self.allocator.free(self._pool)
        self._free.clear()
        self._refs.clear()
        self.stats.used_blocks = 0
