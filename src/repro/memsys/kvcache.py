"""KV-cache manager mirroring HuggingFace cache implementations.

Two modes:

- ``dynamic`` (HF ``DynamicCache``, what the paper's setup uses): each
  generated token triggers, per layer, a ``torch.cat`` that allocates a
  new K and V tensor one token longer and frees the old one.  Driving
  this through the :class:`~repro.memsys.allocator.CachingAllocator`
  reproduces the cache-churn memory overhead the paper measures.
- ``static`` (HF ``StaticCache`` / pre-allocated): one allocation at the
  final length, used by the ablation bench to quantify the churn cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.memsys.allocator import Allocation, CachingAllocator


@dataclass(frozen=True)
class KVCacheSpec:
    """Geometry of one model's KV cache.

    ``bytes_per_token_per_layer`` is for a *single sequence*: K and V for
    one token in one layer (``2 * kv_heads * head_dim * dtype_bytes``).
    """

    n_layers: int
    kv_heads: int
    head_dim: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.n_layers, self.kv_heads, self.head_dim, self.dtype_bytes) < 1:
            raise ConfigError("KV cache spec fields must be >= 1")

    @property
    def bytes_per_token_per_layer(self) -> int:
        return 2 * self.kv_heads * self.head_dim * self.dtype_bytes

    def bytes_total(self, batch_size: int, seq_len: int) -> int:
        """Total cache bytes for ``batch_size`` sequences at ``seq_len``."""
        return (
            self.bytes_per_token_per_layer * self.n_layers * batch_size * seq_len
        )

    def layer_tensor_bytes(self, batch_size: int, seq_len: int) -> int:
        """Bytes of *one* of K or V for one layer, whole batch."""
        return self.kv_heads * self.head_dim * self.dtype_bytes * batch_size * seq_len


class KVCache:
    """Allocator-backed KV cache for one running batch."""

    def __init__(
        self,
        spec: KVCacheSpec,
        allocator: CachingAllocator,
        batch_size: int,
        mode: str = "dynamic",
        max_seq_len: Optional[int] = None,
    ):
        if batch_size < 1:
            raise ConfigError("batch size must be >= 1")
        if mode not in ("dynamic", "static"):
            raise ConfigError(f"unknown KV cache mode {mode!r}")
        if mode == "static" and max_seq_len is None:
            raise ConfigError("static KV cache requires max_seq_len")
        self.spec = spec
        self.allocator = allocator
        self.batch_size = batch_size
        self.mode = mode
        self.max_seq_len = max_seq_len
        self.seq_len = 0
        # One handle per layer per {K, V} tensor.
        self._handles: List[Allocation] = []

    def prefill(self, n_tokens: int) -> None:
        """Allocate the cache for the prompt (one shot, both modes)."""
        if self.seq_len != 0:
            raise ConfigError("prefill() on a non-empty cache")
        if n_tokens < 1:
            raise ConfigError("prefill needs >= 1 token")
        length = self.max_seq_len if self.mode == "static" else n_tokens
        assert length is not None
        per_tensor = self.spec.layer_tensor_bytes(self.batch_size, length)
        for layer in range(self.spec.n_layers):
            for kv in ("k", "v"):
                self._handles.append(
                    self.allocator.alloc(per_tensor, tag=f"kv.{kv}.L{layer}")
                )
        self.seq_len = n_tokens

    def append_token(self) -> None:
        """Extend every layer's cache by one token (decode step)."""
        if self.seq_len == 0:
            raise ConfigError("append_token() before prefill()")
        new_len = self.seq_len + 1
        if self.mode == "static":
            assert self.max_seq_len is not None
            if new_len > self.max_seq_len:
                raise ConfigError("static KV cache overflow")
            self.seq_len = new_len
            return
        per_tensor = self.spec.layer_tensor_bytes(self.batch_size, new_len)
        # In-place update keeps the handle list consistent if an OOM is
        # raised mid-way (realloc_grow allocates before freeing).
        for i in range(len(self._handles)):
            self._handles[i] = self.allocator.realloc_grow(self._handles[i], per_tensor)
        self.seq_len = new_len

    @property
    def live_bytes(self) -> int:
        """Bytes currently held by the cache tensors (logical sizes)."""
        if self.mode == "static" and self._handles:
            assert self.max_seq_len is not None
            return self.spec.bytes_total(self.batch_size, self.max_seq_len)
        return self.spec.bytes_total(self.batch_size, self.seq_len)

    def concat_traffic_bytes(self) -> int:
        """DRAM bytes moved by one ``append_token`` (read old + write new).

        Zero in static mode (writes only the new token, negligible).
        """
        if self.mode == "static":
            return 0
        old = self.spec.bytes_total(self.batch_size, self.seq_len)
        new = self.spec.bytes_total(self.batch_size, self.seq_len + 1)
        return old + new

    def release(self) -> None:
        """Free all cache tensors (end of batch)."""
        for h in self._handles:
            self.allocator.free(h)
        self._handles.clear()
        self.seq_len = 0
