"""Fast-forward allocator trajectories: replay a whole batch in one step.

Profiling the cold study path (``repro profile``) shows ~94% of
simulated-run wall time is allocator churn: every decoded token drives
``2 * n_layers`` ``realloc_grow`` calls through
:class:`~repro.memsys.allocator.CachingAllocator`, each a best-fit scan
plus coalescing bookkeeping.  None of that work depends on simulated
*time* — the allocator op stream of one executor batch is a pure
function of (allocator state, batch geometry).  This module exploits
that:

- :func:`state_fingerprint` captures the exact allocator state as a
  hashable tuple (per-pool block layouts + capacity/GC knobs + counters
  that feed GC decisions).
- :class:`AllocatorMirror` replays the allocator's semantics — 512 B
  rounding, pooled segments, best-fit with the same (size, pool
  position, offset) tie-break, remainder splitting, free coalescing,
  GC-threshold / dead-cap / OOM-retry reclaim — on an indexed copy
  where best-fit is a ``bisect`` instead of a scan.
- :func:`TrajectoryCache.delta_for` simulates one batch's entire op
  stream (:class:`StreamSpec`) on a mirror and memoizes the resulting
  :class:`TrajectoryDelta` by ``(fingerprint, stream)``.  Because the
  measurement protocol replays identical batches ``warmup + n_runs``
  times — and study sweeps repeat (model, precision, batch, length)
  combinations across power modes — almost every batch after the first
  is a cache hit applied in O(segments) instead of O(tokens * layers).

A batch's stream is *net-zero*: everything it allocates, it frees.  Two
structural invariants make the delta exact: the allocator never mutates
used blocks (weights are untouched), and free space is always maximal
(no two adjacent free blocks), so freeing everything a batch allocated
restores every surviving pre-batch segment to its exact block layout.
The only lasting effects are reclaimed segments, surviving new (fully
free) segments, counter/watermark updates — precisely what
:class:`TrajectoryDelta` records and :func:`apply_delta` applies.

Bit-exactness is property-tested differentially against the real
allocator in ``tests/memsys/test_fastpath.py`` and end-to-end in
``tests/engine/test_fast_forward.py``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OutOfMemoryError
from repro.memsys.allocator import (
    LARGE_ROUND,
    LARGE_SEGMENT_MIN,
    ROUND_SMALL,
    SMALL_LARGE_THRESHOLD,
    SMALL_SEGMENT,
    CachingAllocator,
    _round_up,
    _Segment,
)

_POOLS = ("small", "large")


def state_fingerprint(allocator: CachingAllocator) -> tuple:
    """Hashable exact snapshot of everything that determines how the
    allocator responds to a future operation stream.

    Includes ``stats.allocated`` (not derivable from the layout alone —
    sub-512 B remainders absorbed into used blocks make block sizes
    exceed their rounded accounting) because the GC free-fraction test
    reads it.
    """
    layout = tuple(
        tuple(
            (seg.size, tuple((b.offset, b.size, b.free) for b in seg.blocks))
            for seg in allocator._pools[pool]
        )
        for pool in _POOLS
    )
    return (
        layout,
        allocator.capacity,
        allocator.gc_threshold,
        allocator.dead_cap_bytes,
        allocator.stats.allocated,
        allocator.stats.reserved,
        allocator._dead_bytes,
    )


@dataclass(frozen=True)
class StreamSpec:
    """The allocator-visible operation stream of one executor batch.

    Mirrors :meth:`~repro.engine.executor.BatchExecutor.run` exactly:
    workspace+activation alloc, ``2 * n_layers`` KV prefill allocs, an
    optional eager-score buffer, then per decoded token the in-place
    ``realloc_grow`` of every KV tensor (dynamic mode) followed by the
    eager buffer's free-then-alloc, and finally-ordered cleanup (eager,
    KV handles in list order, workspace).
    """

    workspace_bytes: int
    n_kv_tensors: int
    kv_prefill_bytes: int
    #: Per-token per-tensor realloc size (``()`` for static KV).
    kv_step_bytes: Tuple[int, ...]
    eager_prefill_bytes: Optional[int]
    #: Per-token eager-score buffer size (``()`` when eager is off).
    eager_step_bytes: Tuple[int, ...]
    n_tokens: int


@dataclass(frozen=True)
class TrajectoryDelta:
    """Net allocator effect of one batch, applied in O(segments).

    ``oom`` is ``None`` for a clean batch, ``("setup", 0)`` when the
    workspace/KV-prefill/eager setup allocations fail, or
    ``("decode", j)`` when token ``j`` (0-based) fails mid-decode.
    """

    oom: Optional[Tuple[str, int]]
    #: Per pool (small, large): indices of pre-batch segments reclaimed.
    removed: Tuple[Tuple[int, ...], Tuple[int, ...]]
    #: Per pool: sizes of surviving new segments, in creation order
    #: (they are fully free at batch end — the stream is net-zero).
    added: Tuple[Tuple[int, ...], Tuple[int, ...]]
    n_allocs: int
    n_segment_allocs: int
    n_reclaims: int
    n_oom_retries: int
    #: Absolute high-water marks reached during the batch.
    peak_allocated: int
    peak_reserved: int
    reserved_end: int
    dead_bytes_end: int


def apply_delta(allocator: CachingAllocator, delta: TrajectoryDelta) -> None:
    """Apply a memoized batch trajectory to the real allocator."""
    for pool, removed, added in zip(_POOLS, delta.removed, delta.added):
        segs = allocator._pools[pool]
        if removed:
            drop = set(removed)
            segs = [s for i, s in enumerate(segs) if i not in drop]
        for size in added:
            segs.append(_Segment(size=size, pool=pool))
        allocator._pools[pool] = segs
    st = allocator.stats
    st.n_allocs += delta.n_allocs
    st.n_segment_allocs += delta.n_segment_allocs
    st.n_reclaims += delta.n_reclaims
    st.n_oom_retries += delta.n_oom_retries
    st.reserved = delta.reserved_end
    if delta.peak_allocated > st.peak_allocated:
        st.peak_allocated = delta.peak_allocated
    if delta.peak_reserved > st.peak_reserved:
        st.peak_reserved = delta.peak_reserved
    allocator._dead_bytes = delta.dead_bytes_end


class _MirrorSegment:
    """Interval view of one segment: free spans by start/end offset plus
    used spans by offset (used only to reconstruct fingerprints and to
    answer the fully-free test in O(1))."""

    __slots__ = ("seq", "size", "pool", "orig_index",
                 "free_starts", "free_ends", "used_blocks")

    def __init__(self, seq: int, size: int, pool: str,
                 orig_index: Optional[int]):
        self.seq = seq
        self.size = size
        self.pool = pool
        self.orig_index = orig_index
        self.free_starts: Dict[int, int] = {}  # start offset -> span size
        self.free_ends: Dict[int, int] = {}    # end offset -> start offset
        self.used_blocks: Dict[int, int] = {}  # start offset -> span size


class AllocatorMirror:
    """Bit-exact replay of :class:`CachingAllocator` on an indexed copy.

    Best-fit: the real allocator scans pool segments in list order and
    keeps the first strictly-smaller fitting block, i.e. it picks the
    lexicographic minimum of ``(block size, segment position, block
    offset)``.  The mirror keeps one sorted list per pool of
    ``(size, segment seq, offset, segment)`` — pool lists are always
    ordered by creation ``seq``, so ``bisect_left`` on ``(rounded, -1,
    -1)`` lands on exactly that minimum.
    """

    __slots__ = ("capacity", "gc_threshold", "dead_cap_bytes",
                 "allocated", "reserved", "dead_bytes",
                 "peak_allocated", "peak_reserved",
                 "n_allocs", "n_segment_allocs", "n_reclaims",
                 "n_oom_retries", "pools", "index", "_seq", "_n_orig")

    def __init__(self, allocator: CachingAllocator):
        self.capacity = allocator.capacity
        self.gc_threshold = allocator.gc_threshold
        self.dead_cap_bytes = allocator.dead_cap_bytes
        st = allocator.stats
        self.allocated = st.allocated
        self.reserved = st.reserved
        self.dead_bytes = allocator._dead_bytes
        self.peak_allocated = st.allocated
        self.peak_reserved = st.reserved
        self.n_allocs = 0
        self.n_segment_allocs = 0
        self.n_reclaims = 0
        self.n_oom_retries = 0
        self._seq = 0
        self.pools: Dict[str, List[_MirrorSegment]] = {p: [] for p in _POOLS}
        self.index: Dict[str, list] = {p: [] for p in _POOLS}
        self._n_orig: Dict[str, int] = {}
        for pool in _POOLS:
            idx = self.index[pool]
            for i, seg in enumerate(allocator._pools[pool]):
                m = _MirrorSegment(self._seq, seg.size, pool, i)
                self._seq += 1
                for b in seg.blocks:
                    if b.free:
                        m.free_starts[b.offset] = b.size
                        m.free_ends[b.offset + b.size] = b.offset
                        idx.append((b.size, m.seq, b.offset, m))
                    else:
                        m.used_blocks[b.offset] = b.size
                self.pools[pool].append(m)
            self._n_orig[pool] = len(self.pools[pool])
            idx.sort()

    # -- operations ---------------------------------------------------------
    def alloc(self, nbytes: int) -> tuple:
        rounded = _round_up(int(nbytes), ROUND_SMALL)
        pool = "small" if rounded < SMALL_LARGE_THRESHOLD else "large"
        idx = self.index[pool]
        i = bisect_left(idx, (rounded, -1, -1))
        if i < len(idx):
            size, _, offset, seg = idx.pop(i)
            del seg.free_starts[offset]
            del seg.free_ends[offset + size]
        else:
            seg = self._new_segment(rounded, pool)
            size, offset = seg.size, 0
        if not seg.used_blocks:
            self.dead_bytes -= seg.size
        remainder = size - rounded
        if remainder >= ROUND_SMALL:
            used_size = rounded
            roff = offset + rounded
            seg.free_starts[roff] = remainder
            seg.free_ends[offset + size] = roff
            insort(idx, (remainder, seg.seq, roff, seg))
        else:
            # Too small to track separately: absorbed into the used span.
            used_size = size
        seg.used_blocks[offset] = used_size
        self.allocated += rounded
        self.n_allocs += 1
        if self.allocated > self.peak_allocated:
            self.peak_allocated = self.allocated
        return (seg, offset, used_size, rounded)

    def free(self, handle: tuple) -> None:
        seg, offset, used_size, rounded = handle
        del seg.used_blocks[offset]
        idx = self.index[seg.pool]
        start = offset
        size = used_size
        end = offset + used_size
        right = seg.free_starts.pop(end, None)
        if right is not None:
            del seg.free_ends[end + right]
            self._index_remove(idx, right, seg.seq, end)
            size += right
            end += right
        left_start = seg.free_ends.pop(offset, None)
        if left_start is not None:
            left_size = seg.free_starts.pop(left_start)
            self._index_remove(idx, left_size, seg.seq, left_start)
            start = left_start
            size += left_size
        seg.free_starts[start] = size
        seg.free_ends[start + size] = start
        insort(idx, (size, seg.seq, start, seg))
        if not seg.used_blocks:
            self.dead_bytes += seg.size
        self.allocated -= rounded
        self._maybe_gc()

    def realloc_grow(self, handle: tuple, nbytes: int) -> tuple:
        # Alloc-new-then-free-old, like the real allocator: the OOM (if
        # any) fires before the old handle is released.
        new = self.alloc(nbytes)
        self.free(handle)
        return new

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _index_remove(idx: list, size: int, seq: int, offset: int) -> None:
        i = bisect_left(idx, (size, seq, offset))
        del idx[i]

    def _new_segment(self, rounded: int, pool: str) -> _MirrorSegment:
        if pool == "small":
            size = SMALL_SEGMENT
        else:
            size = max(LARGE_SEGMENT_MIN, _round_up(rounded, LARGE_ROUND))
        if self.reserved + size > self.capacity:
            self.n_oom_retries += 1
            self._reclaim()
            if self.reserved + size > self.capacity:
                raise OutOfMemoryError(
                    requested_bytes=size,
                    available_bytes=self.capacity - self.reserved,
                    context="caching allocator segment",
                )
        seg = _MirrorSegment(self._seq, size, pool, None)
        self._seq += 1
        self.pools[pool].append(seg)
        self.dead_bytes += size  # fully free until the caller carves it
        self.reserved += size
        self.n_segment_allocs += 1
        if self.reserved > self.peak_reserved:
            self.peak_reserved = self.reserved
        return seg

    def _maybe_gc(self) -> None:
        if self.reserved == 0:
            return
        if self.gc_threshold is not None:
            free_frac = 1.0 - self.allocated / self.reserved
            if free_frac > self.gc_threshold:
                self._reclaim()
                return
        if self.dead_cap_bytes is not None and self.dead_bytes > self.dead_cap_bytes:
            self._reclaim()

    def _reclaim(self) -> None:
        reclaimed = False
        for pool in _POOLS:
            idx = self.index[pool]
            kept: List[_MirrorSegment] = []
            for seg in self.pools[pool]:
                if not seg.used_blocks:
                    # Invariant: a segment with no used spans has exactly
                    # one (coalesced) free span covering it.
                    self.reserved -= seg.size
                    reclaimed = True
                    self._index_remove(idx, seg.size, seg.seq, 0)
                else:
                    kept.append(seg)
            self.pools[pool] = kept
        if reclaimed:
            self.n_reclaims += 1
        self.dead_bytes = 0

    # -- views --------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Same format as :func:`state_fingerprint` (differential tests)."""
        layout = tuple(
            tuple(
                (seg.size, tuple(sorted(
                    [(off, sz, True) for off, sz in seg.free_starts.items()]
                    + [(off, sz, False) for off, sz in seg.used_blocks.items()]
                )))
                for seg in self.pools[pool]
            )
            for pool in _POOLS
        )
        return (layout, self.capacity, self.gc_threshold,
                self.dead_cap_bytes, self.allocated, self.reserved,
                self.dead_bytes)

    def delta(self, oom: Optional[Tuple[str, int]]) -> TrajectoryDelta:
        removed = []
        added = []
        for pool in _POOLS:
            surviving = {seg.orig_index for seg in self.pools[pool]
                         if seg.orig_index is not None}
            removed.append(tuple(i for i in range(self._n_orig[pool])
                                 if i not in surviving))
            added.append(tuple(seg.size for seg in self.pools[pool]
                               if seg.orig_index is None))
        return TrajectoryDelta(
            oom=oom,
            removed=(removed[0], removed[1]),
            added=(added[0], added[1]),
            n_allocs=self.n_allocs,
            n_segment_allocs=self.n_segment_allocs,
            n_reclaims=self.n_reclaims,
            n_oom_retries=self.n_oom_retries,
            peak_allocated=self.peak_allocated,
            peak_reserved=self.peak_reserved,
            reserved_end=self.reserved,
            dead_bytes_end=self.dead_bytes,
        )


def simulate_stream(mirror: AllocatorMirror,
                    stream: StreamSpec) -> Optional[Tuple[str, int]]:
    """Run one batch's op stream on a mirror; returns the OOM marker.

    Replays :meth:`BatchExecutor.run` exactly, including the partial
    states an OOM leaves behind (a mid-``append_token`` failure keeps
    the not-yet-grown handles; cleanup frees whatever is live, in the
    executor's ``finally`` order).
    """
    oom: Optional[Tuple[str, int]] = None
    ws = None
    kv: List[tuple] = []
    eager = None
    try:
        ws = mirror.alloc(stream.workspace_bytes)
        for _ in range(stream.n_kv_tensors):
            kv.append(mirror.alloc(stream.kv_prefill_bytes))
        if stream.eager_prefill_bytes is not None:
            eager = mirror.alloc(stream.eager_prefill_bytes)
    except OutOfMemoryError:
        oom = ("setup", 0)
    if oom is None:
        for j in range(stream.n_tokens):
            try:
                if stream.kv_step_bytes:
                    per = stream.kv_step_bytes[j]
                    for i in range(stream.n_kv_tensors):
                        kv[i] = mirror.realloc_grow(kv[i], per)
                if stream.eager_step_bytes:
                    buf, eager = eager, None
                    mirror.free(buf)
                    eager = mirror.alloc(stream.eager_step_bytes[j])
            except OutOfMemoryError:
                oom = ("decode", j)
                break
    if eager is not None:
        mirror.free(eager)
    for h in kv:
        mirror.free(h)
    if ws is not None:
        mirror.free(ws)
    return oom


class TrajectoryCache:
    """Process-global LRU of batch trajectories.

    Keys are ``(state_fingerprint(allocator), stream)`` — exact tuple
    equality, so a hit can only ever replay the exact same trajectory.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._map: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def delta_for(self, allocator: CachingAllocator,
                  stream: StreamSpec) -> TrajectoryDelta:
        key = (state_fingerprint(allocator), stream)
        delta = self._map.get(key)
        if delta is not None:
            self.hits += 1
            self._map.move_to_end(key)
            return delta
        self.misses += 1
        mirror = AllocatorMirror(allocator)
        oom = simulate_stream(mirror, stream)
        delta = mirror.delta(oom)
        self._map[key] = delta
        if len(self._map) > self.max_entries:
            self._map.popitem(last=False)
        return delta

    def clear(self) -> None:
        self._map.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._map)


#: Shared across all executors in the process: study sweeps repeat the
#: same (model, precision, batch, length) geometry across power modes
#: and replayed runs, and those trajectories are identical.
TRAJECTORY_CACHE = TrajectoryCache()
