"""Memory subsystem: caching allocator, KV cache, usage tracking.

The paper reports *incremental peak memory* (peak during the run minus
baseline before model load) and observes out-of-memory failures whose
boundary depends on batch size, sequence length and the model's attention
implementation.  Reproducing these requires modelling the PyTorch CUDA
caching allocator, not just summing tensor sizes:

- :mod:`repro.memsys.allocator` — segment/block caching allocator with
  512 B / 2 MiB rounding, 20 MiB small-segment pooling, block split and
  coalesce, and pressure-driven reclaim of empty segments.
- :mod:`repro.memsys.kvcache` — HF ``DynamicCache``-style KV cache whose
  per-step ``torch.cat`` churn produces the fragmentation overhead the
  paper measures.
- :mod:`repro.memsys.tracker` — baseline/peak/incremental bookkeeping as
  jtop post-processing does it.
"""

from repro.memsys.allocator import AllocStats, Allocation, CachingAllocator
from repro.memsys.kvcache import KVCache, KVCacheSpec
from repro.memsys.paged import PagedKVCache
from repro.memsys.tracker import MemoryTracker

__all__ = [
    "AllocStats",
    "Allocation",
    "CachingAllocator",
    "KVCache",
    "KVCacheSpec",
    "MemoryTracker",
    "PagedKVCache",
]
