"""Power-mode autoscaling: trade SLO headroom for fleet energy.

An idle or lightly-loaded Jetson still burns tens of watts at MAXN
clocks; the paper's Table 2/Fig 5 point is that reduced power modes cost
little throughput in memory-bound phases.  The
:class:`PowerModeAutoscaler` closes that loop at fleet level: a periodic
control process walks every node's queue depth and steps the node up or
down a ladder of nvpmodel-style modes (clamped to each device's actual
frequency/core ranges), so the fleet runs hot only while the load needs
it.

The cost model reads clocks live (``freq_ratio`` at call time), so a
mode switch changes both the node's service rate and its power draw from
the next engine step on — and the energy-aware router's J/token scores
move with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.obs import kinds
from repro.power.modes import PAPER_POWER_MODES, PowerMode
from repro.sim.environment import Environment


def clamp_mode_to_device(mode: PowerMode, device: EdgeDevice) -> PowerMode:
    """Fit a mode into the device's frequency/core envelope.

    Heterogeneous fleets share one ladder; an Orin 32GB cannot reach the
    64GB's 1.301 GHz GPU clock, so each rung is clamped per device.
    """

    def _clamp(v: float, lo: float, hi: float) -> float:
        return min(max(v, lo), hi)

    return PowerMode(
        name=mode.name,
        gpu_freq_hz=_clamp(mode.gpu_freq_hz, device.gpu.min_freq_hz,
                           device.gpu.max_freq_hz),
        cpu_freq_hz=_clamp(mode.cpu_freq_hz, device.cpu.min_freq_hz,
                           device.cpu.max_freq_hz),
        cpu_online_cores=min(mode.cpu_online_cores, device.cpu.total_cores),
        mem_freq_hz=_clamp(mode.mem_freq_hz, device.memory.min_freq_hz,
                           device.memory.max_freq_hz),
    )


@dataclass(frozen=True)
class ModeSwitch:
    """One autoscaling action, for the audit trail."""

    time_s: float
    node_id: int
    mode: str
    reason: str


@dataclass
class AutoscalerConfig:
    """Control-loop tuning.

    The ladder is ordered efficiency -> performance; the paper's GPU-
    frequency modes make a natural one (B: 400 MHz, A: 800 MHz, MAXN).
    """

    ladder: Sequence[str] = ("B", "A", "MAXN")
    period_s: float = 5.0
    #: Queue depth (queued + running) at or above which a node steps up.
    up_depth: int = 4
    #: Depth at or below which a node steps down one rung.
    down_depth: int = 1
    #: Consecutive calm periods required before stepping down.
    down_patience: int = 2
    #: Rung every node starts on.  Defaults to the *bottom* (most
    #: efficient) rung: decode is memory-bound, so reduced GPU clocks
    #: cost little time but real watts (the paper's Fig 5 / mode A
    #: finding) — the fleet should earn its MAXN, not start there.
    initial_rung: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.ladder) < 2:
            raise ConfigError("autoscaler ladder needs >= 2 modes")
        if self.period_s <= 0:
            raise ConfigError("control period must be positive")
        if self.down_depth >= self.up_depth:
            raise ConfigError("down_depth must be < up_depth")
        for name in self.ladder:
            if name.upper() not in PAPER_POWER_MODES:
                raise ConfigError(f"unknown power mode {name!r} in ladder")


class PowerModeAutoscaler:
    """Periodic per-node power-mode controller on the cluster clock."""

    def __init__(self, env: Environment, nodes: Sequence[ClusterNode],
                 config: Optional[AutoscalerConfig] = None):
        if not nodes:
            raise ConfigError("autoscaler needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self.config = config or AutoscalerConfig()
        self._modes = [
            PAPER_POWER_MODES[name.upper()] for name in self.config.ladder
        ]
        start = (0 if self.config.initial_rung is None
                 else self.config.initial_rung)
        if not 0 <= start < len(self._modes):
            raise ConfigError("initial_rung outside the ladder")
        self._rung: Dict[int, int] = {}
        self._idle_periods: Dict[int, int] = {}
        self.history: List[ModeSwitch] = []
        self._running = False
        for node in self.nodes:
            self._set_rung(node, start, reason="initial")

    # -- actions -----------------------------------------------------------
    def rung_of(self, node: ClusterNode) -> int:
        return self._rung[node.node_id]

    def mode_of(self, node: ClusterNode) -> str:
        return self._modes[self.rung_of(node)].name

    def _set_rung(self, node: ClusterNode, rung: int, reason: str) -> None:
        mode = clamp_mode_to_device(self._modes[rung], node.device)
        # Route through the node, not apply_power_mode directly: the
        # thermal governor rebases its throttle on the new clocks, so a
        # throttled node stays throttled relative to the new rung.
        node.apply_mode(mode)
        self._rung[node.node_id] = rung
        self._idle_periods[node.node_id] = 0
        self.history.append(
            ModeSwitch(self.env.now, node.node_id, mode.name, reason)
        )
        if node.obs.enabled:
            node.obs.instant(kinds.AUTOSCALE, cat=kinds.CAT_CLUSTER,
                             track=node.obs_track, rung=rung, mode=mode.name,
                             reason=reason)
            node.obs.metrics.counter(
                "autoscale_actions_total", node=str(node.node_id)).inc()

    def _control_step(self) -> None:
        cfg = self.config
        for node in self.nodes:
            if not node.healthy:
                continue  # a down board takes no nvpmodel commands
            rung = self._rung[node.node_id]
            depth = node.depth
            if depth >= cfg.up_depth and rung < len(self._modes) - 1:
                self._set_rung(node, rung + 1, reason=f"depth={depth}")
            elif depth <= cfg.down_depth and rung > 0:
                self._idle_periods[node.node_id] += 1
                if self._idle_periods[node.node_id] >= cfg.down_patience:
                    self._set_rung(node, rung - 1, reason=f"depth={depth}")
            else:
                self._idle_periods[node.node_id] = 0

    # -- process lifecycle -------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name="autoscaler")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        while self._running:
            yield self.env.timeout(self.config.period_s)
            if not self._running:
                break
            self._control_step()

    def n_switches(self) -> int:
        """Mode changes excluding the initial assignment."""
        return sum(1 for s in self.history if s.reason != "initial")
