"""One serving node: a device, its engine loop, queue and energy meter.

A :class:`ClusterNode` wraps an :class:`~repro.hardware.device.EdgeDevice`
with a continuous-batching serving loop (iteration-level scheduling, the
same discipline as
:class:`~repro.engine.scheduler.ContinuousBatchScheduler`) running as a
process on a *shared* simulation environment, so many nodes coexist on
one clock.  Each node owns:

- an admission queue with a depth cap (back-pressure) and a KV-budget
  check (requests whose full KV footprint can never fit are refused
  outright — the OOM-driven rejection path);
- an :class:`~repro.engine.state.EngineState` + jtop-style
  :class:`~repro.telemetry.sampler.PowerSampler`, so fleet energy is
  integrated from sampled traces exactly like the paper's methodology;
- exact per-step energy accounting used to attribute joules to the
  individual tokens each step produced;
- a lumped-RC :class:`~repro.hardware.thermal.ThermalModel` advanced by
  the *dissipated* step power, so thermal throttling emerges from the
  workload (a sustained MAXN batch heats the junction; the throttle
  multiplier then feeds back into the next step's clocks) instead of
  being scripted.

Nodes can serve both phases (default), or only prefill / only decode
for the Splitwise-style disaggregated routing policy.

Fault surface (driven by :mod:`repro.faults`): :meth:`crash` /
:meth:`restart` model a node death with KV-state loss, ``kv_shrink``
models transient OOM pressure, ``slowdown`` models straggler
interference, and :meth:`set_precision` is the graceful-degradation
hook.  All of it is deterministic on the shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.backends.base import resolve_backend
from repro.cluster.workload import ClusterRequest
from repro.fairness.scheduler import get_fair_scheduler
from repro.engine.kernels import EngineCostParams, StepCost
from repro.engine.state import EngineState
from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.hardware.thermal import ThermalModel
from repro.kvtier.policy import get_kv_policy
from repro.kvtier.radix import RadixPrefixCache
from repro.kvtier.swap import HostSwapSpace, swap_bandwidth_bytes_s
from repro.models.architecture import TransformerArchitecture
from repro.obs import kinds
from repro.obs.span import NO_SPAN, NULL_OBSERVER, Observer
from repro.power.model import ComponentUtilization, PowerModel
from repro.power.modes import PowerMode, apply_power_mode, get_power_mode
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment
from repro.sim.events import Interrupt
from repro.telemetry.sampler import PowerSampler

#: Workspace bytes reserved out of the KV budget (CUDA context, temps).
_WORKSPACE_BYTES = int(1e9)


def natural_kv_budget(device: EdgeDevice, backend,
                      arch: TransformerArchitecture,
                      precision: Precision) -> int:
    """KV bytes left on ``device`` after weights and workspace.

    This is the budget every node derives unless one was pinned
    explicitly at construction, and the same budget the analytic
    planner (:mod:`repro.plan`) uses for its M_total token capacity —
    one formula, two consumers, so the fluid model and the DES agree
    on memory by construction.  May be <= 0 when the weights alone
    exceed the board.
    """
    return int(
        device.memory.usable_bytes
        - backend.weight_bytes(arch, precision)
        - _WORKSPACE_BYTES
    )


def _util_of(cost: StepCost) -> ComponentUtilization:
    return ComponentUtilization.from_step_cost(cost)


@dataclass
class CrashEpisode:
    """One down interval of a node (``up_s`` is None while still down)."""

    down_s: float
    up_s: Optional[float] = None

    @property
    def repair_s(self) -> Optional[float]:
        if self.up_s is None:
            return None
        return self.up_s - self.down_s


class ClusterNode:
    """A single device serving requests on the shared cluster clock.

    Parameters
    ----------
    env:
        The shared simulation environment.
    node_id:
        Stable index within the cluster (used for deterministic
        tie-breaking by routers).
    device:
        The hardware preset instance (owned by this node; power modes
        mutate it).
    arch / precision:
        Model served by this node (every node holds a full replica).
    power_mode:
        Optional nvpmodel-style mode name applied at construction.
    role:
        ``"both"`` (default), ``"prefill"`` or ``"decode"`` — the
        latter two implement the Splitwise-style split.
    max_batch / max_queue:
        Concurrency cap of the running batch and depth cap of the
        admission queue (``submit`` refuses above it).
    thermal:
        Thermal RC model advanced by dissipated power each step
        (default: a stock :class:`ThermalModel`).  Throttling applies
        the model's frequency multiplier to the GPU clock on top of
        whatever power mode is active.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        device: EdgeDevice,
        arch: TransformerArchitecture,
        precision: Precision,
        power_mode: Optional[str] = None,
        role: str = "both",
        max_batch: int = 8,
        max_queue: int = 256,
        params: Optional[EngineCostParams] = None,
        power_model: Optional[PowerModel] = None,
        kv_budget_bytes: Optional[int] = None,
        sample_period_s: float = 1.0,
        thermal: Optional[ThermalModel] = None,
        obs: Optional[Observer] = None,
        backend=None,
        kv_policy=None,
        scheduler=None,
        region: Optional[str] = None,
        carbon_trace=None,
        tier: Optional[str] = None,
    ):
        if max_batch < 1 or max_queue < 1:
            raise ConfigError("max_batch and max_queue must be >= 1")
        if role not in ("both", "prefill", "decode"):
            raise ConfigError(f"unknown node role {role!r}")
        self.env = env
        self.node_id = node_id
        self.device = device
        self.arch = arch
        self.precision = precision
        self.role = role
        #: Geographic placement (``repro.sustain``): the node's region
        #: and the carbon/price trace its energy is metered against
        #: (None = no carbon accounting, the legacy behaviour).
        self.region = region
        self.carbon_trace = carbon_trace
        #: Cascade tier label; tiered requests only land on matching
        #: nodes (None accepts untiered traffic only — see ``accepts``).
        self.tier = tier
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._params = params
        #: Inference-runtime backend (name or instance); nodes of one
        #: fleet may mix runtimes.
        self.backend = resolve_backend(backend)
        if power_mode is not None:
            apply_power_mode(device, get_power_mode(power_mode))
        self.timer = self.backend.make_timer(arch, device, precision, params)
        self.power_model = power_model or PowerModel()
        self._explicit_kv_budget = kv_budget_bytes is not None
        if kv_budget_bytes is None:
            kv_budget_bytes = natural_kv_budget(device, self.backend,
                                                arch, precision)
        if kv_budget_bytes <= 0:
            raise ConfigError(
                f"model leaves no KV budget on node {node_id} ({device.name})"
            )
        self._kv_budget_base = kv_budget_bytes
        #: Fraction of the nominal KV budget currently usable (< 1 under
        #: injected OOM pressure).
        self.kv_shrink = 1.0
        self._kv_per_token = (
            arch.kv_cache_spec().bytes_per_token_per_layer * arch.n_layers
        )

        #: KV lifecycle policy (repro.kvtier): what happens to preempted
        #: requests' caches.  The default sacrifice/lifo/conservative is
        #: bit-identical to the historical preempt-youngest-recompute.
        self.kv_policy = get_kv_policy(kv_policy)
        self.swap: Optional[HostSwapSpace] = None
        if self.kv_policy.preserves_kv:
            self.swap = HostSwapSpace(int(
                self.kv_policy.host_capacity_frac
                * device.memory.capacity_bytes))
        #: Shared-prefix radix cache; only the paged runtime does block-
        #: granular sharing, and only ``prompt_ids``-carrying requests
        #: participate, so other configurations see an empty tree.
        self.radix: Optional[RadixPrefixCache] = None
        if self.backend.admits_by_free_blocks and self.role != "decode":
            bt = getattr(self.backend, "block_tokens", 16)
            self.radix = RadixPrefixCache(bt, bt * self._kv_per_token)
        #: Swap-out bus time accrued outside the serve loop, billed (with
        #: mem-bound energy) at the next loop iteration.
        self._pending_transfer_s = 0.0
        #: Preemptions that dropped KV (any policy; includes swap-space-
        #: full fallbacks).
        self.kv_sacrifices = 0

        #: Queue-scheduling discipline (``repro.fairness``): FCFS by
        #: default — a bit-identical extraction of the historical
        #: head-of-queue pop — or a fair policy (``vtc``, ``wsc``).
        self.scheduler = get_fair_scheduler(scheduler)
        #: Per-tenant decode-token production meter (counts every token
        #: this node produced for the tenant, replays included).
        self.tenant_served_tokens: Dict[str, int] = {}

        self.queue: List[ClusterRequest] = []
        self.active: List[ClusterRequest] = []
        self.completed: List[ClusterRequest] = []
        #: Called when a prefill-role node finishes a prompt (set by the
        #: cluster to start the KV transfer to a decode node).
        self.on_prefill_done: Optional[Callable[[ClusterRequest], None]] = None
        #: Called when a request finishes decoding.
        self.on_complete: Optional[Callable[[ClusterRequest], None]] = None
        #: Called with the orphaned requests when the node crashes (set
        #: by the cluster to requeue them elsewhere).
        self.on_crash: Optional[
            Callable[[List[ClusterRequest]], None]] = None

        #: Observability sink (spans/instants on the ``node{i}`` track).
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.obs_track = f"node{node_id}"
        self.state = EngineState()
        self.sampler = PowerSampler(env, device, self.power_model, self.state,
                                    period_s=sample_period_s, obs=self.obs,
                                    obs_track=self.obs_track)
        #: Exact step-accounted busy energy (J) and busy wall time (s).
        self.busy_energy_j = 0.0
        self.busy_seconds = 0.0
        #: Decode tokens this node produced (each token exactly once per
        #: *production*; replays after KV loss produce tokens again).
        self.served_tokens = 0
        #: Prompt tokens this node prefilled (replayed prefills count).
        self.prefilled_tokens = 0
        self.last_busy_s = 0.0

        # -- fault/resilience state ----------------------------------------
        #: False while crashed; admission refuses and routers skip.
        self.healthy = True
        #: Wall-time multiplier on engine steps (straggler interference).
        self.slowdown = 1.0
        #: Down intervals, for availability / MTTR accounting.
        self.crash_log: List[CrashEpisode] = []
        #: (time, throttled) transitions of the thermal governor.
        self.throttle_log: List[tuple] = []
        self.thermal = thermal if thermal is not None else ThermalModel()
        self._thermal_clock = env.now
        #: GPU clock the active power mode asks for; the thermal
        #: governor multiplies *this*, so throttling composes with
        #: nvpmodel changes instead of fighting them.
        self._base_gpu_hz = device.gpu.freq_hz

        self._wake = None
        self._restart_ev = None
        self._proc = env.process(self._serve_loop(), name=f"node-{node_id}")

    # -- capacity ----------------------------------------------------------
    @property
    def kv_budget(self) -> int:
        """Usable KV bytes right now (nominal budget x pressure shrink)."""
        return int(self._kv_budget_base * self.kv_shrink)

    def kv_bytes(self, tokens: int) -> int:
        return tokens * self._kv_per_token

    def _kv_need(self, r: ClusterRequest) -> int:
        """KV bytes admission charges ``r`` (backend discipline: hf/gguf
        reserve the whole lifetime, paged only the prompt's blocks).

        A swapped request must restore everything it preserved — prompt
        plus generated-so-far — before it can decode again."""
        if getattr(r, "kv_state", "resident") == "swapped":
            return r.swapped_kv_bytes
        out = 0 if self.role == "prefill" else r.output_tokens
        return self.backend.request_kv_reservation(
            r.input_tokens, out, self._kv_per_token)

    def _kv_live(self, r: ClusterRequest) -> int:
        """KV bytes ``r`` holds privately right now (grows per token
        under paged).  Prompt blocks living in the radix tree are
        charged once through the tree, not per sharer."""
        out = 0 if self.role == "prefill" else r.output_tokens
        live = self.backend.live_kv_bytes(
            r.input_tokens, r.generated, out, self._kv_per_token)
        if self.radix is not None and self.radix.holds(r.req_id):
            bt = self.radix.block_tokens
            live -= self.kv_bytes((r.input_tokens // bt) * bt)
        return max(0, live)

    @property
    def kv_in_use(self) -> int:
        total = sum(self._kv_live(r) for r in self.active)
        if self.radix is not None:
            # Tree-resident prompt blocks (shared and retained-after-
            # completion alike) occupy the pool once.
            total += self.radix.resident_bytes
        return total

    @property
    def kv_pressure(self) -> float:
        """Committed KV (running + queued) over budget; can exceed 1."""
        queued = sum(self._kv_need(r) for r in self.queue)
        return (self.kv_in_use + queued) / self.kv_budget

    @property
    def depth(self) -> int:
        """Outstanding work: queued plus running requests."""
        return len(self.queue) + len(self.active)

    def fits(self, r: ClusterRequest) -> bool:
        """Could this request *ever* run here (empty node, current budget)?"""
        return self._kv_need(r) <= self.kv_budget

    def accepts(self, r: ClusterRequest) -> bool:
        """Admission control: healthy, room in the queue, feasible
        footprint — and, for cascade fleets, a matching tier label
        (a tiered request names the model stage it needs; untiered
        requests go anywhere, so legacy fleets are unaffected)."""
        tier = getattr(r, "tier", None)
        if tier is not None and self.tier != tier:
            return False
        return (self.healthy and len(self.queue) < self.max_queue
                and self.fits(r))

    def submit(self, r: ClusterRequest) -> bool:
        """Enqueue a request; returns False if admission refuses it."""
        if not self.accepts(r):
            return False
        r.node_id = self.node_id
        self.queue.append(r)
        self.scheduler.on_arrival(r, self.env.now)
        if self.obs.enabled:
            r.queue_span = self.obs.begin(
                kinds.QUEUE, cat=kinds.CAT_REQUEST, track=f"req{r.req_id}",
                parent=r.obs_span, node=self.node_id)
        self._notify()
        return True

    def _notify(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    # -- operating point ---------------------------------------------------
    def apply_mode(self, mode: PowerMode) -> None:
        """Apply a power mode and rebase the thermal governor on it.

        All mode changes (autoscaler rungs, brownout downshifts) should
        come through here rather than mutating the device directly:
        the throttle multiplier is re-derived against the new base
        clock, so a throttled node switching modes stays throttled
        relative to the *new* mode.
        """
        apply_power_mode(self.device, mode)
        self._base_gpu_hz = self.device.gpu.freq_hz
        self._apply_throttle()
        if self.obs.enabled:
            self.obs.instant(kinds.MODE_CHANGE, cat=kinds.CAT_CLUSTER,
                             track=self.obs_track, mode=mode.name,
                             gpu_mhz=round(mode.gpu_freq_hz / 1e6))

    def current_mode_snapshot(self) -> PowerMode:
        """The operating point as an (anonymous) PowerMode, for restore."""
        dev = self.device
        return PowerMode(
            name=f"node{self.node_id}-snapshot",
            gpu_freq_hz=self._base_gpu_hz,
            cpu_freq_hz=dev.cpu.freq_hz,
            cpu_online_cores=dev.cpu.online_cores,
            mem_freq_hz=dev.memory.freq_hz,
        )

    def _apply_throttle(self) -> None:
        gpu = self.device.gpu
        target = self._base_gpu_hz * self.thermal.freq_multiplier
        target = min(max(target, gpu.min_freq_hz), gpu.max_freq_hz)
        if gpu.freq_hz != target:
            gpu.set_freq(target)

    def _idle_watts(self) -> float:
        return self.power_model.power_w(self.device,
                                        ComponentUtilization.idle())

    def _advance_thermal(self, watts: float, seconds: float) -> None:
        """Advance the RC node: idle gap since last step, then this step."""
        was_throttled = self.thermal.throttled
        gap = self.env.now - self._thermal_clock
        if gap > 0:
            self.thermal.advance(self._idle_watts(), gap)
        self.thermal.advance(watts, seconds)
        self._thermal_clock = self.env.now + seconds
        if self.thermal.throttled != was_throttled:
            self.throttle_log.append((self.env.now, self.thermal.throttled))
        self._apply_throttle()

    # -- faults ------------------------------------------------------------
    def crash(self) -> List[ClusterRequest]:
        """Kill the node: KV state is lost, outstanding work orphans.

        Active requests lose their generated tokens (``reset_for_replay``
        — the re-prefill bill lands on whichever node takes them next);
        queued ones had no state to lose.  Returns the orphans, and
        also hands them to ``on_crash`` if the cluster registered one.
        """
        if not self.healthy:
            return []
        self.healthy = False
        orphans = list(self.active) + list(self.queue)
        if self.obs.enabled:
            for r in self.active:
                self.obs.instant(kinds.REPLAY, cat=kinds.CAT_REQUEST,
                                 track=f"req{r.req_id}", parent=r.obs_span,
                                 node=self.node_id,
                                 tokens_lost=r.generated)
            for r in self.queue:
                self.obs.end(r.queue_span, outcome="crash")
                r.queue_span = NO_SPAN
        for r in self.active:
            r.reset_for_replay()
        for r in orphans:
            # Host swap space and the radix tree live on the same board:
            # a crash loses preserved KV exactly like resident KV.
            if r.kv_state == "swapped":
                if self.swap is not None:
                    self.swap.drop(r.req_id)
                r.kv_state = "sacrificed"
                r.swapped_kv_bytes = 0
                r.reset_for_replay()
            r.prefix_cached_tokens = 0
        if self.radix is not None:
            self.radix.clear()
        self.active.clear()
        self.queue.clear()
        self.scheduler.on_flush()
        self.state.set_idle()
        self._wake = None
        self.crash_log.append(CrashEpisode(down_s=self.env.now))
        self._proc.interrupt("crash")
        if self.on_crash is not None and orphans:
            self.on_crash(orphans)
        return orphans

    def restart(self) -> None:
        """Bring the node back: cold board, empty queue, ambient junction."""
        if self.healthy:
            return
        self.healthy = True
        self.crash_log[-1].up_s = self.env.now
        self.thermal.temp_c = self.thermal.ambient_c
        self.thermal.throttled = False
        self._thermal_clock = self.env.now
        self._apply_throttle()
        if self._restart_ev is not None and not self._restart_ev.triggered:
            self._restart_ev.succeed(None)

    def set_kv_shrink(self, factor: float) -> List[ClusterRequest]:
        """Scale the usable KV budget (transient OOM pressure).

        Shrinking below the running batch's footprint evicts the
        youngest active requests (recompute-style, same victim rule as
        the single-node scheduler) back to the *head* of this node's
        queue; they re-prefill once the pressure lifts.  Returns the
        evicted requests.
        """
        if factor <= 0:
            raise ConfigError("kv_shrink must be positive")
        grew = factor > self.kv_shrink
        self.kv_shrink = factor
        evicted = self._evict_over_budget(kv_shrink=factor)
        if grew:
            self._notify()  # headroom returned: head may fit now
        return evicted

    def _evict_over_budget(self, permanent: bool = False,
                           **obs_fields) -> List[ClusterRequest]:
        """Evict youngest active requests until KV fits the budget.

        Shared victim rule for both pressure sources: injected shrink
        faults (transient — pressure lifts, so victims wait at this
        node's queue head), and paged-runtime pool exhaustion
        (``permanent=True`` — optimistic admission let live KV outgrow
        the pool mid-decode, and the pool never grows back).  Under
        permanent pressure a victim whose *whole-lifetime* footprint
        exceeds the budget can never finish here no matter how often it
        re-prefills; requeueing it locally would livelock, so it is
        handed to the fleet (``on_crash``, whose requeue cap bounds the
        retries) or marked rejected.
        """
        policy = self.kv_policy
        limit = policy.effective_budget(self.kv_budget)
        if self.radix is not None and self.kv_in_use > limit:
            # Cheapest relief first: retained (unpinned) prefix blocks.
            self.radix.reclaim(self.kv_in_use - limit, self.env.now)
        evicted: List[ClusterRequest] = []
        while self.active and self.kv_in_use > limit:
            victim = policy.select_victim(self.active)
            if victim is None:  # pragma: no cover - active implies one
                break
            self.active.remove(victim)
            self._drop_radix_pin(victim)
            evicted.append(victim)
        if evicted:
            if self.obs.enabled:
                for r in evicted:
                    r.evicted = True
                    self.obs.instant(
                        kinds.EJECT, cat=kinds.CAT_REQUEST,
                        track=f"req{r.req_id}", parent=r.obs_span,
                        node=self.node_id, **obs_fields)
            hopeless: List[ClusterRequest] = []
            if permanent:
                out = 0 if self.role == "prefill" else None
                def lifetime(r):
                    o = r.output_tokens if out is None else out
                    return self.backend.live_kv_bytes(
                        r.input_tokens, o, o, self._kv_per_token)
                hopeless = [r for r in evicted
                            if lifetime(r) > self.kv_budget]
            requeue = [r for r in evicted if r not in hopeless]
            for r in hopeless:
                self._sacrifice(r)
            for r in requeue:
                if not self._try_swap_out(r):
                    self._sacrifice(r)
            # Evictions re-enter at the queue head (they were already
            # admitted once); the depth cap only gates *new* arrivals.
            self.queue[0:0] = requeue
            for r in requeue:
                self.scheduler.on_arrival(r, self.env.now)
            if self.obs.enabled:
                for r in requeue:
                    r.queue_span = self.obs.begin(
                        kinds.QUEUE, cat=kinds.CAT_REQUEST,
                        track=f"req{r.req_id}", parent=r.obs_span,
                        node=self.node_id, after_eviction=True)
            if hopeless:
                if self.on_crash is not None:
                    self.on_crash(hopeless)
                else:
                    for r in hopeless:
                        r.rejected = True
        return evicted

    def _drop_radix_pin(self, r: ClusterRequest) -> None:
        """Unpin ``r``'s prompt path (the tree keeps it, reclaimable)."""
        if self.radix is not None and self.radix.holds(r.req_id):
            self.radix.release(r.req_id)

    def _try_swap_out(self, r: ClusterRequest) -> bool:
        """Preserve an eviction victim's KV host-side (swap policies).

        Returns False when the policy sacrifices or host space is full;
        the caller then falls back to drop + re-prefill.  The transfer
        occupies the memory bus: its seconds accrue to
        ``_pending_transfer_s`` and the serve loop bills them (with
        mem-bound energy) before the next step.
        """
        if self.swap is None:
            return False
        nbytes = self._kv_live(r)
        if nbytes <= 0 or not self.swap.can_hold(nbytes):
            self.swap.stats.sacrifices += 1
            return False
        seconds = self.swap.swap_out(
            r.req_id, nbytes, swap_bandwidth_bytes_s(self.device))
        self._pending_transfer_s += seconds
        r.kv_state = "swapped"
        r.swapped_kv_bytes = nbytes
        r.swaps += 1
        if self.obs.enabled:
            self.obs.instant(
                kinds.KV_SWAP_OUT, cat=kinds.CAT_REQUEST,
                track=f"req{r.req_id}", parent=r.obs_span,
                node=self.node_id, kv_bytes=nbytes,
                transfer_s=round(seconds, 6))
            self.obs.metrics.histogram("kv_swap_out_bytes").observe(nbytes)
        return True

    def _sacrifice(self, r: ClusterRequest) -> None:
        """Drop + re-prefill accounting for one eviction victim, with
        the KV loss made explicit in traces (a ``kv_transfer`` instant:
        the bytes recomputation will have to move again)."""
        lost_bytes = self._kv_live(r)
        lost_tokens = r.generated
        r.reset_for_replay()
        r.kv_state = "sacrificed"
        r.swapped_kv_bytes = 0
        self.kv_sacrifices += 1
        if self.obs.enabled:
            self.obs.instant(
                kinds.KV_TRANSFER, cat=kinds.CAT_REQUEST,
                track=f"req{r.req_id}", parent=r.obs_span,
                node=self.node_id, kv_bytes=lost_bytes,
                lost_tokens=lost_tokens, reason="sacrifice")

    def set_precision(self, precision: Precision) -> None:
        """Swap the served precision (graceful degradation).

        Rebuilds the step timer and, unless the KV budget was pinned
        explicitly at construction, re-derives it from the new weight
        footprint — degrading INT8 -> INT4 roughly halves weight bytes,
        so the budget *grows* and queued work may become admissible.
        """
        if precision is self.precision:
            return
        self.precision = precision
        self.timer = self.backend.make_timer(self.arch, self.device,
                                             precision, self._params)
        if not self._explicit_kv_budget:
            base = natural_kv_budget(self.device, self.backend,
                                     self.arch, precision)
            if base <= 0:
                raise ConfigError(
                    f"precision {precision.value} leaves no KV budget on "
                    f"node {self.node_id}"
                )
            self._kv_budget_base = base
        self._notify()

    @property
    def downtime_s(self) -> float:
        """Total down wall-time so far (open episode counts to now)."""
        total = 0.0
        for ep in self.crash_log:
            up = ep.up_s if ep.up_s is not None else self.env.now
            total += up - ep.down_s
        return total

    # -- energy ------------------------------------------------------------
    def predicted_j_per_token(self, batch_size: int = 4,
                              context: int = 256) -> float:
        """Marginal decode energy per token at the *current* operating
        point — the signal the energy-aware router ranks nodes by."""
        bs = max(1, min(batch_size, self.max_batch))
        concat = self.backend.decode_concat_bytes(self.kv_bytes(bs * context))
        cost = self.timer.decode_step(bs, context, concat_bytes=concat)
        watts = self.power_model.power_w(self.device, _util_of(cost))
        return watts * cost.seconds / bs

    def _account(self, cost: StepCost, phase: str) -> tuple:
        """Publish utilization, integrate busy energy and heat.

        Returns ``(step_joules, step_seconds)`` — seconds include the
        straggler slowdown, and the joules integrate over that
        stretched wall time (interference keeps the board powered, it
        does not pause it).
        """
        util = _util_of(cost)
        self.state.set(phase, util)
        seconds = cost.seconds * self.slowdown
        watts = self.power_model.power_w(self.device, util)
        joules = watts * seconds
        self.busy_energy_j += joules
        self.busy_seconds += seconds
        self._advance_thermal(watts, seconds)
        return joules, seconds

    def _account_transfer(self, seconds: float, phase: str) -> tuple:
        """Bill a KV host transfer: the memory bus streams at its
        effective rate, one CPU core drives the copy, the GPU idles."""
        mem = self.device.memory
        util = ComponentUtilization(
            gpu_compute=0.0, gpu_busy=0.0,
            mem_bw=min(1.0, mem.streaming_efficiency * mem.effective_ratio),
            cpu_cores_active=1.0,
        )
        self.state.set(phase, util)
        seconds *= self.slowdown
        watts = self.power_model.power_w(self.device, util)
        joules = watts * seconds
        self.busy_energy_j += joules
        self.busy_seconds += seconds
        self._advance_thermal(watts, seconds)
        return joules, seconds

    # -- the serving loop --------------------------------------------------
    def _next_candidate(self) -> Optional[ClusterRequest]:
        """The queued request the scheduler would admit next."""
        if not self.queue:
            return None
        return self.queue[self.scheduler.select_next(self.queue)]

    def _admit(self) -> List[ClusterRequest]:
        """Admit scheduler-selected requests while the batch and KV
        budget allow.

        The scheduler picks *which* queued request each admission slot
        goes to; admission still stops at the first selected candidate
        that does not fit (head-of-line semantics relative to the
        scheduler's order — under FCFS this is exactly the historical
        ``queue[0]`` discipline, bit for bit).
        """
        admitted = []
        limit = self.kv_policy.effective_budget(self.kv_budget)
        while self.queue and len(self.active) < self.max_batch:
            idx = self.scheduler.select_next(self.queue)
            need = self._kv_need(self.queue[idx])
            if (self.kv_in_use + need > limit and self.radix is not None):
                # Retained prefix blocks are the cache of last resort:
                # give them back before refusing admission.
                self.radix.reclaim(self.kv_in_use + need - limit,
                                   self.env.now)
            if self.kv_in_use + need > limit:
                break
            r = self.queue.pop(idx)
            self.scheduler.on_dequeue(r)
            self.active.append(r)
            admitted.append(r)
            if self.obs.enabled:
                if idx:
                    # Queue jumps are the fair-scheduling signal worth
                    # tracing; FCFS never jumps, so legacy traces are
                    # unchanged byte for byte.
                    self.obs.instant(
                        kinds.SCHED_SELECT, cat=kinds.CAT_CLUSTER,
                        track=self.obs_track, req=r.req_id,
                        tenant=r.tenant, scheduler=self.scheduler.name,
                        queue_jump=idx)
                self._obs_admitted(r)
        return admitted

    def _obs_admitted(self, r: ClusterRequest) -> None:
        """Close the queue-wait span; note readmissions after eviction."""
        obs = self.obs
        start = obs.open_start(r.queue_span)
        if start is not None:
            obs.metrics.histogram("queue_wait_s").observe(self.env.now - start)
        obs.end(r.queue_span, node=self.node_id)
        r.queue_span = NO_SPAN
        if r.evicted:
            r.evicted = False
            obs.instant(kinds.READMIT, cat=kinds.CAT_REQUEST,
                        track=f"req{r.req_id}", parent=r.obs_span,
                        node=self.node_id)

    def _serve_loop(self):
        env = self.env
        while True:
            if not self.healthy:
                self._restart_ev = env.event()
                try:
                    yield self._restart_ev
                except Interrupt:  # pragma: no cover - crash while down
                    pass
                self._restart_ev = None
                continue
            try:
                if self._pending_transfer_s > 0:
                    # Swap-out traffic from the last preemption round:
                    # the bus was busy writing victims' KV host-side.
                    seconds = self._pending_transfer_s
                    self._pending_transfer_s = 0.0
                    _, dur = self._account_transfer(seconds, "kv_swap_out")
                    yield env.timeout(dur)
                    self.last_busy_s = env.now
                admitted = self._admit()
                for r in admitted:
                    if r.kv_state == "swapped":
                        # Restore preserved KV instead of re-prefilling.
                        nbytes, seconds = self.swap.swap_in(
                            r.req_id, swap_bandwidth_bytes_s(self.device))
                        _, dur = self._account_transfer(
                            seconds, "kv_swap_in")
                        swap_start = env.now
                        yield env.timeout(dur)
                        self.last_busy_s = env.now
                        r.kv_state = "resident"
                        r.swapped_kv_bytes = 0
                        r.swap_ins += 1
                        if self.obs.enabled:
                            self.obs.complete(
                                kinds.KV_SWAP_IN, swap_start, env.now,
                                cat=kinds.CAT_CLUSTER, track=self.obs_track,
                                req=r.req_id, kv_bytes=nbytes)
                            self.obs.metrics.histogram(
                                "kv_swap_in_s").observe(env.now - swap_start)
                        continue
                    if self.role == "decode":
                        continue  # prompt KV arrives via the transfer link
                    hit = 0
                    if self.radix is not None and r.prompt_ids is not None:
                        if self.radix.holds(r.req_id):
                            self.radix.release(r.req_id)  # replay re-match
                        hit = self.radix.insert(
                            r.req_id, r.prompt_ids, env.now)
                        r.prefix_cached_tokens = hit
                        if hit and self.obs.enabled:
                            self.obs.instant(
                                kinds.KV_PREFIX_HIT, cat=kinds.CAT_REQUEST,
                                track=f"req{r.req_id}", parent=r.obs_span,
                                node=self.node_id, tokens=hit)
                            self.obs.metrics.histogram(
                                "kv_prefix_hit_tokens").observe(hit)
                    prefill_tokens = max(1, r.input_tokens - hit)
                    cost = self.timer.prefill(1, prefill_tokens)
                    _, dur = self._account(cost, "prefill")
                    prefill_start = env.now
                    yield env.timeout(dur)
                    self.last_busy_s = env.now
                    self.prefilled_tokens += prefill_tokens
                    self.scheduler.on_tokens_served(
                        r, prefill_tokens=prefill_tokens)
                    r.prefill_end_s = env.now
                    if self.obs.enabled:
                        self.obs.complete(
                            kinds.PREFILL, prefill_start, env.now,
                            cat=kinds.CAT_CLUSTER, track=self.obs_track,
                            req=r.req_id, tokens=prefill_tokens)
                    if self.role == "prefill":
                        self.active.remove(r)
                        self._drop_radix_pin(r)
                        if self.on_prefill_done is not None:
                            self.on_prefill_done(r)

                if not self.active:
                    self.state.set_idle()
                    head = self._next_candidate()
                    if (head is not None
                            and self._kv_need(head) <= self.kv_budget):
                        continue  # re-check admission (head now fits)
                    # Empty, or head-of-line blocked by shrunk KV budget:
                    # sleep until a submit/restore/degrade wakes us.
                    self._wake = env.event()
                    yield self._wake
                    self._wake = None
                    continue

                bs = len(self.active)
                context = max(r.input_tokens + r.generated for r in self.active)
                concat = self.backend.decode_concat_bytes(
                    self.kv_bytes(bs * context))
                cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                step_j, dur = self._account(cost, "decode")
                step_start = env.now
                yield env.timeout(dur)
                self.last_busy_s = env.now
                if self.obs.enabled:
                    self.obs.complete(
                        kinds.DECODE, step_start, env.now,
                        cat=kinds.CAT_CLUSTER, track=self.obs_track,
                        batch=bs, context=context)
                # Requests evicted mid-step (OOM pressure) left `active`
                # and get no token from this step.
                step_tenants = set()
                for r in list(self.active):
                    r.generated += 1
                    r.last_token_s = env.now
                    r.energy_j += step_j / bs
                    self.served_tokens += 1
                    self.scheduler.on_tokens_served(r, decode_tokens=1)
                    self.tenant_served_tokens[r.tenant] = (
                        self.tenant_served_tokens.get(r.tenant, 0) + 1)
                    step_tenants.add(r.tenant)
                    if r.first_token_s is None:
                        r.first_token_s = env.now
                    if r.generated >= r.output_tokens:
                        r.finish_s = env.now
                        self.active.remove(r)
                        # The prompt path stays in the radix tree for
                        # future arrivals; only the pin is dropped.
                        self._drop_radix_pin(r)
                        self.completed.append(r)
                        if self.on_complete is not None:
                            self.on_complete(r)
                if self.obs.enabled and self.scheduler.name != "fcfs":
                    # Per-tenant served-token counter series (sorted so
                    # the trace stays byte-stable under PYTHONHASHSEED).
                    # Fair-scheduler runs only: legacy FCFS traces keep
                    # their exact historical record stream.
                    for tenant in sorted(step_tenants):
                        self.obs.counter(
                            kinds.served_tokens_kind(tenant),
                            self.tenant_served_tokens[tenant],
                            track=self.obs_track)
                # Optimistic (free-block) admission can overcommit: live
                # KV grew this step and may now exceed the pool —
                # preempt the youngest (vLLM recompute preemption).
                if (self.backend.admits_by_free_blocks
                        and self.kv_in_use > self.kv_budget):
                    self._evict_over_budget(permanent=True,
                                            pool_exhausted=True)
            except Interrupt:
                continue  # crashed mid-step: loop re-checks health

    # -- reporting ---------------------------------------------------------
    def as_row(self) -> dict:
        return {
            "node": self.node_id,
            "device": self.device.name,
            "runtime": self.backend.name,
            "scheduler": self.scheduler.name,
            "served_tokens": self.served_tokens,
            "prefilled_tokens": self.prefilled_tokens,
            "completed": len(self.completed),
            "busy_s": round(self.busy_seconds, 1),
            "busy_energy_j": round(self.busy_energy_j, 1),
            "downtime_s": round(self.downtime_s, 1),
            "crashes": len(self.crash_log),
            "temp_c": round(self.thermal.temp_c, 1),
            "precision": self.precision.value,
        }
