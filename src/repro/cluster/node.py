"""One serving node: a device, its engine loop, queue and energy meter.

A :class:`ClusterNode` wraps an :class:`~repro.hardware.device.EdgeDevice`
with a continuous-batching serving loop (iteration-level scheduling, the
same discipline as
:class:`~repro.engine.scheduler.ContinuousBatchScheduler`) running as a
process on a *shared* simulation environment, so many nodes coexist on
one clock.  Each node owns:

- an admission queue with a depth cap (back-pressure) and a KV-budget
  check (requests whose full KV footprint can never fit are refused
  outright — the OOM-driven rejection path);
- an :class:`~repro.engine.state.EngineState` + jtop-style
  :class:`~repro.telemetry.sampler.PowerSampler`, so fleet energy is
  integrated from sampled traces exactly like the paper's methodology;
- exact per-step energy accounting used to attribute joules to the
  individual tokens each step produced.

Nodes can serve both phases (default), or only prefill / only decode
for the Splitwise-style disaggregated routing policy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.workload import ClusterRequest
from repro.engine.kernels import EngineCostParams, StepCost, StepTimer
from repro.engine.state import EngineState
from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.footprint import weight_bytes
from repro.power.model import ComponentUtilization, PowerModel
from repro.power.modes import apply_power_mode, get_power_mode
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment
from repro.telemetry.sampler import PowerSampler


def _util_of(cost: StepCost) -> ComponentUtilization:
    return ComponentUtilization(
        gpu_compute=cost.gpu_compute_frac,
        gpu_busy=cost.gpu_busy_frac,
        mem_bw=cost.mem_bw_frac,
        cpu_cores_active=cost.cpu_cores_active,
    )


class ClusterNode:
    """A single device serving requests on the shared cluster clock.

    Parameters
    ----------
    env:
        The shared simulation environment.
    node_id:
        Stable index within the cluster (used for deterministic
        tie-breaking by routers).
    device:
        The hardware preset instance (owned by this node; power modes
        mutate it).
    arch / precision:
        Model served by this node (every node holds a full replica).
    power_mode:
        Optional nvpmodel-style mode name applied at construction.
    role:
        ``"both"`` (default), ``"prefill"`` or ``"decode"`` — the
        latter two implement the Splitwise-style split.
    max_batch / max_queue:
        Concurrency cap of the running batch and depth cap of the
        admission queue (``submit`` refuses above it).
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        device: EdgeDevice,
        arch: TransformerArchitecture,
        precision: Precision,
        power_mode: Optional[str] = None,
        role: str = "both",
        max_batch: int = 8,
        max_queue: int = 256,
        params: Optional[EngineCostParams] = None,
        power_model: Optional[PowerModel] = None,
        kv_budget_bytes: Optional[int] = None,
        sample_period_s: float = 1.0,
    ):
        if max_batch < 1 or max_queue < 1:
            raise ConfigError("max_batch and max_queue must be >= 1")
        if role not in ("both", "prefill", "decode"):
            raise ConfigError(f"unknown node role {role!r}")
        self.env = env
        self.node_id = node_id
        self.device = device
        self.arch = arch
        self.precision = precision
        self.role = role
        self.max_batch = max_batch
        self.max_queue = max_queue
        if power_mode is not None:
            apply_power_mode(device, get_power_mode(power_mode))
        self.timer = StepTimer(arch, device, precision, params)
        self.power_model = power_model or PowerModel()
        if kv_budget_bytes is None:
            kv_budget_bytes = int(
                device.memory.usable_bytes
                - weight_bytes(arch, precision)
                - 1e9  # workspace
            )
        if kv_budget_bytes <= 0:
            raise ConfigError(
                f"model leaves no KV budget on node {node_id} ({device.name})"
            )
        self.kv_budget = kv_budget_bytes
        self._kv_per_token = (
            arch.kv_cache_spec().bytes_per_token_per_layer * arch.n_layers
        )

        self.queue: List[ClusterRequest] = []
        self.active: List[ClusterRequest] = []
        self.completed: List[ClusterRequest] = []
        #: Called when a prefill-role node finishes a prompt (set by the
        #: cluster to start the KV transfer to a decode node).
        self.on_prefill_done: Optional[Callable[[ClusterRequest], None]] = None
        #: Called when a request finishes decoding.
        self.on_complete: Optional[Callable[[ClusterRequest], None]] = None

        self.state = EngineState()
        self.sampler = PowerSampler(env, device, self.power_model, self.state,
                                    period_s=sample_period_s)
        #: Exact step-accounted busy energy (J) and busy wall time (s).
        self.busy_energy_j = 0.0
        self.busy_seconds = 0.0
        #: Decode tokens this node produced (each token exactly once).
        self.served_tokens = 0
        #: Prompt tokens this node prefilled.
        self.prefilled_tokens = 0
        self.last_busy_s = 0.0

        self._wake = None
        self._proc = env.process(self._serve_loop(), name=f"node-{node_id}")

    # -- capacity ----------------------------------------------------------
    def kv_bytes(self, tokens: int) -> int:
        return tokens * self._kv_per_token

    def _kv_need(self, r: ClusterRequest) -> int:
        if self.role == "prefill":
            return self.kv_bytes(r.input_tokens)
        return self.kv_bytes(r.input_tokens + r.output_tokens)

    @property
    def kv_in_use(self) -> int:
        return sum(self._kv_need(r) for r in self.active)

    @property
    def kv_pressure(self) -> float:
        """Committed KV (running + queued) over budget; can exceed 1."""
        queued = sum(self._kv_need(r) for r in self.queue)
        return (self.kv_in_use + queued) / self.kv_budget

    @property
    def depth(self) -> int:
        """Outstanding work: queued plus running requests."""
        return len(self.queue) + len(self.active)

    def fits(self, r: ClusterRequest) -> bool:
        """Could this request *ever* run here (empty node)?"""
        return self._kv_need(r) <= self.kv_budget

    def accepts(self, r: ClusterRequest) -> bool:
        """Admission control: room in the queue and a feasible footprint."""
        return len(self.queue) < self.max_queue and self.fits(r)

    def submit(self, r: ClusterRequest) -> bool:
        """Enqueue a request; returns False if admission refuses it."""
        if not self.accepts(r):
            return False
        r.node_id = self.node_id
        self.queue.append(r)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)
        return True

    # -- energy ------------------------------------------------------------
    def predicted_j_per_token(self, batch_size: int = 4,
                              context: int = 256) -> float:
        """Marginal decode energy per token at the *current* operating
        point — the signal the energy-aware router ranks nodes by."""
        bs = max(1, min(batch_size, self.max_batch))
        cost = self.timer.decode_step(bs, context,
                                      concat_bytes=2 * self.kv_bytes(bs * context))
        watts = self.power_model.power_w(self.device, _util_of(cost))
        return watts * cost.seconds / bs

    def _account(self, cost: StepCost, phase: str) -> float:
        """Publish utilization, integrate busy energy; returns step J."""
        util = _util_of(cost)
        self.state.set(phase, util)
        joules = self.power_model.power_w(self.device, util) * cost.seconds
        self.busy_energy_j += joules
        self.busy_seconds += cost.seconds
        return joules

    # -- the serving loop --------------------------------------------------
    def _admit(self) -> List[ClusterRequest]:
        admitted = []
        while (self.queue and len(self.active) < self.max_batch
               and self.kv_in_use + self._kv_need(self.queue[0]) <= self.kv_budget):
            r = self.queue.pop(0)
            self.active.append(r)
            admitted.append(r)
        return admitted

    def _serve_loop(self):
        env = self.env
        while True:
            admitted = self._admit()
            for r in admitted:
                if self.role == "decode":
                    continue  # prompt KV arrives via the transfer link
                cost = self.timer.prefill(1, r.input_tokens)
                self._account(cost, "prefill")
                yield env.timeout(cost.seconds)
                self.last_busy_s = env.now
                self.prefilled_tokens += r.input_tokens
                r.prefill_end_s = env.now
                if self.role == "prefill":
                    self.active.remove(r)
                    if self.on_prefill_done is not None:
                        self.on_prefill_done(r)

            if not self.active:
                self.state.set_idle()
                if self.queue:
                    continue  # re-check admission (head may now fit)
                self._wake = env.event()
                yield self._wake
                self._wake = None
                continue

            bs = len(self.active)
            context = max(r.input_tokens + r.generated for r in self.active)
            concat = 2 * self.kv_bytes(bs * context)
            cost = self.timer.decode_step(bs, context, concat_bytes=concat)
            step_j = self._account(cost, "decode")
            yield env.timeout(cost.seconds)
            self.last_busy_s = env.now
            for r in list(self.active):
                r.generated += 1
                r.energy_j += step_j / bs
                self.served_tokens += 1
                if r.first_token_s is None:
                    r.first_token_s = env.now
                if r.generated >= r.output_tokens:
                    r.finish_s = env.now
                    self.active.remove(r)
                    self.completed.append(r)
                    if self.on_complete is not None:
                        self.on_complete(r)

    # -- reporting ---------------------------------------------------------
    def as_row(self) -> dict:
        return {
            "node": self.node_id,
            "device": self.device.name,
            "served_tokens": self.served_tokens,
            "prefilled_tokens": self.prefilled_tokens,
            "completed": len(self.completed),
            "busy_s": round(self.busy_seconds, 1),
            "busy_energy_j": round(self.busy_energy_j, 1),
        }
