"""Multi-device edge serving: workload traces, routing, SLOs, autoscaling.

The paper characterises one Jetson under offline sweeps; this package
scales the same calibrated cost/power models out to a *fleet*.  N
simulated devices (any mix of :mod:`repro.hardware` presets, each with
its own power mode and serving loop) share one discrete-event clock; a
workload layer generates request traces, a router places each arrival,
and the SLO layer scores the outcome — latency percentiles, goodput
under deadline, per-tenant fairness and fleet joules per token
integrated from the telemetry traces.

Modules
-------
- :mod:`repro.cluster.workload` — Poisson/bursty/diurnal/multi-tenant
  trace generators (the single-device schedulers share this API).
- :mod:`repro.cluster.router` — round-robin, join-shortest-queue,
  least-KV-pressure, energy-aware, carbon-aware and Splitwise-style
  disaggregated routing policies.
- :mod:`repro.cluster.node` — one device + engine loop + energy meter.
- :mod:`repro.cluster.fleet` — :class:`FleetSpec`, the declarative
  fleet description (`EdgeCluster.of(fleet)` instantiates it).
- :mod:`repro.cluster.cluster` — the orchestrator.
- :mod:`repro.cluster.slo` — deadlines, percentiles, fairness, J/token.
- :mod:`repro.cluster.autoscale` — power-mode control loop.
"""

from repro.cluster.autoscale import (
    AutoscalerConfig,
    ModeSwitch,
    PowerModeAutoscaler,
    clamp_mode_to_device,
)
from repro.cluster.cluster import EdgeCluster, NodeSpec
from repro.cluster.fleet import FleetSpec
from repro.cluster.node import ClusterNode
from repro.cluster.router import (
    CarbonAwareRouter,
    EnergyAwareRouter,
    JoinShortestQueueRouter,
    LeastKVPressureRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    SplitwiseRouter,
    get_router,
    list_policies,
)
from repro.cluster.slo import (
    ClusterReport,
    SLOSpec,
    TenantReport,
    build_report,
    jains_index,
    max_min_share,
    percentile,
)
from repro.cluster.workload import (
    ClusterRequest,
    TenantProfile,
    as_cluster_requests,
    bursty_workload,
    diurnal_workload,
    multi_tenant_workload,
    normalized_weights,
    poisson_workload,
    shared_prefix_workload,
)

__all__ = [
    "AutoscalerConfig",
    "CarbonAwareRouter",
    "ClusterNode",
    "ClusterReport",
    "ClusterRequest",
    "EdgeCluster",
    "EnergyAwareRouter",
    "FleetSpec",
    "JoinShortestQueueRouter",
    "LeastKVPressureRouter",
    "ModeSwitch",
    "NodeSpec",
    "PowerModeAutoscaler",
    "PrefixAffinityRouter",
    "RoundRobinRouter",
    "Router",
    "SLOSpec",
    "SplitwiseRouter",
    "TenantProfile",
    "TenantReport",
    "as_cluster_requests",
    "build_report",
    "bursty_workload",
    "clamp_mode_to_device",
    "diurnal_workload",
    "get_router",
    "jains_index",
    "list_policies",
    "max_min_share",
    "multi_tenant_workload",
    "normalized_weights",
    "percentile",
    "poisson_workload",
    "shared_prefix_workload",
]
