"""The cluster orchestrator: N nodes, one clock, a router in front.

:class:`EdgeCluster` owns a fleet of :class:`~repro.cluster.node.ClusterNode`
on one shared :class:`~repro.sim.environment.Environment`, injects a
request trace, routes each arrival through the configured policy (with
bounded retry before rejection), and folds the outcome into a
:class:`~repro.cluster.slo.ClusterReport`.

Build a heterogeneous fleet declaratively from a
:class:`~repro.cluster.fleet.FleetSpec` of :class:`NodeSpec` presets:

>>> fleet = FleetSpec.of(
...     ["jetson-orin-agx-64gb", "jetson-xavier-agx-32gb"],
...     model="llama", precision="fp16", policy="energy-aware")
>>> report = EdgeCluster.of(fleet).run(poisson_workload(2.0, 50))

(The legacy ``EdgeCluster.build(specs, ...)`` kwargs path survives as a
DeprecationWarning shim that constructs the same ``FleetSpec``.)
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.cluster.router import Router, SplitwiseRouter, get_router
from repro.cluster.slo import ClusterReport, SLOSpec, build_report
from repro.cluster.workload import ClusterRequest, as_cluster_requests
from repro.engine.kernels import EngineCostParams
from repro.engine.scheduler import ServeRequest
from repro.errors import ConfigError, ExperimentError
from repro.fairness.scheduler import get_fair_scheduler
from repro.fairness.session import Interaction
from repro.fairness.throttle import TokenThrottle
from repro.faults.recovery import RetryBudget, RetryPolicy
from repro.hardware import get_device
from repro.models import get_model
from repro.models.architecture import TransformerArchitecture
from repro.obs import kinds
from repro.obs.span import NO_SPAN, NULL_OBSERVER, Observer
from repro.power.model import PowerModel
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment


@dataclass(frozen=True)
class NodeSpec:
    """Declarative description of one fleet member."""

    device: str
    power_mode: Optional[str] = None
    max_batch: int = 8
    max_queue: int = 256
    #: Inference-runtime backend this node serves with; heterogeneous
    #: fleets may mix runtimes per node.
    runtime: str = "hf-transformers"
    #: KV lifecycle policy under memory pressure (``repro.kvtier``):
    #: ``sacrifice`` (default), ``swap``, ``swap-lru-aggressive``, ...
    kv_policy: str = "sacrifice"
    #: Optional trigger-threshold override (preempt at this fraction of
    #: the KV budget; None keeps the policy's own trigger).
    kv_trigger: Optional[float] = None
    #: Queue discipline for this node's admission queue
    #: (``repro.fairness``): ``fcfs`` (default), ``vtc``, ``wsc``.
    scheduler: str = "fcfs"
    #: Geographic region (``repro.sustain``): nodes meter their energy
    #: against the region's carbon/price trace when the fleet binds one.
    region: Optional[str] = None
    #: Per-node model override (None serves the fleet-wide model);
    #: heterogeneous cascades put an SLM on some nodes, the LLM on the
    #: rest.
    model: Optional[str] = None
    #: Per-node precision override (None serves the fleet-wide one).
    precision: Optional[str] = None
    #: Cascade tier label (``repro.sustain``): requests carrying a tier
    #: are only admitted by nodes with the matching label.
    tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1 or self.max_queue < 1:
            raise ConfigError("max_batch and max_queue must be >= 1")
        from repro.backends import get_backend

        get_backend(self.runtime)  # typed ConfigError on unknown names
        from repro.kvtier.policy import get_kv_policy

        get_kv_policy(self.kv_policy)  # typed ConfigError likewise
        get_fair_scheduler(self.scheduler)  # and again
        if self.model is not None:
            get_model(self.model)  # typed ModelError on unknown names
        if self.precision is not None:
            Precision.parse(self.precision)

    def resolved_kv_policy(self):
        """The policy instance this spec describes."""
        from repro.kvtier.policy import get_kv_policy

        policy = get_kv_policy(self.kv_policy)
        if self.kv_trigger is not None:
            policy = policy.with_(trigger=self.kv_trigger)
        return policy


class EdgeCluster:
    """A fleet of serving nodes behind a routing policy."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        router: Router,
        env: Environment,
        slo: Optional[SLOSpec] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.25,
        retry: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
        throttle: Optional[TokenThrottle] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
    ):
        if not nodes:
            raise ConfigError("cluster needs at least one node")
        if max_retries < 0 or retry_backoff_s <= 0:
            raise ConfigError("retries must be >= 0 with a positive backoff")
        self.nodes = list(nodes)
        self.router = router
        self.env = env
        self.slo = slo or SLOSpec()
        #: Per-tenant token-rate budget applied at injection (None = off).
        self.throttle = throttle
        #: Tenant weights the report's fairness columns normalize by.
        self.tenant_weights = dict(tenant_weights) if tenant_weights else None
        self.scheduler_name = self.nodes[0].scheduler.name
        #: Multi-turn bookkeeping; ``run`` leaves both untouched.
        self._session_hook = None
        self._open_sessions = 0
        #: The requests of the most recent ``run``/``run_interactions``
        #: (conservation checks rebuild ledgers from these).
        self.last_requests: List[ClusterRequest] = []
        #: Full policy; the legacy (max_retries, retry_backoff_s) pair
        #: seeds one with an uncapped-at-that-base exponential schedule.
        self.retry = retry or RetryPolicy(max_retries=max_retries,
                                          base_backoff_s=retry_backoff_s)
        self.max_retries = self.retry.max_retries
        self.retry_backoff_s = self.retry.base_backoff_s
        self._retry_budget = RetryBudget(self.retry.retry_budget)
        #: start/stop-style controllers run alongside serving
        #: (autoscaler, fault injector, precision fallback, ...).
        self._services: List = []
        #: Observability sink shared with every node (request-lifecycle
        #: spans land on ``req{i}`` tracks, serving spans on ``node{i}``).
        self.obs = observer if observer is not None else NULL_OBSERVER
        if self.obs.enabled:
            self.obs.bind(env)
            self.obs.set_group("cluster")
        router.assign_roles(self.nodes)

    @classmethod
    def of(
        cls,
        fleet,
        slo: Optional[SLOSpec] = None,
        params: Optional[EngineCostParams] = None,
        power_model: Optional[PowerModel] = None,
        sample_period_s: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
        throttle: Optional[TokenThrottle] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
    ) -> "EdgeCluster":
        """Instantiate the fleet a :class:`FleetSpec` describes.

        The spec carries everything declarative (devices, regions,
        per-node model/precision/runtime/kv-policy, routing policy and
        its knobs, carbon-trace bindings); the keyword arguments here
        are runtime wiring only (observers, retry policies, throttles).
        """
        from repro.cluster.fleet import FleetSpec

        if not isinstance(fleet, FleetSpec):
            raise ConfigError(
                f"EdgeCluster.of needs a FleetSpec, got "
                f"{type(fleet).__name__}")
        env = Environment()
        default_arch: TransformerArchitecture = get_model(fleet.model)
        default_prec = Precision.parse(fleet.precision)
        shared_power = power_model or PowerModel()
        nodes = [
            ClusterNode(
                env, i, get_device(s.device),
                default_arch if s.model is None else get_model(s.model),
                (default_prec if s.precision is None
                 else Precision.parse(s.precision)),
                power_mode=s.power_mode, max_batch=s.max_batch,
                max_queue=s.max_queue, params=params,
                power_model=shared_power, sample_period_s=sample_period_s,
                obs=observer, backend=s.runtime,
                kv_policy=s.resolved_kv_policy(),
                scheduler=get_fair_scheduler(s.scheduler, tenant_weights),
                region=s.region, carbon_trace=fleet.trace_for(s.region),
                tier=s.tier,
            )
            for i, s in enumerate(fleet.nodes)
        ]
        return cls(nodes, get_router(fleet.policy, **fleet.router_kwargs()),
                   env, slo=slo, retry=retry, observer=observer,
                   throttle=throttle, tenant_weights=tenant_weights)

    @classmethod
    def build(
        cls,
        specs: Sequence[NodeSpec],
        model: str = "llama",
        precision: str = "fp16",
        policy: str = "round-robin",
        slo: Optional[SLOSpec] = None,
        params: Optional[EngineCostParams] = None,
        power_model: Optional[PowerModel] = None,
        sample_period_s: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        observer: Optional[Observer] = None,
        throttle: Optional[TokenThrottle] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        **router_kwargs,
    ) -> "EdgeCluster":
        """Deprecated kwargs path; use a :class:`FleetSpec` with ``of``.

        Constructs the equivalent ``FleetSpec`` and delegates, so the
        two surfaces are byte-identical by construction (pinned with
        exact equality in ``tests/sustain/test_fleet_spec.py``).
        """
        warnings.warn(
            "EdgeCluster.build(specs, ...) is deprecated; describe the "
            "fleet with FleetSpec.of(...) and instantiate it with "
            "EdgeCluster.of(fleet, ...)",
            DeprecationWarning, stacklevel=2)
        from repro.cluster.fleet import FleetSpec

        if not specs:
            raise ConfigError("cluster needs at least one node spec")
        fleet = FleetSpec.of(list(specs), model=model, precision=precision,
                             policy=policy, **router_kwargs)
        return cls.of(fleet, slo=slo, params=params, power_model=power_model,
                      sample_period_s=sample_period_s, retry=retry,
                      observer=observer, throttle=throttle,
                      tenant_weights=tenant_weights)

    def attach_autoscaler(self, autoscaler) -> None:
        """Register a power-mode autoscaler (started when ``run`` begins)."""
        self.attach_service(autoscaler)

    def attach_injector(self, injector) -> None:
        """Register a fault injector (started when ``run`` begins)."""
        self.attach_service(injector)

    def attach_service(self, service) -> None:
        """Register any start/stop controller to run alongside serving."""
        if not (hasattr(service, "start") and hasattr(service, "stop")):
            raise ConfigError("services need start()/stop()")
        self._services.append(service)

    # -- serving -----------------------------------------------------------
    def _place(self, r: ClusterRequest):
        """One placement round: route, submit, count a retry on failure."""
        node = self.router.choose(r, self.nodes)
        if node is not None and node.submit(r):
            if self.obs.enabled:
                self.obs.instant(kinds.ROUTE, cat=kinds.CAT_CLUSTER,
                                 track=f"req{r.req_id}", parent=r.obs_span,
                                 node=node.node_id, policy=self.router.name)
            return node
        r.retries += 1
        if self.obs.enabled:
            self.obs.instant(kinds.RETRY, cat=kinds.CAT_CLUSTER,
                             track=f"req{r.req_id}", parent=r.obs_span,
                             attempt=r.retries)
            self.obs.metrics.counter("retries_total").inc()
        return None

    def _obs_request_start(self, r: ClusterRequest) -> None:
        if self.obs.enabled:
            r.obs_span = self.obs.begin(
                kinds.REQUEST, cat=kinds.CAT_REQUEST, track=f"req{r.req_id}",
                req=r.req_id, tenant=r.tenant,
                input_tokens=r.input_tokens, output_tokens=r.output_tokens)

    def _obs_reject(self, r: ClusterRequest, reason: str) -> None:
        if self.obs.enabled:
            self.obs.instant(kinds.REJECT, cat=kinds.CAT_CLUSTER,
                             track=f"req{r.req_id}", parent=r.obs_span,
                             reason=reason)
            self.obs.end(r.obs_span, outcome="rejected", reason=reason)
            r.obs_span = NO_SPAN
            self.obs.metrics.counter("requests_rejected_total",
                                     reason=reason).inc()

    def _transfer_then_decode(self, r: ClusterRequest):
        """Splitwise handover: wait out the link, enqueue on a decode node."""
        assert isinstance(self.router, SplitwiseRouter)
        node = self.router.choose_decode(r)
        if node is None:
            self._obs_reject(r, "no_decode_node")
            r.rejected = True
            self._finish_request(r)
            return
        transfer_start = self.env.now
        yield self.env.timeout(self.router.transfer_seconds(r, node))
        if self.obs.enabled:
            self.obs.complete(
                kinds.KV_TRANSFER, transfer_start, self.env.now,
                cat=kinds.CAT_CLUSTER, track=f"req{r.req_id}",
                parent=r.obs_span, to_node=node.node_id,
                kv_bytes=node.kv_bytes(r.input_tokens))
        if not node.submit(r):
            self._obs_reject(r, "decode_refused")
            r.rejected = True
            self._finish_request(r)

    def _finish_request(self, r: ClusterRequest) -> None:
        """One request left the system, completed or rejected."""
        self._finished += 1
        if self._session_hook is not None:
            self._session_hook(r)
        self._check_done()

    def _check_done(self) -> None:
        if (self._finished >= self._n_injected
                and self._open_sessions == 0
                and not self._done.triggered):
            self._done.succeed(None)

    def _throttle_admit(self, r: ClusterRequest) -> bool:
        """Charge the tenant's token budget; turn over-issued work away."""
        if self.throttle is None:
            return True
        demand = r.input_tokens + r.output_tokens
        if self.throttle.admit(r.tenant, demand, self.env.now):
            return True
        r.throttled = True
        r.rejected = True
        if self.obs.enabled:
            self.obs.instant(kinds.TENANT_THROTTLE, cat=kinds.CAT_CLUSTER,
                             track=f"req{r.req_id}", parent=r.obs_span,
                             tenant=r.tenant, demand_tokens=demand)
        self._obs_reject(r, "throttle")
        return False

    def _on_complete(self, r: ClusterRequest) -> None:
        obs = self.obs
        if obs.enabled:
            obs.end(r.obs_span, outcome="ok", node=r.node_id)
            r.obs_span = NO_SPAN
            m = obs.metrics
            m.counter("requests_completed_total").inc()
            m.counter("tokens_total").inc(r.output_tokens)
            if r.first_token_s is not None:
                m.histogram("ttft_s").observe(r.first_token_s - r.arrival_s)
            if r.finish_s is not None:
                m.histogram("latency_s").observe(r.finish_s - r.arrival_s)
        self._finish_request(r)

    def _on_prefill_done(self, r: ClusterRequest) -> None:
        self.env.process(self._transfer_then_decode(r),
                         name=f"kv-transfer-{r.req_id}")

    def _start_serving(self, injector) -> None:
        """Wire node callbacks, start the injector, then the services."""
        for n in self.nodes:
            n.on_complete = self._on_complete
            n.on_prefill_done = self._on_prefill_done
            n.on_crash = self._requeue_orphans
            n.sampler.start()
        self.env.process(injector(), name="injector")
        for svc in self._services:
            svc.start()

    def _stop_serving(self) -> None:
        for n in self.nodes:
            n.sampler.stop()
        for svc in self._services:
            svc.stop()
        if self.obs.enabled:
            self._emit_carbon_counters()
            self.obs.finish_open()

    def _emit_carbon_counters(self) -> None:
        """Cumulative per-node gCO₂ counter series (trace-bound nodes).

        Emitted once serving stops, from the same power samples and
        stepwise-left intensity rule the report integrates with, so the
        trace's final counter value matches the report's ``carbon_g``
        node contribution.  Legacy fleets bind no trace and their obs
        record streams stay byte-identical.
        """
        from repro.sustain.trace import J_PER_KWH

        for n in self.nodes:
            trace = n.carbon_trace
            if trace is None or len(n.sampler.samples) < 2:
                continue
            total = 0.0
            samples = n.sampler.samples
            for a, b in zip(samples, samples[1:]):
                joules = 0.5 * (a.power_w + b.power_w) * (b.time_s - a.time_s)
                total += joules / J_PER_KWH * trace.intensity_at(a.time_s)
                self.obs.counter(kinds.CARBON_G, round(total, 6),
                                 track=n.obs_track, time_s=b.time_s)

    def run(self, requests: Sequence[ServeRequest]) -> ClusterReport:
        """Serve the trace to completion; returns the cluster report."""
        if not requests:
            raise ExperimentError("empty request trace")
        reqs = as_cluster_requests(requests)
        env = self.env
        self._n_injected = len(reqs)
        self._finished = 0
        self._open_sessions = 0
        self._session_hook = None
        self._done = env.event()
        self._retry_budget = RetryBudget(self.retry.retry_budget)

        def injector():
            for r in sorted(reqs, key=lambda x: (x.arrival_s, x.req_id)):
                delay = r.arrival_s - env.now
                if delay > 0:
                    yield env.timeout(delay)
                self._obs_request_start(r)
                if not self._throttle_admit(r):
                    self._finish_request(r)
                    continue
                env.process(self._admit_with_retry(r),
                            name=f"admit-{r.req_id}")

        self._start_serving(injector)
        env.run(until=self._done)
        self._stop_serving()
        self.last_requests = reqs
        return build_report(self.router.name, reqs, self.nodes, self.slo,
                            makespan_s=env.now,
                            scheduler=self.scheduler_name,
                            tenant_weights=self.tenant_weights)

    def run_interactions(
            self, interactions: Sequence[Interaction]) -> ClusterReport:
        """Serve multi-turn sessions to completion.

        Each interaction's turns are staged: turn ``k+1`` enters only
        after turn ``k`` finishes plus the user's think time, with the
        cumulative context already folded into its token counts by
        :func:`~repro.fairness.session.session_workload`.  A rejected
        (or throttled) turn abandons the whole session — the user walks
        away and every token already spent on it becomes waste in the
        report's ledger.
        """
        if not interactions:
            raise ExperimentError("empty interaction trace")
        inters = list(interactions)
        by_id = {i.interaction_id: i for i in inters}
        if len(by_id) != len(inters):
            raise ExperimentError("interaction ids must be unique")
        env = self.env
        reqs: List[ClusterRequest] = []
        self._n_injected = 0
        self._finished = 0
        self._open_sessions = len(inters)
        self._done = env.event()
        self._retry_budget = RetryBudget(self.retry.retry_budget)
        req_ids = itertools.count()

        def inject_turn(inter: Interaction) -> None:
            r = inter.next_request(next(req_ids), env.now)
            reqs.append(r)
            self._n_injected += 1
            self._obs_request_start(r)
            if not self._throttle_admit(r):
                self._finish_request(r)
                return
            env.process(self._admit_with_retry(r), name=f"admit-{r.req_id}")

        def stage_turn(inter: Interaction, think_s: float):
            yield env.timeout(max(0.0, think_s))
            inject_turn(inter)

        def session_hook(r: ClusterRequest) -> None:
            inter = by_id.get(r.interaction_id)
            if inter is None:
                return
            if r.rejected:
                inter.mark_abandoned()
                self._open_sessions -= 1
                return
            nxt = inter.peek_turn()
            if nxt is None:
                self._open_sessions -= 1
                return
            env.process(stage_turn(inter, nxt.think_time_s),
                        name=f"stage-{inter.interaction_id}-{inter.next_turn}")

        self._session_hook = session_hook

        def injector():
            order = sorted(inters, key=lambda i: (i.arrival_s,
                                                  i.interaction_id))
            for inter in order:
                delay = inter.arrival_s - env.now
                if delay > 0:
                    yield env.timeout(delay)
                inject_turn(inter)

        self._start_serving(injector)
        env.run(until=self._done)
        self._stop_serving()
        self._session_hook = None
        self.last_requests = reqs
        return build_report(self.router.name, reqs, self.nodes, self.slo,
                            makespan_s=env.now,
                            scheduler=self.scheduler_name,
                            interactions=inters,
                            tenant_weights=self.tenant_weights)

    def run_cascade(
        self,
        requests: Sequence[ServeRequest],
        escalate: Callable[[ClusterRequest], bool],
        slm_tier: str = "slm",
        llm_tier: str = "llm",
    ) -> ClusterReport:
        """Serve an SLM-first cascade: escalate gated requests to the LLM.

        Every arrival is tagged ``slm_tier`` and served by the fleet's
        SLM-tier nodes.  When a completed SLM request fails the quality
        gate (``escalate(r)`` is True — deterministic per request), a
        fresh ``llm_tier`` twin of the original demand is injected at
        the completion time: the LLM node pays the full re-prefill,
        exactly like the sacrifice path, and the SLM's generated tokens
        are booked as waste in the ledger (``r.escalated``).  Rejected
        or throttled requests do not escalate.
        """
        if not requests:
            raise ExperimentError("empty request trace")
        reqs = as_cluster_requests(requests)
        for r in reqs:
            r.tier = slm_tier
        env = self.env
        all_reqs: List[ClusterRequest] = list(reqs)
        self._n_injected = len(reqs)
        self._finished = 0
        self._open_sessions = 0
        self._done = env.event()
        self._retry_budget = RetryBudget(self.retry.retry_budget)
        req_ids = itertools.count(1 + max(r.req_id for r in reqs))

        def cascade_hook(r: ClusterRequest) -> None:
            if r.tier != slm_tier or r.rejected or r.finish_s is None:
                return
            if not escalate(r):
                return
            r.escalated = True
            twin = ClusterRequest(
                req_id=next(req_ids), arrival_s=env.now,
                input_tokens=r.input_tokens, output_tokens=r.output_tokens,
                prompt_ids=r.prompt_ids, tenant=r.tenant,
                tier=llm_tier, escalated_from=r.req_id)
            all_reqs.append(twin)
            self._n_injected += 1
            if self.obs.enabled:
                self.obs.instant(
                    kinds.CASCADE_ESCALATE, cat=kinds.CAT_CLUSTER,
                    track=f"req{r.req_id}", parent=r.obs_span,
                    slm_tokens=r.generated, twin=twin.req_id)
                self.obs.metrics.counter("cascade_escalations_total").inc()
            self._obs_request_start(twin)
            env.process(self._admit_with_retry(twin),
                        name=f"escalate-{twin.req_id}")

        self._session_hook = cascade_hook

        def injector():
            for r in sorted(reqs, key=lambda x: (x.arrival_s, x.req_id)):
                delay = r.arrival_s - env.now
                if delay > 0:
                    yield env.timeout(delay)
                self._obs_request_start(r)
                if not self._throttle_admit(r):
                    self._finish_request(r)
                    continue
                env.process(self._admit_with_retry(r),
                            name=f"admit-{r.req_id}")

        self._start_serving(injector)
        env.run(until=self._done)
        self._stop_serving()
        self._session_hook = None
        self.last_requests = all_reqs
        return build_report(self.router.name, all_reqs, self.nodes, self.slo,
                            makespan_s=env.now,
                            scheduler=self.scheduler_name,
                            tenant_weights=self.tenant_weights)

    def _requeue_orphans(self, orphans: List[ClusterRequest]) -> None:
        """Crash handler: re-place the dead node's outstanding work.

        Each orphan's KV state died with the node (``reset_for_replay``
        already ran for the active ones); it goes back through the
        normal retry path on the surviving fleet, up to the per-request
        requeue cap.
        """
        for r in orphans:
            if r.requeues >= self.retry.max_requeues:
                self._obs_reject(r, "requeue_cap")
                r.rejected = True
                self._finish_request(r)
                continue
            r.requeues += 1
            r.node_id = None
            if self.obs.enabled:
                self.obs.instant(kinds.REQUEUE, cat=kinds.CAT_CLUSTER,
                                 track=f"req{r.req_id}", parent=r.obs_span,
                                 attempt=r.requeues)
                self.obs.metrics.counter("requeues_total").inc()
            self.env.process(self._admit_with_retry(r),
                             name=f"requeue-{r.req_id}-{r.requeues}")

    def _admit_with_retry(self, r: ClusterRequest):
        """Try placement with capped exponential backoff between rounds.

        Backoff retries draw on the fleet-wide
        :class:`~repro.faults.recovery.RetryBudget`; once it is spent,
        failed placements reject immediately (fail fast beats retry
        amplification when the whole fleet is browned out).
        """
        for attempt in range(self.retry.max_retries + 1):
            if self._place(r) is not None:
                return
            if attempt >= self.retry.max_retries:
                break
            if not self._retry_budget.take():
                break
            yield self.env.timeout(self.retry.delay_s(attempt))
        self._obs_reject(r, "admission")
        r.rejected = True
        self._finish_request(r)
        # Generator must stay a generator even on the no-backoff path.
        if False:  # pragma: no cover
            yield
