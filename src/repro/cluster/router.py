"""Pluggable request-routing policies for the edge cluster.

A router sees the live node states (queue depth, KV pressure, operating
point) and picks a node for each arriving request.  All policies are
deterministic: scores tie-break on ``node_id``, so a fixed seed gives a
bit-identical simulation.

Policies
--------
- :class:`RoundRobinRouter` — cycle over nodes regardless of state.
- :class:`JoinShortestQueueRouter` — fewest outstanding requests.
- :class:`LeastKVPressureRouter` — lowest committed-KV fraction.
- :class:`EnergyAwareRouter` — lowest predicted J/token at the node's
  *current* power mode (from the calibrated power model), inflated by a
  load penalty so a single efficient node does not melt under queueing.
- :class:`CarbonAwareRouter` — lowest marginal gCO₂/token: the energy-
  aware estimate weighted by each node's regional grid intensity *now*
  (its bound carbon trace on the DES clock).
- :class:`PrefixAffinityRouter` — multi-turn session turns follow their
  shared prefix: route to the node whose radix cache already holds the
  longest whole-block match (falling back to session stickiness, then
  least-KV), so turn k+1 reuses turn k's context instead of
  recomputing it.
- :class:`SplitwiseRouter` — prefill/decode disaggregation: prompts go
  to compute-strong prefill nodes, decode to the rest, with the KV
  handed over across a link (see :mod:`repro.engine.splitwise` for the
  two-device steady-state analysis this generalises).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.cluster.workload import ClusterRequest
from repro.errors import ConfigError


class Router:
    """Base policy: pick one node from the eligible set."""

    name = "base"
    #: True for policies that split prefill and decode across nodes.
    disaggregated = False

    def assign_roles(self, nodes: Sequence[ClusterNode]) -> None:
        """Called once before serving starts (override to set roles)."""

    def choose(self, request: ClusterRequest,
               nodes: Sequence[ClusterNode]) -> Optional[ClusterNode]:
        """Pick a node for the request, or None if nothing can take it."""
        raise NotImplementedError

    @staticmethod
    def eligible(request: ClusterRequest,
                 nodes: Sequence[ClusterNode]) -> List[ClusterNode]:
        """Nodes that will take the request right now.

        ``accepts`` already folds in the health check, so crashed nodes
        are ejected from every policy's candidate set here and readmit
        themselves the moment ``restart`` flips them healthy — no
        routing-table state to reconcile.
        """
        return [n for n in nodes if n.accepts(request)]


class RoundRobinRouter(Router):
    """Cycle over the fleet, skipping nodes that refuse admission."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request, nodes):
        for i in range(len(nodes)):
            node = nodes[(self._next + i) % len(nodes)]
            if node.accepts(request):
                self._next = (self._next + i + 1) % len(nodes)
                return node
        return None


class JoinShortestQueueRouter(Router):
    """Fewest outstanding (queued + running) requests wins."""

    name = "jsq"

    def choose(self, request, nodes):
        ok = self.eligible(request, nodes)
        if not ok:
            return None
        return min(ok, key=lambda n: (n.depth, n.node_id))


class LeastKVPressureRouter(Router):
    """Lowest committed KV fraction (running + queued) wins.

    Differs from JSQ on heterogeneous fleets: a big-memory node absorbs
    long-context requests that would saturate a small one's KV budget
    long before its queue fills.
    """

    name = "least-kv"

    def choose(self, request, nodes):
        ok = self.eligible(request, nodes)
        if not ok:
            return None
        return min(ok, key=lambda n: (n.kv_pressure, n.depth, n.node_id))


class EnergyAwareRouter(Router):
    """Route to the node with the lowest predicted marginal J/token.

    The prediction runs the calibrated cost + power models at each
    node's current operating point (so an autoscaler down-clocking a
    node changes its score).  A multiplicative load penalty
    ``(1 + load_weight * depth)`` stops the policy from piling the
    whole fleet's traffic onto one efficient node.
    """

    name = "energy-aware"

    def __init__(self, load_weight: float = 0.15,
                 batch_size: int = 4, context: int = 256) -> None:
        if load_weight < 0:
            raise ConfigError("load_weight must be >= 0")
        self.load_weight = load_weight
        self.batch_size = batch_size
        self.context = context

    def score(self, node: ClusterNode) -> float:
        j = node.predicted_j_per_token(self.batch_size, self.context)
        return j * (1.0 + self.load_weight * node.depth)

    def choose(self, request, nodes):
        ok = self.eligible(request, nodes)
        if not ok:
            return None
        return min(ok, key=lambda n: (self.score(n), n.node_id))


class CarbonAwareRouter(EnergyAwareRouter):
    """Route to the node with the lowest marginal gCO₂ per token.

    The score is the energy-aware J/token estimate converted to grams
    through the node's *regional* grid intensity right now (its bound
    :class:`~repro.sustain.trace.CarbonTrace`, read at the DES clock),
    with the same multiplicative load penalty.  Nodes without a trace
    score with a dimensionless intensity of 1 — so on a fleet where
    every region shares one trace (or none), the common factor cancels
    and the policy picks exactly the energy-aware node (the fallback
    equality pinned in ``tests/sustain/test_carbon_router.py``).
    """

    name = "carbon-aware"

    def score(self, node: ClusterNode) -> float:
        from repro.sustain.trace import J_PER_KWH

        j = node.predicted_j_per_token(self.batch_size, self.context)
        trace = getattr(node, "carbon_trace", None)
        if trace is not None:
            j = j / J_PER_KWH * trace.intensity_at(node.env.now)
        return j * (1.0 + self.load_weight * node.depth)


class PrefixAffinityRouter(Router):
    """Send a session's turns to the node already holding its prefix.

    Turn ``k+1``'s prompt extends turn ``k``'s prompt + output, so the
    node that served turn ``k`` holds (in its radix cache, on the paged
    runtime) exactly the KV this turn needs — any other placement
    recomputes the whole context.  Scoring, in order:

    1. largest whole-block radix hit on the request's ``prompt_ids``
       (probed side-effect-free via
       :meth:`~repro.kvtier.radix.RadixPrefixCache.peek`);
    2. the node that last served this interaction, when no cache can
       prove a hit (restarted or non-paged nodes);
    3. least KV pressure, for session-less or first-turn requests.

    Ties break on ``node_id``; the affinity map is per-router state, so
    a fixed seed stays bit-reproducible.
    """

    name = "prefix-affinity"

    def __init__(self) -> None:
        #: interaction_id -> node_id of the last placement.
        self._session_node: Dict[int, int] = {}

    def _hit_tokens(self, request: ClusterRequest, node: ClusterNode) -> int:
        if node.radix is None or request.prompt_ids is None:
            return 0
        matched = node.radix.peek(request.prompt_ids)
        return node.radix.block_hit_tokens(matched)

    def choose(self, request, nodes):
        ok = self.eligible(request, nodes)
        if not ok:
            return None
        iid = getattr(request, "interaction_id", None)
        best = max(ok, key=lambda n: (self._hit_tokens(request, n),
                                      -n.node_id))
        if self._hit_tokens(request, best) <= 0:
            best = None
            if iid is not None and iid in self._session_node:
                home = self._session_node[iid]
                best = next((n for n in ok if n.node_id == home), None)
            if best is None:
                best = min(ok, key=lambda n: (n.kv_pressure, n.depth,
                                              n.node_id))
        if iid is not None:
            self._session_node[iid] = best.node_id
        return best


class SplitwiseRouter(Router):
    """Prefill/decode disaggregation across the fleet.

    ``prefill_nodes`` of the fleet (by descending FP16 peak compute, the
    Splitwise placement rule: prefill is compute-bound) serve prompts
    only; the rest decode only.  ``choose`` places arrivals on the
    least-loaded prefill node; :meth:`choose_decode` places the
    prefilled request (after its KV transfer) on the least-KV decode
    node.
    """

    name = "splitwise"
    disaggregated = True

    def __init__(self, prefill_nodes: int = 1,
                 link_bytes_per_s: float = 10e9 / 8) -> None:
        if prefill_nodes < 1:
            raise ConfigError("need at least one prefill node")
        if link_bytes_per_s <= 0:
            raise ConfigError("link bandwidth must be positive")
        self.prefill_nodes = prefill_nodes
        self.link_bytes_per_s = link_bytes_per_s
        self._prefill: List[ClusterNode] = []
        self._decode: List[ClusterNode] = []

    def assign_roles(self, nodes):
        if len(nodes) < 2:
            raise ConfigError("splitwise needs >= 2 nodes")
        if self.prefill_nodes >= len(nodes):
            raise ConfigError("splitwise needs >= 1 decode node")
        ranked = sorted(
            nodes,
            key=lambda n: (-n.device.gpu.effective_flops(n.precision),
                           n.node_id),
        )
        self._prefill = ranked[: self.prefill_nodes]
        self._decode = ranked[self.prefill_nodes:]
        for n in self._prefill:
            n.role = "prefill"
        for n in self._decode:
            n.role = "decode"

    def choose(self, request, nodes):
        ok = [n for n in self._prefill if n.accepts(request)]
        if not ok:
            return None
        return min(ok, key=lambda n: (n.depth, n.node_id))

    def choose_decode(self, request: ClusterRequest) -> Optional[ClusterNode]:
        ok = [n for n in self._decode if n.accepts(request)]
        if not ok:
            return None
        return min(ok, key=lambda n: (n.kv_pressure, n.depth, n.node_id))

    def transfer_seconds(self, request: ClusterRequest,
                         node: ClusterNode) -> float:
        """KV handover time for the prefilled prompt."""
        kv_bytes = node.arch.kv_cache_spec().bytes_total(
            1, request.input_tokens
        )
        return kv_bytes / self.link_bytes_per_s


_ROUTERS: Dict[str, type] = {
    RoundRobinRouter.name: RoundRobinRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    LeastKVPressureRouter.name: LeastKVPressureRouter,
    EnergyAwareRouter.name: EnergyAwareRouter,
    CarbonAwareRouter.name: CarbonAwareRouter,
    PrefixAffinityRouter.name: PrefixAffinityRouter,
    SplitwiseRouter.name: SplitwiseRouter,
}


def list_policies() -> List[str]:
    return sorted(_ROUTERS)


def get_router(name: str, **kwargs) -> Router:
    """Instantiate a routing policy by name.

    Raises :class:`~repro.errors.ConfigError` (never ``KeyError`` /
    ``AttributeError``) on unknown or non-string names, listing the
    valid policies in the message.
    """
    if not isinstance(name, str):
        raise ConfigError(
            f"routing policy must be a string, got {type(name).__name__}; "
            f"known: {', '.join(list_policies())}"
        )
    cls = _ROUTERS.get(name.strip().lower())
    if cls is None:
        raise ConfigError(
            f"unknown routing policy {name!r}; known: {', '.join(list_policies())}"
        )
    return cls(**kwargs)
