"""Spec-first fleet construction: the declarative `FleetSpec`.

Fleet construction was the last surface still assembled from loose
keyword arguments (``EdgeCluster.build(specs, model=..., policy=...,
**router_kwargs)``).  :class:`FleetSpec` completes the spec-first API
redesign: one frozen, hashable value describes the whole fleet —
regions, device presets, per-node model/precision/runtime/kv-policy/
power-mode, the routing policy with its knobs, and the carbon/price
trace bound to each region — and :meth:`EdgeCluster.of
<repro.cluster.cluster.EdgeCluster.of>` instantiates it.  The legacy
``build`` path remains as a DeprecationWarning shim that constructs a
``FleetSpec`` and delegates here, so the two are byte-identical by
construction (pinned by ``tests/sustain/test_fleet_spec.py``).

Being a plain dataclass of tuples, a ``FleetSpec`` folds directly into
content-addressed sweep cache keys via ``dataclasses.asdict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import NodeSpec
from repro.cluster.router import list_policies
from repro.errors import ConfigError
from repro.models import get_model
from repro.quant.dtypes import Precision
from repro.sustain.trace import CarbonTrace


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of a whole serving fleet.

    ``traces`` binds a :class:`~repro.sustain.trace.CarbonTrace` to
    each named region (sorted ``(region, trace)`` pairs, so the spec
    stays hashable); nodes carrying that ``region`` meter their energy
    against it and the carbon-aware router reads it live.  Regions
    without a binding (or nodes without a region) simply have no carbon
    accounting — every legacy fleet is a valid ``FleetSpec``.
    """

    nodes: Tuple[NodeSpec, ...]
    model: str = "llama"
    precision: str = "fp16"
    policy: str = "round-robin"
    #: Sorted ``(region, CarbonTrace)`` bindings.
    traces: Tuple[Tuple[str, CarbonTrace], ...] = ()
    #: Sorted ``(name, value)`` keyword arguments for the router.
    router_args: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigError("fleet needs at least one node")
        for s in self.nodes:
            if not isinstance(s, NodeSpec):
                raise ConfigError(
                    f"fleet nodes must be NodeSpec, got {type(s).__name__}")
        get_model(self.model)  # typed error on unknown names
        Precision.parse(self.precision)
        if self.policy.strip().lower() not in list_policies():
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; known: "
                f"{', '.join(list_policies())}")
        seen = set()
        for binding in self.traces:
            if (not isinstance(binding, tuple) or len(binding) != 2
                    or not isinstance(binding[0], str)
                    or not isinstance(binding[1], CarbonTrace)):
                raise ConfigError(
                    "traces must be (region, CarbonTrace) pairs")
            if binding[0] in seen:
                raise ConfigError(
                    f"region {binding[0]!r} bound to more than one trace")
            seen.add(binding[0])

    @classmethod
    def of(
        cls,
        devices: Sequence[Union[str, NodeSpec]],
        model: str = "llama",
        precision: str = "fp16",
        policy: str = "round-robin",
        regions: Optional[Sequence[Optional[str]]] = None,
        traces: Optional[Mapping[str, CarbonTrace]] = None,
        **router_kwargs,
    ) -> "FleetSpec":
        """Build a spec from device presets and/or node specs.

        ``devices`` mixes preset names (``"jetson-orin-agx-64gb"``)
        and ready :class:`NodeSpec` values; ``regions`` (parallel to
        ``devices``) stamps a region onto each node; ``traces`` maps
        region names to :class:`CarbonTrace` bindings.  Extra keyword
        arguments are the routing policy's knobs.
        """
        if regions is not None and len(regions) != len(devices):
            raise ConfigError("regions must parallel devices one-to-one")
        nodes = []
        for i, d in enumerate(devices):
            spec = d if isinstance(d, NodeSpec) else NodeSpec(device=d)
            if regions is not None and regions[i] is not None:
                spec = NodeSpec(**{**_spec_fields(spec),
                                   "region": regions[i]})
            nodes.append(spec)
        return cls(
            nodes=tuple(nodes),
            model=model,
            precision=precision,
            policy=policy,
            traces=tuple(sorted((traces or {}).items())),
            router_args=tuple(sorted(router_kwargs.items())),
        )

    def trace_for(self, region: Optional[str]) -> Optional[CarbonTrace]:
        """The carbon trace bound to ``region`` (None when unbound)."""
        if region is None:
            return None
        return dict(self.traces).get(region)

    def router_kwargs(self) -> Dict[str, object]:
        return dict(self.router_args)


def _spec_fields(spec: NodeSpec) -> Dict[str, object]:
    """The constructor kwargs reproducing ``spec`` (for with-overrides)."""
    from dataclasses import fields

    return {f.name: getattr(spec, f.name) for f in fields(spec)}
