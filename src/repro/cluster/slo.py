"""SLO accounting: deadlines, goodput, fairness and energy per token.

Follows the serving-systems convention of three per-request deadlines —
time-to-first-token (TTFT), time-per-output-token (TPOT) and end-to-end
latency — and reports *goodput under SLO* (completed requests meeting
every deadline, per second) rather than raw throughput, which TokenPower-
Bench argues is the honest denominator for energy too.

Fleet energy is integrated from the per-node telemetry traces (trapezoid
over the jtop-style samples, the paper's §2 methodology), so idle watts
on over-provisioned nodes are charged to the fleet; per-request joules
come from the nodes' exact step accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.node import ClusterNode
from repro.cluster.workload import ClusterRequest
from repro.errors import ConfigError
from repro.telemetry.energy import trapezoid_energy_j


@dataclass(frozen=True)
class SLOSpec:
    """Per-request deadlines; ``None`` disables a dimension."""

    ttft_s: Optional[float] = 10.0
    tpot_s: Optional[float] = 1.0
    e2e_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("ttft_s", "tpot_s", "e2e_s"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ConfigError(f"{name} deadline must be positive")

    def met(self, r: ClusterRequest) -> bool:
        """True iff the completed request meets every enabled deadline."""
        if r.finish_s is None:
            return False
        if self.ttft_s is not None and (r.ttft_s is None or r.ttft_s > self.ttft_s):
            return False
        if self.tpot_s is not None and r.tpot_s is not None and r.tpot_s > self.tpot_s:
            return False
        if self.e2e_s is not None and r.latency_s > self.e2e_s:
            return False
        return True


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with an empty-safe zero (reports over empty sets)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly equal, 1/n = maximally unfair."""
    v = np.asarray(list(values), dtype=float)
    if v.size == 0:
        return 1.0
    denom = v.size * float((v * v).sum())
    if denom == 0:
        return 1.0
    return float(v.sum()) ** 2 / denom


def max_min_share(values: Sequence[float]) -> float:
    """min/max ratio of the per-tenant allocations (1 = equal)."""
    v = [float(x) for x in values]
    if not v or max(v) == 0:
        return 1.0
    return min(v) / max(v)


@dataclass
class TenantReport:
    """Served volume, SLO outcome and token books for one tenant."""

    tenant: str
    injected: int = 0
    completed: int = 0
    rejected: int = 0
    served_tokens: int = 0
    slo_met: int = 0
    p99_ttft_s: float = 0.0
    # -- fairness ledger (repro.fairness); zero on fairness-free runs ----
    #: Service weight the schedulers/throttle honoured for this tenant.
    weight: float = 1.0
    #: Requests (and their prompt+output demand) the per-tenant token
    #: throttle turned away at injection.
    throttled: int = 0
    throttled_tokens: int = 0
    #: Produced-but-useless tokens: preemption/crash replays, unfinished
    #: requests, and turns of abandoned sessions.
    wasted_tokens: int = 0
    #: Served tokens of requests that met every SLO deadline.
    good_tokens: int = 0
    #: ``good_tokens`` over the tenant's admitted output demand.
    slo_good_share: float = 0.0

    def as_row(self) -> Dict:
        return {
            "tenant": self.tenant,
            "injected": self.injected,
            "completed": self.completed,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "served_tokens": self.served_tokens,
            "wasted_tokens": self.wasted_tokens,
            "slo_met": self.slo_met,
            "slo_good_share": round(self.slo_good_share, 3),
            "p99_ttft_s": round(self.p99_ttft_s, 2),
        }


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster serving run."""

    policy: str
    n_requests: int
    completed: int
    rejected: int
    makespan_s: float
    p50_ttft_s: float
    p99_ttft_s: float
    p50_e2e_s: float
    p99_e2e_s: float
    mean_tpot_s: float
    throughput_tok_s: float
    #: Fraction of *injected* requests completed within every deadline.
    slo_attainment: float
    #: SLO-meeting completions per second.
    goodput_rps: float
    #: Trapezoid-integrated fleet energy (telemetry traces, idle included).
    fleet_energy_j: float
    #: Fleet J per generated token.
    j_per_token: float
    #: Exact step-accounted busy energy across nodes.
    busy_energy_j: float
    jains_index: float
    max_min_share: float
    #: Fraction of fleet node-seconds the nodes were up.  Computed as
    #: ``1 - downtime / (n_nodes * makespan)`` from the nodes' crash
    #: logs, so a fault-free run reports exactly 1.0 (no float drift).
    availability: float = 1.0
    #: Mean time to repair over *completed* crash episodes (0 if none).
    mttr_s: float = 0.0
    #: Fleet-wide placement retries (failed routing rounds).
    retries: int = 0
    #: Fleet-wide crash-driven re-placements.
    requeues: int = 0
    #: Decode tokens produced then thrown away (preemption / KV loss).
    lost_tokens: int = 0
    # -- KV lifecycle (repro.kvtier); zero when no policy triggered ------
    #: Preemptions that preserved KV host-side / restores back to device.
    swap_outs: int = 0
    swap_ins: int = 0
    #: Preemptions that dropped KV (includes swap-space-full fallbacks).
    sacrifices: int = 0
    #: Total bytes written to the host swap tier, in GB.
    swapped_gb: float = 0.0
    #: Wall seconds the memory buses spent moving swapped KV.
    swap_transfer_s: float = 0.0
    #: Prompt tokens served from shared-prefix radix caches.
    prefix_hit_tokens: int = 0
    #: Fraction of prefix-cache lookups that reused >= 1 full block.
    prefix_hit_rate: float = 0.0
    # -- fairness (repro.fairness); defaults on fairness-free runs ------
    #: Queue-scheduling discipline the nodes served under.
    scheduler: str = "fcfs"
    #: Requests (and demand tokens) the per-tenant throttle turned away.
    throttled: int = 0
    throttled_tokens: int = 0
    #: Fleet-wide produced-but-useless tokens (see TenantReport).
    wasted_tokens: int = 0
    #: Jain's index over per-tenant SLO-good token shares — the token-
    #: level fairness metric (the request-count ``jains_index`` cannot
    #: separate schedulers once every request eventually completes).
    jain_tokens: float = 1.0
    #: Multi-turn sessions injected / abandoned (0 on single-shot runs).
    interactions: int = 0
    abandoned_interactions: int = 0
    # -- sustainability (repro.sustain); zero when no trace is bound -----
    #: Fleet CO₂ integrated from the per-node power traces against each
    #: node's regional carbon trace (grams; 0.0 on trace-free fleets).
    carbon_g: float = 0.0
    #: Fleet grams CO₂ per generated token.
    g_per_token: float = 0.0
    #: Electricity cost against the regional price series ($).
    energy_cost_usd: float = 0.0
    #: SLM-tier requests the cascade's quality gate escalated.
    escalations: int = 0
    tenants: List[TenantReport] = field(default_factory=list)
    node_rows: List[Dict] = field(default_factory=list)
    requests: List[ClusterRequest] = field(default_factory=list)

    def as_row(self) -> Dict:
        return {
            "policy": self.policy,
            "completed": self.completed,
            "rejected": self.rejected,
            "p50_ttft_s": round(self.p50_ttft_s, 2),
            "p99_ttft_s": round(self.p99_ttft_s, 2),
            "p99_e2e_s": round(self.p99_e2e_s, 2),
            "throughput_tok_s": round(self.throughput_tok_s, 1),
            "slo_attainment": round(self.slo_attainment, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "fleet_energy_j": round(self.fleet_energy_j, 1),
            "j_per_token": round(self.j_per_token, 3),
            "jain": round(self.jains_index, 3),
            # Fairness columns are always present likewise: FCFS, zero
            # throttling and zero waste on fairness-free runs.
            "scheduler": self.scheduler,
            "jain_tokens": round(self.jain_tokens, 3),
            "throttled": self.throttled,
            "wasted_tokens": self.wasted_tokens,
            # Resilience columns are always present, so chaos and
            # fault-free CSVs stay schema-compatible.
            "availability": round(self.availability, 4),
            "mttr_s": round(self.mttr_s, 2),
            "retries": self.retries,
            "requeues": self.requeues,
            # KV-lifecycle columns likewise: all-zero without a swap
            # policy or prefix-carrying workload.
            "swap_outs": self.swap_outs,
            "swap_ins": self.swap_ins,
            "sacrifices": self.sacrifices,
            "swapped_gb": round(self.swapped_gb, 3),
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "prefix_hit_rate": round(self.prefix_hit_rate, 3),
            # Sustainability columns likewise: exactly zero unless the
            # fleet binds regional carbon traces / runs a cascade.
            "carbon_g": round(self.carbon_g, 3),
            "g_per_token": round(self.g_per_token, 5),
            "energy_cost_usd": round(self.energy_cost_usd, 5),
            "escalations": self.escalations,
        }


def build_report(
    policy: str,
    requests: Sequence[ClusterRequest],
    nodes: Sequence[ClusterNode],
    slo: SLOSpec,
    makespan_s: float,
    scheduler: str = "fcfs",
    interactions: Optional[Sequence] = None,
    tenant_weights: Optional[Dict[str, float]] = None,
) -> ClusterReport:
    """Fold per-request outcomes and node telemetry into one report.

    ``interactions`` (multi-turn runs) supplies the abandoned-session
    set for the wasted-token ledger; ``tenant_weights`` annotates the
    per-tenant rows with the weights the schedulers honoured.
    """
    from repro.fairness.accounting import build_ledger

    done = [r for r in requests if r.finish_s is not None]
    rejected = [r for r in requests if r.rejected]
    ttfts = [r.ttft_s for r in done if r.ttft_s is not None]
    e2es = [r.latency_s for r in done]
    tpots = [r.tpot_s for r in done if r.tpot_s is not None]
    met = [r for r in done if slo.met(r)]
    span = max(makespan_s, 1e-9)

    served_tokens = sum(n.served_tokens for n in nodes)
    fleet_j = 0.0
    carbon_g = 0.0
    energy_usd = 0.0
    for n in nodes:
        if len(n.sampler.samples) >= 2:
            fleet_j += trapezoid_energy_j(n.sampler.samples)
            trace = getattr(n, "carbon_trace", None)
            if trace is not None:
                from repro.sustain.trace import carbon_from_samples

                g, usd = carbon_from_samples(n.sampler.samples, trace)
                carbon_g += g
                energy_usd += usd

    tenants: Dict[str, TenantReport] = {}
    tenant_ttfts: Dict[str, List[float]] = {}
    for r in requests:
        name = getattr(r, "tenant", "tenant0")
        t = tenants.setdefault(name, TenantReport(tenant=name))
        t.injected += 1
        if r.rejected:
            t.rejected += 1
        if r.finish_s is not None:
            t.completed += 1
            t.served_tokens += r.generated
            if slo.met(r):
                t.slo_met += 1
            if r.ttft_s is not None:
                tenant_ttfts.setdefault(name, []).append(r.ttft_s)
    for name, t in tenants.items():
        t.p99_ttft_s = percentile(tenant_ttfts.get(name, []), 99)

    # The token-level fairness ledger (repro.fairness): conservation-
    # checked production/waste books per tenant, session abandonment
    # included.  ``served_tokens`` comes from the ledger so tokens
    # delivered to turns of dead sessions count as waste, not service.
    abandoned_ids = frozenset(
        i.interaction_id for i in (interactions or []) if i.abandoned)
    ledgers = build_ledger(requests, abandoned_ids, slo_met=slo.met,
                           weights=tenant_weights)
    for name, t in tenants.items():
        led = ledgers[name]
        t.weight = led.weight
        t.throttled = led.throttled
        t.throttled_tokens = led.throttled_tokens
        t.served_tokens = led.served_tokens
        t.wasted_tokens = led.wasted_tokens
        t.good_tokens = led.good_tokens
        t.slo_good_share = led.slo_good_share
    good_shares = [l.slo_good_share for l in ledgers.values()
                   if l.admitted_output_tokens > 0]

    # Fairness over per-tenant *service rates* normalised by demand:
    # share = completed/injected, so a tenant whose whole traffic is
    # rejected drags the index down even if it is small.
    shares = [t.completed / t.injected for t in tenants.values() if t.injected]

    # Resilience: availability over fleet node-seconds from the crash
    # logs.  Integer-zero downtime divides out to exactly 1.0 on the
    # fault-free path (the schema-compatibility invariant).
    downtime = sum(n.downtime_s for n in nodes)
    availability = (1.0 if downtime == 0
                    else 1.0 - downtime / (len(nodes) * span))
    repairs = [ep.repair_s for n in nodes for ep in n.crash_log
               if ep.repair_s is not None]

    # KV lifecycle: swap-tier and radix-cache counters across the fleet.
    swap_stats = [n.swap.stats for n in nodes if n.swap is not None]
    radix_stats = [n.radix.stats for n in nodes if n.radix is not None]
    prefix_lookups = sum(s.lookups for s in radix_stats)
    prefix_hits = sum(s.hits for s in radix_stats)
    return ClusterReport(
        policy=policy,
        n_requests=len(requests),
        completed=len(done),
        rejected=len(rejected),
        makespan_s=makespan_s,
        p50_ttft_s=percentile(ttfts, 50),
        p99_ttft_s=percentile(ttfts, 99),
        p50_e2e_s=percentile(e2es, 50),
        p99_e2e_s=percentile(e2es, 99),
        mean_tpot_s=float(np.mean(tpots)) if tpots else 0.0,
        throughput_tok_s=served_tokens / span,
        slo_attainment=len(met) / max(len(requests), 1),
        goodput_rps=len(met) / span,
        fleet_energy_j=fleet_j,
        j_per_token=fleet_j / max(served_tokens, 1),
        busy_energy_j=sum(n.busy_energy_j for n in nodes),
        jains_index=jains_index(shares),
        max_min_share=max_min_share(shares),
        availability=availability,
        mttr_s=float(np.mean(repairs)) if repairs else 0.0,
        retries=sum(r.retries for r in requests),
        requeues=sum(getattr(r, "requeues", 0) for r in requests),
        lost_tokens=sum(r.lost_tokens for r in requests),
        swap_outs=sum(s.swap_outs for s in swap_stats),
        swap_ins=sum(s.swap_ins for s in swap_stats),
        sacrifices=sum(n.kv_sacrifices for n in nodes),
        swapped_gb=sum(s.swapped_out_bytes for s in swap_stats) / 1e9,
        swap_transfer_s=sum(s.transfer_seconds for s in swap_stats),
        prefix_hit_tokens=sum(s.hit_tokens for s in radix_stats),
        prefix_hit_rate=(prefix_hits / prefix_lookups
                         if prefix_lookups else 0.0),
        scheduler=scheduler,
        throttled=sum(l.throttled for l in ledgers.values()),
        throttled_tokens=sum(l.throttled_tokens for l in ledgers.values()),
        wasted_tokens=sum(l.wasted_tokens for l in ledgers.values()),
        jain_tokens=jains_index(good_shares),
        interactions=len(interactions or []),
        abandoned_interactions=len(abandoned_ids),
        carbon_g=carbon_g,
        g_per_token=carbon_g / max(served_tokens, 1),
        energy_cost_usd=energy_usd,
        escalations=sum(1 for r in requests
                        if getattr(r, "escalated", False)),
        tenants=sorted(tenants.values(), key=lambda t: t.tenant),
        node_rows=[n.as_row() for n in nodes],
        requests=list(requests),
    )
