"""Request-trace generators for single-device and cluster serving.

The engine's original inline helper only produced fixed-shape Poisson
arrivals; real edge deployments see anything but.  This module is the
single workload API both the single-device schedulers and the cluster
layer draw from:

- :func:`poisson_workload` — the original memoryless stream (moved here
  from ``repro.engine.scheduler``, which re-exports it).
- :func:`bursty_workload` — a two-state Markov-modulated Poisson
  process (MMPP-2): calm and burst phases with exponential sojourns,
  the standard parsimonious model of flash-crowd traffic.
- :func:`diurnal_workload` — a sinusoidal day/night rate profile
  sampled by thinning (non-homogeneous Poisson).
- :func:`multi_tenant_workload` — a weighted mix of tenants, each with
  its own prompt/output-length profile (optionally estimated from the
  prompt pools in :mod:`repro.datasets`).

Every generator is deterministic under its ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.scheduler import ServeRequest
from repro.errors import ExperimentError, WorkloadError


@dataclass
class ClusterRequest(ServeRequest):
    """A :class:`ServeRequest` with multi-tenant and routing bookkeeping."""

    tenant: str = "tenant0"
    #: Node the router placed the request on (set by the cluster).
    node_id: Optional[int] = None
    #: True once admission control gave up on the request.
    rejected: bool = False
    #: True when the per-tenant token throttle turned the request away
    #: before placement (a rejected-with-reason subset of ``rejected``).
    throttled: bool = False
    #: Multi-turn session membership (``repro.fairness``): the owning
    #: interaction and this request's turn index within it.
    interaction_id: Optional[int] = None
    turn: int = 0
    #: Placement attempts that found no node with capacity.
    retries: int = 0
    #: Times the request was re-placed after losing its node (crash).
    requeues: int = 0
    #: Busy energy attributed to this request's tokens (J).
    energy_j: float = 0.0
    #: Simulated time the prefill finished (set by prefill/decode split).
    prefill_end_s: Optional[float] = None
    #: Open observability span ids (``repro.obs``): the request-lifetime
    #: span and the current queue-wait span.  ``-1`` (``NO_SPAN``) when
    #: observability is off or the span is closed.
    obs_span: int = -1
    queue_span: int = -1
    #: Transient: evicted under KV pressure, awaiting re-admission.
    evicted: bool = False
    #: KV lifecycle state (``repro.kvtier``): ``resident`` while the
    #: request's KV lives on-device, ``swapped`` while preserved host-
    #: side awaiting re-admission, ``sacrificed`` after a drop.
    kv_state: str = "resident"
    #: Bytes currently preserved in the host swap tier (0 unless
    #: ``kv_state == "swapped"``).
    swapped_kv_bytes: int = 0
    #: Lifetime swap-out / swap-in counts for this request.
    swaps: int = 0
    swap_ins: int = 0
    #: Cascade stage (``repro.sustain``): requests carrying a tier are
    #: only admitted by nodes labelled with it (None = any node).
    tier: Optional[str] = None
    #: True once the cascade's quality gate escalated this (SLM-tier)
    #: request — its generated tokens are booked as waste.
    escalated: bool = False
    #: The SLM request this LLM-tier twin re-serves (-1 = original).
    escalated_from: int = -1


def poisson_workload(
    rate_per_s: float,
    n_requests: int,
    input_tokens: int = 32,
    output_tokens: int = 64,
    seed: int = 0,
) -> List[ServeRequest]:
    """Seeded Poisson arrival stream with fixed-shape requests."""
    if rate_per_s <= 0 or n_requests < 1:
        raise ExperimentError("need positive rate and >= 1 request")
    rng = np.random.default_rng(seed)
    t = 0.0
    out = []
    for i in range(n_requests):
        t += float(rng.exponential(1.0 / rate_per_s))
        out.append(ServeRequest(req_id=i, arrival_s=t,
                                input_tokens=input_tokens,
                                output_tokens=output_tokens))
    return out


def bursty_workload(
    rate_calm_per_s: float,
    rate_burst_per_s: float,
    n_requests: int,
    input_tokens: int = 32,
    output_tokens: int = 64,
    mean_calm_s: float = 30.0,
    mean_burst_s: float = 10.0,
    seed: int = 0,
) -> List[ClusterRequest]:
    """Two-state MMPP: calm/burst phases with exponential sojourns.

    The process alternates between a calm state (arrival rate
    ``rate_calm_per_s``) and a burst state (``rate_burst_per_s``); the
    time spent in each state is exponential with the given means.
    """
    if min(rate_calm_per_s, rate_burst_per_s) <= 0 or n_requests < 1:
        raise WorkloadError("need positive rates and >= 1 request")
    if rate_burst_per_s < rate_calm_per_s:
        raise WorkloadError("burst rate must be >= calm rate")
    if min(mean_calm_s, mean_burst_s) <= 0:
        raise WorkloadError("state sojourn means must be positive")
    rng = np.random.default_rng(seed)
    t = 0.0
    burst = False
    state_end = float(rng.exponential(mean_calm_s))
    out: List[ClusterRequest] = []
    while len(out) < n_requests:
        rate = rate_burst_per_s if burst else rate_calm_per_s
        gap = float(rng.exponential(1.0 / rate))
        if t + gap >= state_end:
            # Memoryless: restart the draw from the state boundary.
            t = state_end
            burst = not burst
            state_end = t + float(
                rng.exponential(mean_burst_s if burst else mean_calm_s)
            )
            continue
        t += gap
        out.append(ClusterRequest(req_id=len(out), arrival_s=t,
                                  input_tokens=input_tokens,
                                  output_tokens=output_tokens))
    return out


def diurnal_workload(
    mean_rate_per_s: float,
    n_requests: int,
    period_s: float = 240.0,
    swing: float = 0.8,
    input_tokens: int = 32,
    output_tokens: int = 64,
    seed: int = 0,
) -> List[ClusterRequest]:
    """Sinusoidal day/night rate profile, sampled by thinning.

    The instantaneous rate is
    ``mean * (1 + swing * sin(2*pi*t/period))``; ``swing`` in [0, 1)
    controls how deep the troughs go.  ``period_s`` is compressed from
    24 h to something a simulation can cover.
    """
    if mean_rate_per_s <= 0 or n_requests < 1:
        raise WorkloadError("need a positive mean rate and >= 1 request")
    if not 0.0 <= swing < 1.0:
        raise WorkloadError("swing must be in [0, 1)")
    if period_s <= 0:
        raise WorkloadError("period must be positive")
    rng = np.random.default_rng(seed)
    rate_max = mean_rate_per_s * (1.0 + swing)
    t = 0.0
    out: List[ClusterRequest] = []
    while len(out) < n_requests:
        t += float(rng.exponential(1.0 / rate_max))
        rate_t = mean_rate_per_s * (
            1.0 + swing * math.sin(2.0 * math.pi * t / period_s)
        )
        if float(rng.uniform()) * rate_max <= rate_t:
            out.append(ClusterRequest(req_id=len(out), arrival_s=t,
                                      input_tokens=input_tokens,
                                      output_tokens=output_tokens))
    return out


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's share of traffic and request-shape distribution.

    Lengths are drawn from independent lognormals (the shape reported
    for production LLM traces) parameterised by mean and coefficient of
    variation, then clamped to ``[min_tokens, max_tokens]``.
    """

    name: str
    weight: float = 1.0
    mean_input_tokens: float = 64.0
    mean_output_tokens: float = 64.0
    cv_input: float = 0.5
    cv_output: float = 0.5
    min_tokens: int = 4
    max_tokens: int = 2048

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"tenant {self.name!r} needs a positive weight")
        if min(self.mean_input_tokens, self.mean_output_tokens) < 1:
            raise WorkloadError(f"tenant {self.name!r} mean lengths must be >= 1")
        if min(self.cv_input, self.cv_output) < 0:
            raise WorkloadError(f"tenant {self.name!r} CVs must be >= 0")
        if not 1 <= self.min_tokens <= self.max_tokens:
            raise WorkloadError(f"tenant {self.name!r} has an empty length range")

    @classmethod
    def from_dataset(
        cls,
        name: str,
        dataset: str,
        weight: float = 1.0,
        mean_output_tokens: float = 64.0,
        seed: int = 0,
    ) -> "TenantProfile":
        """Estimate the prompt-length profile from a repro.datasets pool.

        Builds the named workload (``"wikitext2"`` or ``"longbench"``)
        and fits the lognormal input profile to its pooled prompt
        lengths — an offline stand-in for "replay this dataset's
        prompts".
        """
        from repro.datasets import build_workload

        pool = build_workload(dataset, seed=seed).pool
        lengths = np.array([p.n_tokens for p in pool.prompts], dtype=float)
        mean = float(lengths.mean())
        cv = float(lengths.std() / mean) if mean > 0 else 0.0
        return cls(name=name, weight=weight,
                   mean_input_tokens=mean,
                   mean_output_tokens=mean_output_tokens,
                   cv_input=cv,
                   max_tokens=int(lengths.max() * 2))

    def _draw(self, rng: np.random.Generator, mean: float, cv: float) -> int:
        if cv <= 0:
            n = mean
        else:
            sigma = math.sqrt(math.log(1.0 + cv * cv))
            mu = math.log(mean) - 0.5 * sigma * sigma
            n = float(rng.lognormal(mu, sigma))
        return int(min(max(round(n), self.min_tokens), self.max_tokens))

    def sample_shape(self, rng: np.random.Generator) -> tuple:
        """(input_tokens, output_tokens) for one request."""
        return (
            self._draw(rng, self.mean_input_tokens, self.cv_input),
            self._draw(rng, self.mean_output_tokens, self.cv_output),
        )


def normalized_weights(tenants: Sequence[TenantProfile]) -> np.ndarray:
    """Tenant draw probabilities from profile weights (sums to 1).

    The single normalisation point shared by ``multi_tenant_workload``
    and :func:`repro.fairness.session.session_workload`; raises a typed
    :class:`~repro.errors.WorkloadError` on an empty mix or a
    non-positive total (individual ``weight <= 0`` is already refused
    by :class:`TenantProfile` at construction).
    """
    if not tenants:
        raise WorkloadError("need at least one tenant profile")
    weights = np.array([t.weight for t in tenants], dtype=float)
    total = float(weights.sum())
    if not total > 0 or not np.isfinite(total):
        raise WorkloadError(
            f"tenant weights must sum to a positive finite value, "
            f"got {total!r}")
    return weights / total


#: A small default mix: chat (short in/medium out), summarisation
#: (long in/short out) and batch analytics (long both ways).
DEFAULT_TENANTS = (
    TenantProfile("chat", weight=6.0, mean_input_tokens=48,
                  mean_output_tokens=96, cv_input=0.6, cv_output=0.7),
    TenantProfile("summarize", weight=3.0, mean_input_tokens=512,
                  mean_output_tokens=48, cv_input=0.4, cv_output=0.4),
    TenantProfile("analytics", weight=1.0, mean_input_tokens=768,
                  mean_output_tokens=192, cv_input=0.3, cv_output=0.3),
)


def multi_tenant_workload(
    rate_per_s: float,
    n_requests: int,
    tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
    arrivals: str = "poisson",
    seed: int = 0,
    **arrival_kwargs,
) -> List[ClusterRequest]:
    """Weighted tenant mix over a Poisson or bursty arrival process.

    ``arrivals`` selects the base process (``"poisson"`` or
    ``"bursty"``); extra keyword arguments are forwarded to it (for
    bursty, ``rate_per_s`` is the calm rate and ``rate_burst_per_s``
    defaults to 4x calm).
    """
    weights = normalized_weights(tenants)
    if arrivals == "poisson":
        base = poisson_workload(rate_per_s, n_requests, seed=seed,
                                **arrival_kwargs)
    elif arrivals == "bursty":
        arrival_kwargs.setdefault("rate_burst_per_s", 4.0 * rate_per_s)
        base = bursty_workload(rate_per_s, n_requests=n_requests, seed=seed,
                               **arrival_kwargs)
    else:
        raise WorkloadError(f"unknown arrival process {arrivals!r}")

    rng = np.random.default_rng(seed + 1)
    out: List[ClusterRequest] = []
    for r in base:
        tenant = tenants[int(rng.choice(len(tenants), p=weights))]
        inp, outp = tenant.sample_shape(rng)
        out.append(ClusterRequest(req_id=r.req_id, arrival_s=r.arrival_s,
                                  input_tokens=inp, output_tokens=outp,
                                  tenant=tenant.name))
    return out


def shared_prefix_workload(
    rate_per_s: float,
    n_requests: int,
    prefix_tokens: int = 128,
    share_ratio: float = 0.5,
    unique_tokens: int = 32,
    output_tokens: int = 64,
    seed: int = 0,
) -> List[ClusterRequest]:
    """The millions-of-users scenario: one common system prompt.

    A ``share_ratio`` fraction of requests open with the same
    ``prefix_tokens``-long system prompt followed by a per-request tail;
    the rest get fully unique prompts of identical total length, so the
    two populations are shape-matched and any TTFT difference comes
    from radix prefix hits alone.  Every request carries ``prompt_ids``
    (deterministic token IDs under ``seed``).
    """
    if rate_per_s <= 0 or n_requests < 1:
        raise WorkloadError("need a positive rate and >= 1 request")
    if not 0.0 <= share_ratio <= 1.0:
        raise WorkloadError("share_ratio must be in [0, 1]")
    if prefix_tokens < 1 or unique_tokens < 1:
        raise WorkloadError("prefix and unique lengths must be >= 1")
    rng = np.random.default_rng(seed)
    system_prompt = tuple(int(t) for t in
                          rng.integers(0, 32000, size=prefix_tokens))
    t = 0.0
    out: List[ClusterRequest] = []
    for i in range(n_requests):
        t += float(rng.exponential(1.0 / rate_per_s))
        shared = bool(rng.uniform() < share_ratio)
        tail_len = unique_tokens if shared else prefix_tokens + unique_tokens
        tail = tuple(int(v) for v in
                     rng.integers(32000, 64000, size=tail_len))
        ids = (system_prompt + tail) if shared else tail
        out.append(ClusterRequest(req_id=i, arrival_s=t,
                                  input_tokens=len(ids),
                                  output_tokens=output_tokens,
                                  prompt_ids=ids,
                                  tenant="shared" if shared else "unique"))
    return out


def as_cluster_requests(requests: Sequence[ServeRequest]) -> List[ClusterRequest]:
    """Upgrade plain engine requests to cluster requests (shared shapes)."""
    out = []
    for r in requests:
        if isinstance(r, ClusterRequest):
            out.append(r)
        else:
            out.append(ClusterRequest(req_id=r.req_id, arrival_s=r.arrival_s,
                                      input_tokens=r.input_tokens,
                                      output_tokens=r.output_tokens))
    return out
