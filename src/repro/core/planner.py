"""Deprecated function-style planner (now :mod:`repro.plan`).

The OOM-boundary searches moved to the spec-first surface:
:meth:`repro.plan.PlanSpec.feasibility` (or the lower-level
:func:`repro.plan.probe_max_batch` / :func:`repro.plan.probe_max_seq_len`)
replaces the two functions below.  These shims keep the historical
signatures working, with a :class:`DeprecationWarning` each — the test
suite runs with ``-W error::DeprecationWarning``, so nothing inside the
repo may call them anymore.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.engine.request import GenerationSpec
from repro.plan.feasibility import (
    engine_feasible as _feasible,  # noqa: F401  (compat re-export)
    probe_max_batch,
    probe_max_seq_len,
)
from repro.quant.dtypes import Precision


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.core.planner.{old} is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=3)


def max_batch_size(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    gen: GenerationSpec = GenerationSpec(32, 64),
    upper: int = 4096,
) -> Optional[int]:
    """Deprecated alias of :func:`repro.plan.probe_max_batch`."""
    _deprecated("max_batch_size",
                "repro.plan.PlanSpec.max_batch_size or "
                "repro.plan.probe_max_batch")
    return probe_max_batch(model, precision, device, gen, upper)


def max_sequence_length(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    batch_size: int = 32,
    input_fraction: float = 0.25,
    upper: int = 65536,
) -> Optional[int]:
    """Deprecated alias of :func:`repro.plan.probe_max_seq_len`."""
    _deprecated("max_sequence_length",
                "repro.plan.PlanSpec.max_seq_len or "
                "repro.plan.probe_max_seq_len")
    return probe_max_seq_len(model, precision, device, batch_size,
                             input_fraction, upper)
