"""Capacity planning: what fits before the board OOMs.

Answers the questions the paper's OOM cells pose operationally: for a
(device, model, precision), what is the largest batch at a given
sequence length — or the longest sequence at a given batch — that
completes?  The planner searches over the *actual simulated engine*
(same allocator, same buffers), so its answers are exactly the
feasibility boundary of the experiments, not a closed-form guess.
"""

from __future__ import annotations

from typing import Optional

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.quant.dtypes import Precision


def _feasible(model: str, precision: Precision, device: str,
              batch_size: int, gen: GenerationSpec) -> bool:
    spec = ExperimentSpec(
        model=model, precision=precision, device=device,
        batch_size=batch_size, gen=gen, n_runs=1, warmup=0,
    )
    return not run_experiment(spec).oom


def max_batch_size(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    gen: GenerationSpec = GenerationSpec(32, 64),
    upper: int = 4096,
) -> Optional[int]:
    """Largest feasible batch size at ``gen``; None if even bs=1 OOMs."""
    if upper < 1:
        raise ExperimentError("upper bound must be >= 1")
    if not _feasible(model, precision, device, 1, gen):
        return None
    # Exponential probe then binary search.
    lo, hi = 1, 2
    while hi <= upper and _feasible(model, precision, device, hi, gen):
        lo, hi = hi, hi * 2
    if hi > upper:
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _feasible(model, precision, device, mid, gen):
            lo = mid
        else:
            hi = mid
    return lo


def max_sequence_length(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    batch_size: int = 32,
    input_fraction: float = 0.25,
    upper: int = 65536,
) -> Optional[int]:
    """Longest feasible total sequence length at ``batch_size``.

    Sequence lengths follow the paper's convention: ``input_fraction``
    of the total is prompt, the rest generated.  Returns None if even
    sl=8 OOMs.
    """
    if not (0.0 < input_fraction < 1.0):
        raise ExperimentError("input_fraction must be in (0, 1)")

    def gen_for(sl: int) -> GenerationSpec:
        inp = max(1, int(sl * input_fraction))
        return GenerationSpec(inp, max(1, sl - inp))

    if not _feasible(model, precision, device, batch_size, gen_for(8)):
        return None
    lo, hi = 8, 16
    while hi <= upper and _feasible(model, precision, device, batch_size,
                                    gen_for(hi)):
        lo, hi = hi, hi * 2
    if hi > upper:
        return lo
    while hi - lo > 8:
        mid = (lo + hi) // 2
        if _feasible(model, precision, device, batch_size, gen_for(mid)):
            lo = mid
        else:
            hi = mid
    return lo
