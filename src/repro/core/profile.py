"""Deterministic profiling entry point for the harness hot path.

``repro profile`` answers "where does a cold run actually spend its
time?" without asking the user to wire up cProfile by hand.  It runs a
small spec list serially (no cache, so every spec takes the cold
simulate path), under :mod:`cProfile`, and renders a report that is
**stable across runs**: rows are sorted by ``(-cumtime, file, line,
name)``, paths are printed repo-relative, and only the top N rows are
shown — so two profiles of the same build diff cleanly and a regression
shows up as a reordered table, not noise.

Wall-clock caveat: cProfile's per-call hook inflates cheap, frequently
called functions (the allocator's per-op path can read ~4x its true
share), so treat the report as a map of *where to look*, and confirm
ratios with ``benchmarks/bench_harness_speed.py`` which times the same
scenarios un-instrumented.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ProfileRow:
    """One function's aggregate cost within the profiled region."""

    ncalls: int
    tottime: float
    cumtime: float
    where: str  # "path:line(function)" with repo-relative path

    def as_row(self) -> dict:
        return {
            "ncalls": self.ncalls,
            "tottime_s": round(self.tottime, 6),
            "cumtime_s": round(self.cumtime, 6),
            "function": self.where,
        }


@dataclass(frozen=True)
class ProfileReport:
    """Deterministic top-N view of one profiled run."""

    rows: Tuple[ProfileRow, ...]
    total_calls: int
    total_seconds: float
    n_specs: int

    def format(self) -> str:
        lines = [
            f"profile: {self.n_specs} spec(s), {self.total_calls} calls, "
            f"{self.total_seconds:.3f}s total (cProfile-instrumented)",
            f"{'ncalls':>10s} {'tottime':>9s} {'cumtime':>9s}  function",
        ]
        for r in self.rows:
            lines.append(f"{r.ncalls:>10d} {r.tottime:>9.4f} "
                         f"{r.cumtime:>9.4f}  {r.where}")
        return "\n".join(lines)


def _repo_relative(path: str) -> str:
    """Shorten an absolute source path for stable, readable reports.

    Paths inside this package become relative to the ``src`` root
    (``repro/engine/executor.py``); everything else (stdlib,
    site-packages) keeps its final two components, which is enough to
    identify the module without leaking machine-specific prefixes.
    """
    if path.startswith("~") or path == "<string>":
        return path  # builtins render as "~"; keep as-is
    p = Path(path)
    src_root = Path(__file__).resolve().parents[2]  # .../src
    try:
        return p.resolve().relative_to(src_root).as_posix()
    except ValueError:
        return "/".join(p.parts[-2:]) if len(p.parts) >= 2 else path


def report_from_stats(stats: pstats.Stats, top: int = 25,
                      n_specs: int = 0) -> ProfileReport:
    """Reduce raw pstats to the deterministic top-N report."""
    rows = []
    total_calls = 0
    for (path, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        total_calls += nc
        where = f"{_repo_relative(path)}:{line}({name})"
        rows.append(ProfileRow(ncalls=nc, tottime=tt, cumtime=ct, where=where))
    # cumtime descending; file:line(name) breaks ties so equal-cost rows
    # (common for trivial dunders) land in one canonical order.
    rows.sort(key=lambda r: (-r.cumtime, r.where))
    return ProfileReport(rows=tuple(rows[:top]), total_calls=total_calls,
                         total_seconds=stats.total_tt, n_specs=n_specs)


def profile_specs(
    specs: Sequence,
    params=None,
    fast_forward: bool = True,
    top: int = 25,
) -> ProfileReport:
    """cProfile a serial, uncached run of ``specs``; return the report.

    The run is forced serial and cache-less so the profile captures the
    cold simulate path itself — not pickle/dispatch overhead or cache
    hits, which the benchmarks measure separately.
    """
    from repro.core.experiment import run_experiment
    from repro.memsys.fastpath import TRAJECTORY_CACHE

    # A warm trajectory cache would hide the very work being profiled.
    TRAJECTORY_CACHE.clear()
    prof = cProfile.Profile()
    prof.enable()
    try:
        for spec in specs:
            run_experiment(spec, params=params, cache=None,
                           fast_forward=fast_forward)
    finally:
        prof.disable()
    stats = pstats.Stats(prof)
    return report_from_stats(stats, top=top, n_specs=len(specs))


def default_profile_specs(models: Optional[Sequence[str]] = None,
                          n_runs: int = 2) -> List:
    """A small, representative cold workload: one default-precision spec
    plus one larger-context spec per model."""
    from repro.core.experiment import ExperimentSpec
    from repro.engine.request import GenerationSpec

    names = list(models) if models else ["llama"]
    specs = []
    for name in names:
        specs.append(ExperimentSpec.for_model(name, n_runs=n_runs))
        specs.append(ExperimentSpec.for_model(
            name, n_runs=n_runs, batch_size=16,
            gen=GenerationSpec(128, 256)))
    return specs
