"""One experiment configuration and its execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.calibration import paperdata
from repro.engine.kernels import EngineCostParams
from repro.engine.request import GenerationSpec
from repro.engine.runtime import RunResult, ServingEngine
from repro.errors import ExperimentError, OutOfMemoryError
from repro.hardware.device import get_device
from repro.models.zoo import get_model
from repro.power.modes import get_power_mode
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to reproduce one measured cell of the paper.

    Defaults mirror the paper's defaults: Orin AGX 64GB, MAXN, batch
    size 32, sequence length 96 (32 input + 64 output), FP16 — except
    Deepseek-Qwen, which only fits at INT8 (pass the precision
    explicitly or use :func:`default_precision_for`).
    """

    model: str
    precision: Precision = Precision.FP16
    device: str = "jetson-orin-agx-64gb"
    batch_size: int = 32
    gen: GenerationSpec = field(default_factory=lambda: GenerationSpec(32, 64))
    #: A paper Table-2 mode name, or None to leave the board at its
    #: native operating point (nvpmodel's MAXN is per-device; the named
    #: "MAXN" here carries the AGX's Table-2 clocks, which smaller
    #: boards cannot apply).  Feasibility probes pass None: the OOM
    #: boundary does not depend on clocks.
    power_mode: Optional[str] = "MAXN"
    workload: str = "wikitext2"
    n_runs: int = 5
    warmup: int = 1
    kv_mode: str = "dynamic"
    #: Inference-runtime backend (see :func:`repro.backends.list_backends`).
    runtime: str = "hf-transformers"

    def __post_init__(self) -> None:
        if self.kv_mode not in ("dynamic", "static"):
            raise ExperimentError(f"unknown kv_mode {self.kv_mode!r}")
        if self.workload not in ("wikitext2", "longbench"):
            raise ExperimentError(f"unknown workload {self.workload!r}")
        # get_backend raises the typed ConfigError (listing valid names)
        # for unknown runtimes; instantiating also validates its config.
        backend_for_spec(self)
        if self.runtime != "hf-transformers" and self.kv_mode != "dynamic":
            raise ExperimentError(
                "kv_mode is an hf-transformers concern; the "
                f"{self.runtime!r} runtime fixes its own KV policy")

    def __setstate__(self, state: dict) -> None:
        # Specs pickled before the runtime axis existed (cache entries,
        # worker handoffs) load with the only runtime that existed then.
        state.setdefault("runtime", "hf-transformers")
        self.__dict__.update(state)

    @classmethod
    def for_model(cls, model: str, **overrides) -> "ExperimentSpec":
        """Spec for one model at the paper's sweep precision.

        The precision default is *model-dependent* (Deepseek-Qwen only
        fits at INT8), so this is the preferred constructor whenever the
        caller has not chosen a precision deliberately.
        """
        overrides.setdefault("precision", default_precision_for(model))
        return cls(model=model, **overrides)


def backend_for_spec(spec: "ExperimentSpec"):
    """The configured :class:`~repro.backends.base.RuntimeBackend` a spec
    selects (the hf backend absorbs the spec's legacy ``kv_mode``)."""
    from repro.backends import get_backend

    runtime = getattr(spec, "runtime", "hf-transformers")
    if runtime == "hf-transformers":
        return get_backend("hf-transformers", kv_mode=spec.kv_mode)
    return get_backend(runtime)


def default_precision_for(model_name: str) -> Precision:
    """The precision the paper's performance sweeps used for a model."""
    arch = get_model(model_name)
    name = paperdata.SWEEP_PRECISION.get(arch.name, "fp16")
    return Precision.parse(name)


def run_experiment(
    spec: ExperimentSpec,
    params: Optional[EngineCostParams] = None,
    cache=None,
    fast_forward: bool = True,
    observer=None,
) -> RunResult:
    """Execute one spec; OOM (at load or mid-run) yields ``oom=True``.

    When ``cache`` is a :class:`~repro.core.cache.ResultCache` (or one is
    installed process-wide via
    :func:`~repro.core.cache.set_default_cache` / ``REPRO_CACHE_DIR``),
    the result is looked up by content address before simulating and
    stored after.  The cache key covers the spec, the effective cost
    constants, and the cost-model version, so stale hits are impossible
    without a hash collision.

    An enabled ``observer`` (:class:`repro.obs.Observer`) collects
    spans/metrics for the run — and *bypasses* the cache: a cached hit
    replays no simulation, so it would produce an empty trace that
    silently masqueraded as a real one.
    """
    from repro.calibration.constants import CALIBRATED_COST_PARAMS
    from repro.core.cache import get_default_cache

    observing = observer is not None and observer.enabled
    if cache is None and not observing:
        cache = get_default_cache()
    if observing:
        cache = None
        observer.set_group(f"{spec.model}/{spec.device}")
    # The engine falls back to the calibrated constants when params is
    # None; the cache key must hash the constants actually in effect.
    effective_params = params or CALIBRATED_COST_PARAMS
    if cache is not None:
        # Single-flight: under parallel cold runs, concurrent workers
        # landing on one key resolve to exactly one compute — the rest
        # block on the claim and read the winner's result.
        return cache.get_or_compute(
            spec, effective_params,
            lambda: _simulate_spec(spec, params, fast_forward, observer),
        )
    return _simulate_spec(spec, params, fast_forward, observer)


def _simulate_spec(
    spec: ExperimentSpec,
    params: Optional[EngineCostParams],
    fast_forward: bool,
    observer,
) -> RunResult:
    """Run the simulation for one spec (the cache-miss path)."""
    arch = get_model(spec.model)
    device = get_device(spec.device)
    mode = (get_power_mode(spec.power_mode)
            if spec.power_mode is not None else None)
    try:
        engine = ServingEngine(device, arch, spec.precision, params=params,
                               backend=backend_for_spec(spec),
                               fast_forward=fast_forward,
                               observer=observer)
    except OutOfMemoryError:
        # The model itself does not fit (e.g. FP32 Mistral on 64GB).
        result = RunResult(
            model=arch.name,
            device=device.name,
            precision=spec.precision,
            batch_size=spec.batch_size,
            gen=spec.gen,
            power_mode=spec.power_mode or "MAXN",
            workload=spec.workload,
            runtime=spec.runtime,
            oom=True,
        )
    else:
        result = engine.run(
            batch_size=spec.batch_size,
            gen=spec.gen,
            n_runs=spec.n_runs,
            warmup=spec.warmup,
            power_mode=mode,
        )
        result.workload = spec.workload
    return result
