"""The paper's four experiment sweeps (§3.1-§3.4).

Each sweep is split into a pure ``*_sweep_specs`` builder (the grid of
:class:`~repro.core.experiment.ExperimentSpec` points, in paper order)
and a thin runner that executes the specs.  The builders let the study
harness collect every spec of every sweep into one flat plan and fan it
out across processes (:mod:`repro.core.parallel`) while reassembling
results in exactly the order the serial runners would produce.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.calibration import paperdata
from repro.core.experiment import ExperimentSpec, default_precision_for, run_experiment
from repro.engine.kernels import EngineCostParams
from repro.engine.request import GenerationSpec
from repro.engine.runtime import RunResult
from repro.errors import ExperimentError
from repro.quant.dtypes import PRECISION_ORDER, Precision

#: The paper's default generation split: sl=96 as 32 input + 64 output.
DEFAULT_GEN = GenerationSpec(32, 64)


def _gen_for_seqlen(seq_len: int) -> GenerationSpec:
    split = paperdata.SEQLEN_SPLIT.get(seq_len)
    if split is None:
        raise ExperimentError(
            f"no input/output split defined for sequence length {seq_len}"
        )
    return GenerationSpec(*split)


def _run_all(specs: Sequence[ExperimentSpec],
             params: Optional[EngineCostParams],
             cache) -> List[RunResult]:
    return [run_experiment(s, params=params, cache=cache) for s in specs]


# -- §3.1: batch size ---------------------------------------------------------

def batch_size_sweep_specs(
    model: str,
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    precision: Optional[Precision] = None,
    workload: str = "wikitext2",
    **spec_kwargs,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`batch_size_sweep`, in sweep order."""
    precision = precision or default_precision_for(model)
    return [
        ExperimentSpec(
            model=model, precision=precision, batch_size=bs,
            gen=DEFAULT_GEN, workload=workload, **spec_kwargs,
        )
        for bs in batch_sizes
    ]


def batch_size_sweep(
    model: str,
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    precision: Optional[Precision] = None,
    workload: str = "wikitext2",
    params: Optional[EngineCostParams] = None,
    cache=None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.1 / Fig 1/6/7, Tables 4-5: vary batch size at sl=96, MAXN."""
    specs = batch_size_sweep_specs(model, batch_sizes, precision,
                                   workload, **spec_kwargs)
    return _run_all(specs, params, cache)


# -- §3.2: sequence length ----------------------------------------------------

def seq_len_sweep_specs(
    model: str,
    seq_lengths: Sequence[int] = paperdata.SEQ_LENGTHS,
    precision: Optional[Precision] = None,
    workload: str = "longbench",
    **spec_kwargs,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`seq_len_sweep`, in sweep order."""
    precision = precision or default_precision_for(model)
    return [
        ExperimentSpec(
            model=model, precision=precision, batch_size=32,
            gen=_gen_for_seqlen(sl), workload=workload, **spec_kwargs,
        )
        for sl in seq_lengths
    ]


def seq_len_sweep(
    model: str,
    seq_lengths: Sequence[int] = paperdata.SEQ_LENGTHS,
    precision: Optional[Precision] = None,
    workload: str = "longbench",
    params: Optional[EngineCostParams] = None,
    cache=None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.2 / Fig 2/8/9, Tables 6-7: vary sequence length at bs=32."""
    specs = seq_len_sweep_specs(model, seq_lengths, precision,
                                workload, **spec_kwargs)
    return _run_all(specs, params, cache)


# -- §3.3: quantization -------------------------------------------------------

def quantization_sweep_specs(
    model: str,
    precisions: Iterable[Precision] = PRECISION_ORDER,
    batch_size: int = 32,
    gen: GenerationSpec = DEFAULT_GEN,
    **spec_kwargs,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`quantization_sweep`, in sweep order."""
    return [
        ExperimentSpec(
            model=model, precision=prec, batch_size=batch_size,
            gen=gen, **spec_kwargs,
        )
        for prec in precisions
    ]


def quantization_sweep(
    model: str,
    precisions: Iterable[Precision] = PRECISION_ORDER,
    batch_size: int = 32,
    gen: GenerationSpec = DEFAULT_GEN,
    params: Optional[EngineCostParams] = None,
    cache=None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.3 / Fig 3/11: FP32->INT4 at bs=32, sl=96 (OOM cells included)."""
    specs = quantization_sweep_specs(model, precisions, batch_size,
                                     gen, **spec_kwargs)
    return _run_all(specs, params, cache)


#: Paper Table 2 mode names, in paper order.
POWER_MODES = ("MAXN", "A", "B", "C", "D", "E", "F", "G", "H")


# -- §3.4: power modes --------------------------------------------------------

def power_mode_sweep_specs(
    model: str,
    modes: Sequence[str] = POWER_MODES,
    precision: Optional[Precision] = None,
    **spec_kwargs,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`power_mode_sweep`, in sweep order."""
    precision = precision or default_precision_for(model)
    return [
        ExperimentSpec(
            model=model, precision=precision, batch_size=32,
            gen=DEFAULT_GEN, power_mode=mode, **spec_kwargs,
        )
        for mode in modes
    ]


def power_mode_sweep(
    model: str,
    modes: Sequence[str] = POWER_MODES,
    precision: Optional[Precision] = None,
    params: Optional[EngineCostParams] = None,
    cache=None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.4 / Fig 5: the nine power modes at bs=32, sl=96."""
    specs = power_mode_sweep_specs(model, modes, precision, **spec_kwargs)
    return _run_all(specs, params, cache)


# -- §3.3: power/energy across batch sizes ------------------------------------

def batch_quant_power_sweep_specs(
    model: str,
    precisions: Iterable[Precision] = (Precision.FP16, Precision.INT8, Precision.INT4),
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    **spec_kwargs,
) -> Dict[Precision, List[ExperimentSpec]]:
    """The spec grid of :func:`batch_quant_power_sweep`, in sweep order."""
    return {
        prec: [
            ExperimentSpec(
                model=model, precision=prec, batch_size=bs,
                gen=DEFAULT_GEN, **spec_kwargs,
            )
            for bs in batch_sizes
        ]
        for prec in precisions
    }


def batch_quant_power_sweep(
    model: str,
    precisions: Iterable[Precision] = (Precision.FP16, Precision.INT8, Precision.INT4),
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    params: Optional[EngineCostParams] = None,
    cache=None,
    **spec_kwargs,
) -> Dict[Precision, List[RunResult]]:
    """§3.3 / Fig 4/10: power & energy across batch sizes per precision."""
    grid = batch_quant_power_sweep_specs(model, precisions, batch_sizes,
                                         **spec_kwargs)
    return {prec: _run_all(specs, params, cache)
            for prec, specs in grid.items()}
