"""The paper's four experiment sweeps (§3.1-§3.4)."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.calibration import paperdata
from repro.core.experiment import ExperimentSpec, default_precision_for, run_experiment
from repro.engine.kernels import EngineCostParams
from repro.engine.request import GenerationSpec
from repro.engine.runtime import RunResult
from repro.errors import ExperimentError
from repro.quant.dtypes import PRECISION_ORDER, Precision

#: The paper's default generation split: sl=96 as 32 input + 64 output.
DEFAULT_GEN = GenerationSpec(32, 64)


def _gen_for_seqlen(seq_len: int) -> GenerationSpec:
    split = paperdata.SEQLEN_SPLIT.get(seq_len)
    if split is None:
        raise ExperimentError(
            f"no input/output split defined for sequence length {seq_len}"
        )
    return GenerationSpec(*split)


def batch_size_sweep(
    model: str,
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    precision: Optional[Precision] = None,
    workload: str = "wikitext2",
    params: Optional[EngineCostParams] = None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.1 / Fig 1/6/7, Tables 4-5: vary batch size at sl=96, MAXN."""
    precision = precision or default_precision_for(model)
    out: List[RunResult] = []
    for bs in batch_sizes:
        spec = ExperimentSpec(
            model=model, precision=precision, batch_size=bs,
            gen=DEFAULT_GEN, workload=workload, **spec_kwargs,
        )
        out.append(run_experiment(spec, params=params))
    return out


def seq_len_sweep(
    model: str,
    seq_lengths: Sequence[int] = paperdata.SEQ_LENGTHS,
    precision: Optional[Precision] = None,
    workload: str = "longbench",
    params: Optional[EngineCostParams] = None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.2 / Fig 2/8/9, Tables 6-7: vary sequence length at bs=32."""
    precision = precision or default_precision_for(model)
    out: List[RunResult] = []
    for sl in seq_lengths:
        spec = ExperimentSpec(
            model=model, precision=precision, batch_size=32,
            gen=_gen_for_seqlen(sl), workload=workload, **spec_kwargs,
        )
        out.append(run_experiment(spec, params=params))
    return out


def quantization_sweep(
    model: str,
    precisions: Iterable[Precision] = PRECISION_ORDER,
    batch_size: int = 32,
    gen: GenerationSpec = DEFAULT_GEN,
    params: Optional[EngineCostParams] = None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.3 / Fig 3/11: FP32->INT4 at bs=32, sl=96 (OOM cells included)."""
    out: List[RunResult] = []
    for prec in precisions:
        spec = ExperimentSpec(
            model=model, precision=prec, batch_size=batch_size,
            gen=gen, **spec_kwargs,
        )
        out.append(run_experiment(spec, params=params))
    return out


#: Paper Table 2 mode names, in paper order.
POWER_MODES = ("MAXN", "A", "B", "C", "D", "E", "F", "G", "H")


def power_mode_sweep(
    model: str,
    modes: Sequence[str] = POWER_MODES,
    precision: Optional[Precision] = None,
    params: Optional[EngineCostParams] = None,
    **spec_kwargs,
) -> List[RunResult]:
    """§3.4 / Fig 5: the nine power modes at bs=32, sl=96."""
    precision = precision or default_precision_for(model)
    out: List[RunResult] = []
    for mode in modes:
        spec = ExperimentSpec(
            model=model, precision=precision, batch_size=32,
            gen=DEFAULT_GEN, power_mode=mode, **spec_kwargs,
        )
        out.append(run_experiment(spec, params=params))
    return out


def batch_quant_power_sweep(
    model: str,
    precisions: Iterable[Precision] = (Precision.FP16, Precision.INT8, Precision.INT4),
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    params: Optional[EngineCostParams] = None,
    **spec_kwargs,
) -> Dict[Precision, List[RunResult]]:
    """§3.3 / Fig 4/10: power & energy across batch sizes per precision."""
    out: Dict[Precision, List[RunResult]] = {}
    for prec in precisions:
        runs: List[RunResult] = []
        for bs in batch_sizes:
            spec = ExperimentSpec(
                model=model, precision=prec, batch_size=bs,
                gen=DEFAULT_GEN, **spec_kwargs,
            )
            runs.append(run_experiment(spec, params=params))
        out[prec] = runs
    return out
