"""The paper's four experiment sweeps (§3.1-§3.4).

Each sweep is split into a pure ``*_sweep_specs`` builder (the grid of
:class:`~repro.core.experiment.ExperimentSpec` points, in paper order)
and a thin runner that executes the specs.  The builders let the study
harness collect every spec of every sweep into one flat plan and fan it
out across processes (:mod:`repro.core.parallel`) while reassembling
results in exactly the order the serial runners would produce.

Every entry point is **spec-first**: the first argument is an
:class:`~repro.core.experiment.ExperimentSpec` template and each grid
point is a :func:`dataclasses.replace` of it along the sweep's axis::

    spec = ExperimentSpec.for_model("llama", n_runs=3)
    runs = batch_size_sweep(spec, batch_sizes=(1, 32, 64))

Passing a bare model name with configuration kwargs (the pre-spec API,
``batch_size_sweep("llama", n_runs=3)``) still works but emits a
:class:`DeprecationWarning` pointing at ``ExperimentSpec.for_model``.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.calibration import paperdata
from repro.core.experiment import (ExperimentSpec, default_precision_for,
                                   run_experiment)
from repro.engine.kernels import EngineCostParams
from repro.engine.request import GenerationSpec
from repro.engine.runtime import RunResult
from repro.errors import ExperimentError
from repro.quant.dtypes import PRECISION_ORDER, Precision

#: The paper's default generation split: sl=96 as 32 input + 64 output.
DEFAULT_GEN = GenerationSpec(32, 64)

SpecOrModel = Union[ExperimentSpec, str]


def _gen_for_seqlen(seq_len: int) -> GenerationSpec:
    split = paperdata.SEQLEN_SPLIT.get(seq_len)
    if split is None:
        raise ExperimentError(
            f"no input/output split defined for sequence length {seq_len}"
        )
    return GenerationSpec(*split)


def _base_spec(spec: SpecOrModel, caller: str, legacy: dict) -> ExperimentSpec:
    """Coerce the first sweep argument to an ExperimentSpec template.

    Spec-first calls pass configuration *on the spec*; mixing a spec
    with legacy configuration kwargs is ambiguous and refused.  A bare
    model name takes the old kwargs but is deprecated.
    """
    if isinstance(spec, ExperimentSpec):
        if legacy:
            raise ExperimentError(
                f"{caller}: configuration goes on the ExperimentSpec "
                f"(dataclasses.replace), not keyword arguments "
                f"{sorted(legacy)}"
            )
        return spec
    warnings.warn(
        f"{caller}({spec!r}, ...) with a model name is deprecated; pass "
        f"an ExperimentSpec (ExperimentSpec.for_model({spec!r}, ...))",
        DeprecationWarning, stacklevel=3,
    )
    precision = legacy.pop("precision", None)
    if precision is None:
        precision = default_precision_for(spec)
    return ExperimentSpec(model=spec, precision=precision, **legacy)


def _run_all(specs: Sequence[ExperimentSpec],
             params: Optional[EngineCostParams],
             cache, observer=None) -> List[RunResult]:
    return [run_experiment(s, params=params, cache=cache, observer=observer)
            for s in specs]


# -- §3.1: batch size ---------------------------------------------------------

def batch_size_sweep_specs(
    spec: SpecOrModel,
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    **legacy,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`batch_size_sweep`, in sweep order."""
    base = _base_spec(spec, "batch_size_sweep_specs", legacy)
    return [replace(base, batch_size=bs) for bs in batch_sizes]


def batch_size_sweep(
    spec: SpecOrModel,
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> List[RunResult]:
    """§3.1 / Fig 1/6/7, Tables 4-5: vary batch size at sl=96, MAXN."""
    specs = batch_size_sweep_specs(spec, batch_sizes, **legacy)
    return _run_all(specs, params, cache, observer)


# -- §3.2: sequence length ----------------------------------------------------

def seq_len_sweep_specs(
    spec: SpecOrModel,
    seq_lengths: Sequence[int] = paperdata.SEQ_LENGTHS,
    **legacy,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`seq_len_sweep`, in sweep order.

    Each point replaces the generation split for its sequence length;
    the template's batch size (paper default 32) is kept.  The legacy
    model-name form defaults to the longbench workload, as the paper's
    §3.2 did.
    """
    if not isinstance(spec, ExperimentSpec):
        legacy.setdefault("workload", "longbench")
    base = _base_spec(spec, "seq_len_sweep_specs", legacy)
    return [replace(base, gen=_gen_for_seqlen(sl)) for sl in seq_lengths]


def seq_len_sweep(
    spec: SpecOrModel,
    seq_lengths: Sequence[int] = paperdata.SEQ_LENGTHS,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> List[RunResult]:
    """§3.2 / Fig 2/8/9, Tables 6-7: vary sequence length at bs=32."""
    specs = seq_len_sweep_specs(spec, seq_lengths, **legacy)
    return _run_all(specs, params, cache, observer)


# -- §3.3: quantization -------------------------------------------------------

def quantization_sweep_specs(
    spec: SpecOrModel,
    precisions: Iterable[Precision] = PRECISION_ORDER,
    **legacy,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`quantization_sweep`, in sweep order."""
    if not isinstance(spec, ExperimentSpec):
        # Precision is the swept axis; the template value is irrelevant,
        # so the legacy path needs no per-model default lookup.
        legacy.setdefault("precision", Precision.FP16)
    base = _base_spec(spec, "quantization_sweep_specs", legacy)
    return [replace(base, precision=prec) for prec in precisions]


def quantization_sweep(
    spec: SpecOrModel,
    precisions: Iterable[Precision] = PRECISION_ORDER,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> List[RunResult]:
    """§3.3 / Fig 3/11: FP32->INT4 at bs=32, sl=96 (OOM cells included)."""
    specs = quantization_sweep_specs(spec, precisions, **legacy)
    return _run_all(specs, params, cache, observer)


#: Paper Table 2 mode names, in paper order.
POWER_MODES = ("MAXN", "A", "B", "C", "D", "E", "F", "G", "H")


# -- §3.4: power modes --------------------------------------------------------

def power_mode_sweep_specs(
    spec: SpecOrModel,
    modes: Sequence[str] = POWER_MODES,
    **legacy,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`power_mode_sweep`, in sweep order."""
    base = _base_spec(spec, "power_mode_sweep_specs", legacy)
    return [replace(base, power_mode=mode) for mode in modes]


def power_mode_sweep(
    spec: SpecOrModel,
    modes: Sequence[str] = POWER_MODES,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> List[RunResult]:
    """§3.4 / Fig 5: the nine power modes at bs=32, sl=96."""
    specs = power_mode_sweep_specs(spec, modes, **legacy)
    return _run_all(specs, params, cache, observer)


# -- extension: runtime backends ----------------------------------------------

def runtime_sweep_specs(
    spec: SpecOrModel,
    runtimes: Optional[Sequence[str]] = None,
    **legacy,
) -> List[ExperimentSpec]:
    """The spec grid of :func:`runtime_sweep`, in registry order."""
    if runtimes is None:
        from repro.backends import list_backends

        runtimes = list_backends()
    base = _base_spec(spec, "runtime_sweep_specs", legacy)
    # Non-hf runtimes fix their own KV policy; drop a template kv_mode
    # ablation rather than refusing the whole sweep.
    return [replace(base, runtime=rt,
                    kv_mode=base.kv_mode if rt == "hf-transformers"
                    else "dynamic")
            for rt in runtimes]


def runtime_sweep(
    spec: SpecOrModel,
    runtimes: Optional[Sequence[str]] = None,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> List[RunResult]:
    """Cross-backend comparison: one fixed configuration per runtime.

    Extension beyond the paper (which measured only the HF stack);
    the grid covers every registered backend unless ``runtimes`` narrows
    it.  Pair with :func:`repro.reporting.runtime_comparison` for the
    tok/s / TTFT / energy-per-token table.
    """
    specs = runtime_sweep_specs(spec, runtimes, **legacy)
    return _run_all(specs, params, cache, observer)


# -- §3.3: power/energy across batch sizes ------------------------------------

def batch_quant_power_sweep_specs(
    spec: SpecOrModel,
    precisions: Iterable[Precision] = (Precision.FP16, Precision.INT8,
                                       Precision.INT4),
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    **legacy,
) -> Dict[Precision, List[ExperimentSpec]]:
    """The spec grid of :func:`batch_quant_power_sweep`, in sweep order."""
    if not isinstance(spec, ExperimentSpec):
        legacy.setdefault("precision", Precision.FP16)
    base = _base_spec(spec, "batch_quant_power_sweep_specs", legacy)
    return {
        prec: [replace(base, precision=prec, batch_size=bs)
               for bs in batch_sizes]
        for prec in precisions
    }


def batch_quant_power_sweep(
    spec: SpecOrModel,
    precisions: Iterable[Precision] = (Precision.FP16, Precision.INT8,
                                       Precision.INT4),
    batch_sizes: Sequence[int] = paperdata.BATCH_SIZES,
    params: Optional[EngineCostParams] = None,
    cache=None,
    observer=None,
    **legacy,
) -> Dict[Precision, List[RunResult]]:
    """§3.3 / Fig 4/10: power & energy across batch sizes per precision."""
    grid = batch_quant_power_sweep_specs(spec, precisions, batch_sizes,
                                         **legacy)
    return {prec: _run_all(specs, params, cache, observer)
            for prec, specs in grid.items()}
