"""Process-pool fan-out over independent experiment specs.

Every :class:`~repro.core.experiment.ExperimentSpec` is a closed world —
its own simulated device, allocator, and event loop — so a sweep is an
embarrassingly parallel map.  :func:`run_specs` executes one, either
serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
with three guarantees:

- **Deterministic ordering**: results come back in spec order
  regardless of worker scheduling (futures are slotted back into the
  position their chunk was submitted from).
- **Determinism per worker**: workers re-seed the stdlib and numpy
  global RNGs on startup; the simulator itself never consumes global
  RNG state (every stochastic component derives its stream from
  explicit seeds), so serial and parallel runs are bit-identical —
  asserted by ``tests/engine/test_fast_forward.py``.
- **Shared cache**: when a :class:`~repro.core.cache.ResultCache` is
  given, workers consult and fill the same on-disk store (atomic
  writes plus a single-flight claim protocol, so a cold key is
  computed exactly once fleet-wide).

Fan-out overhead is kept off the per-spec path: the shared immutables
(cost params, cache config, fast-forward flag) ship **once** through the
pool initializer instead of riding inside every task payload, specs are
dispatched in contiguous chunks so each task amortizes the pickle and
scheduling cost over several specs, and the pool itself persists across
calls (``run_full_study`` runs many sweep phases back to back — paying
worker startup once instead of per phase).
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import List, Optional, Sequence

from repro.core.experiment import ExperimentSpec
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult

#: Worker-process context installed by :func:`_worker_init` — the shared
#: immutables every chunk needs, shipped once per worker instead of once
#: per task.
_ctx: dict = {}


def _worker_init(params, cache_root, cache_version,
                 fast_forward) -> None:  # pragma: no cover - child process
    """Pin child RNG state and install the shared per-worker context."""
    import random

    random.seed(0)
    try:
        import numpy as np

        np.random.seed(0)
    except ImportError:
        pass
    from repro.core.cache import ResultCache

    _ctx["params"] = params
    _ctx["fast_forward"] = fast_forward
    # One persistent cache handle per worker: its CacheStats accumulate
    # across every chunk this worker executes, and _run_chunk ships the
    # per-chunk delta back via snapshot()/delta_since().
    _ctx["cache"] = (ResultCache(cache_root, version=cache_version)
                     if cache_root is not None else None)


def _run_chunk(specs):
    """Module-level worker target (must be picklable).

    Runs a contiguous chunk of specs and returns
    ``(results, stats_delta)`` where ``stats_delta`` is the
    :class:`~repro.core.cache.CacheStats` accumulated by this chunk
    (``None`` when no cache is configured), ready for
    :meth:`CacheStats.merge` in the parent.
    """
    from repro.core.experiment import run_experiment

    cache = _ctx.get("cache")
    before = cache.stats.snapshot() if cache is not None else None
    results = [run_experiment(s, params=_ctx.get("params"), cache=cache,
                              fast_forward=_ctx.get("fast_forward", True))
               for s in specs]
    delta = cache.stats.delta_since(before) if cache is not None else None
    return results, delta


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0/1 -> serial, -1 -> all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def chunk_specs(n_specs: int, n_jobs: int) -> List[slice]:
    """Contiguous, balanced slices assigning ``n_specs`` to pool tasks.

    The heuristic trades dispatch overhead against load balance: large
    sweeps get ~4 chunks per worker (stragglers rebalance), small ones
    fewer, and a sweep no bigger than the pool gets one spec per task.
    Chunk sizes differ by at most one, and concatenating the slices in
    order reproduces ``range(n_specs)`` exactly (spec order survives).
    """
    if n_specs <= 0:
        return []
    if n_specs >= n_jobs * 8:
        chunks_per_worker = 4
    elif n_specs >= n_jobs * 3:
        chunks_per_worker = 2
    else:
        chunks_per_worker = 1
    n_tasks = min(n_specs, n_jobs * chunks_per_worker)
    base, extra = divmod(n_specs, n_tasks)
    slices, start = [], 0
    for i in range(n_tasks):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


#: Persistent pool reused across run_specs calls (a full study is many
#: sweep phases; worker startup + initializer cost is paid once).  Keyed
#: by the worker configuration — a call with different shared immutables
#: tears it down and builds a fresh one.
_pool: Optional[ProcessPoolExecutor] = None
_pool_key: Optional[tuple] = None


def _get_pool(max_workers, initargs) -> ProcessPoolExecutor:
    global _pool, _pool_key
    # Pickle equality is the honest comparison for initargs: it is
    # exactly what the initializer would receive in the child.
    key = (max_workers, pickle.dumps(initargs))
    if _pool is not None and _pool_key == key:
        return _pool
    shutdown_pool()
    _pool = ProcessPoolExecutor(max_workers=max_workers,
                                initializer=_worker_init,
                                initargs=initargs)
    _pool_key = key
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (no-op when none is live)."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=True)
    _pool = None
    _pool_key = None


atexit.register(shutdown_pool)


def run_specs(
    specs: Sequence[ExperimentSpec],
    params: Optional[EngineCostParams] = None,
    jobs: Optional[int] = None,
    cache=None,
    fast_forward: bool = True,
    observer=None,
) -> List[RunResult]:
    """Run every spec; returns results in spec order.

    ``jobs <= 1`` runs serially in-process (and still uses ``cache``).
    ``jobs > 1`` fans out over a persistent process pool; ``jobs = -1``
    uses every core.  Serial and parallel runs return identical results
    in identical order.

    An enabled ``observer`` forces the serial path: span records live in
    the parent process and cannot be collected across a pool boundary.
    """
    from repro.core.experiment import run_experiment

    observing = observer is not None and observer.enabled
    n_jobs = 1 if observing else resolve_jobs(jobs)
    if n_jobs <= 1 or len(specs) <= 1:
        return [run_experiment(s, params=params, cache=cache,
                               fast_forward=fast_forward, observer=observer)
                for s in specs]

    cache_root = str(cache.root) if cache is not None else None
    cache_version = cache.version if cache is not None else None
    initargs = (params, cache_root, cache_version, fast_forward)
    max_workers = min(n_jobs, len(specs))
    slices = chunk_specs(len(specs), max_workers)
    pool = _get_pool(max_workers, initargs)

    futures = {pool.submit(_run_chunk, list(specs[sl])): i
               for i, sl in enumerate(slices)}
    chunk_results: List[Optional[list]] = [None] * len(slices)
    pending = set(futures)
    while pending:
        # Stream results back as chunks land (rather than map()'s
        # in-order drain) so parent-side stats fold overlaps the tail
        # of the computation; ordering is restored via the slot array.
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for fut in done:
            results, delta = fut.result()
            chunk_results[futures[fut]] = results
            if cache is not None and delta is not None:
                cache.stats.merge(delta)
    out: List[RunResult] = []
    for chunk in chunk_results:
        out.extend(chunk or [])
    return out
