"""Process-pool fan-out over independent experiment specs.

Every :class:`~repro.core.experiment.ExperimentSpec` is a closed world —
its own simulated device, allocator, and event loop — so a sweep is an
embarrassingly parallel map.  :func:`run_specs` executes one, either
serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
with three guarantees:

- **Deterministic ordering**: results come back in spec order
  regardless of worker scheduling (``Executor.map`` semantics).
- **Determinism per worker**: workers re-seed the stdlib and numpy
  global RNGs on startup; the simulator itself never consumes global
  RNG state (every stochastic component derives its stream from
  explicit seeds), so serial and parallel runs are bit-identical —
  asserted by ``tests/engine/test_fast_forward.py``.
- **Shared cache**: when a :class:`~repro.core.cache.ResultCache` is
  given, workers consult and fill the same on-disk store (atomic
  writes; no locking needed).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.core.experiment import ExperimentSpec
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult


def _worker_init() -> None:  # pragma: no cover - runs in child processes
    """Pin child-process global RNG state for reproducibility."""
    import random

    random.seed(0)
    try:
        import numpy as np

        np.random.seed(0)
    except ImportError:
        pass


def _run_one(args):
    """Module-level worker target (must be picklable).

    Returns ``(result, (hits, misses, puts))`` so the parent can fold
    worker-side cache activity back into its own
    :class:`~repro.core.cache.CacheStats`.
    """
    spec, params, cache_root, cache_version, fast_forward = args
    from repro.core.cache import ResultCache
    from repro.core.experiment import run_experiment

    cache = (ResultCache(cache_root, version=cache_version)
             if cache_root is not None else None)
    result = run_experiment(spec, params=params, cache=cache,
                            fast_forward=fast_forward)
    stats = ((cache.stats.hits, cache.stats.misses, cache.stats.puts)
             if cache is not None else (0, 0, 0))
    return result, stats


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: None/0/1 -> serial, -1 -> all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def run_specs(
    specs: Sequence[ExperimentSpec],
    params: Optional[EngineCostParams] = None,
    jobs: Optional[int] = None,
    cache=None,
    fast_forward: bool = True,
    observer=None,
) -> List[RunResult]:
    """Run every spec; returns results in spec order.

    ``jobs <= 1`` runs serially in-process (and still uses ``cache``).
    ``jobs > 1`` fans out over a process pool; ``jobs = -1`` uses every
    core.  Serial and parallel runs return identical results in
    identical order.

    An enabled ``observer`` forces the serial path: span records live in
    the parent process and cannot be collected across a pool boundary.
    """
    from repro.core.experiment import run_experiment

    observing = observer is not None and observer.enabled
    n_jobs = 1 if observing else resolve_jobs(jobs)
    if n_jobs <= 1 or len(specs) <= 1:
        return [run_experiment(s, params=params, cache=cache,
                               fast_forward=fast_forward, observer=observer)
                for s in specs]

    cache_root = str(cache.root) if cache is not None else None
    cache_version = cache.version if cache is not None else None
    payload = [(s, params, cache_root, cache_version, fast_forward)
               for s in specs]
    chunksize = max(1, len(specs) // (n_jobs * 4))
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(specs)),
                             initializer=_worker_init) as pool:
        pairs = list(pool.map(_run_one, payload, chunksize=chunksize))
    results = [r for r, _ in pairs]
    if cache is not None:
        # Fold worker-side cache activity back into the parent's stats.
        for _, (hits, misses, puts) in pairs:
            cache.stats.hits += hits
            cache.stats.misses += misses
            cache.stats.puts += puts
    return results
