"""The study harness — the paper's experiment matrix as code.

- :mod:`repro.core.experiment` — :class:`ExperimentSpec` and
  :func:`run_experiment` (one configuration, paper protocol: warm-up +
  5 measured runs, OOM-safe).
- :mod:`repro.core.sweeps` — the four §3 sweeps: batch size, sequence
  length, quantization, power modes (each with a ``*_sweep_specs``
  grid builder), plus the cross-backend ``runtime`` sweep.
- :mod:`repro.core.study` — run the entire paper and collect every
  table/figure's data in one call (``jobs=N`` for process fan-out).
- :mod:`repro.core.cache` — content-addressed on-disk result cache.
- :mod:`repro.core.parallel` — deterministic process-pool spec runner.
"""

from repro.core.cache import (
    COST_MODEL_VERSION,
    CacheStats,
    ResultCache,
    get_default_cache,
    set_default_cache,
    spec_fingerprint,
)
from repro.core.experiment import (ExperimentSpec, default_precision_for,
                                   run_experiment)
from repro.core.parallel import run_specs
from repro.core.sweeps import (
    batch_quant_power_sweep,
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    runtime_sweep,
    seq_len_sweep,
)
from repro.core.study import FullStudyResults, StudySpec, run_full_study

__all__ = [
    "COST_MODEL_VERSION",
    "CacheStats",
    "ExperimentSpec",
    "FullStudyResults",
    "ResultCache",
    "StudySpec",
    "batch_quant_power_sweep",
    "batch_size_sweep",
    "default_precision_for",
    "get_default_cache",
    "power_mode_sweep",
    "quantization_sweep",
    "run_experiment",
    "run_full_study",
    "run_specs",
    "runtime_sweep",
    "seq_len_sweep",
    "set_default_cache",
    "spec_fingerprint",
]
