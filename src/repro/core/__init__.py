"""The study harness — the paper's experiment matrix as code.

- :mod:`repro.core.experiment` — :class:`ExperimentSpec` and
  :func:`run_experiment` (one configuration, paper protocol: warm-up +
  5 measured runs, OOM-safe).
- :mod:`repro.core.sweeps` — the four §3 sweeps: batch size, sequence
  length, quantization, power modes.
- :mod:`repro.core.study` — run the entire paper and collect every
  table/figure's data in one call.
"""

from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.sweeps import (
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    seq_len_sweep,
)
from repro.core.study import FullStudyResults, run_full_study

__all__ = [
    "ExperimentSpec",
    "FullStudyResults",
    "batch_size_sweep",
    "power_mode_sweep",
    "quantization_sweep",
    "run_experiment",
    "run_full_study",
    "seq_len_sweep",
]
