"""Run the entire paper in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.calibration import paperdata
from repro.core.sweeps import (
    batch_quant_power_sweep,
    batch_size_sweep,
    power_mode_sweep,
    quantization_sweep,
    seq_len_sweep,
)
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult
from repro.hardware.device import get_device
from repro.models.footprint import footprint_table
from repro.models.zoo import PAPER_MODELS
from repro.perplexity.analytical import perplexity_table
from repro.quant.dtypes import Precision


@dataclass
class FullStudyResults:
    """Every table/figure's data, keyed the way the benches consume it."""

    table1_footprints: List[dict] = field(default_factory=list)
    table3_perplexity: List[dict] = field(default_factory=list)
    batch_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    seqlen_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    quant_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_mode_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_energy_sweeps: Dict[str, Dict[Precision, List[RunResult]]] = field(
        default_factory=dict
    )


def run_full_study(
    models: Optional[List[str]] = None,
    n_runs: int = 5,
    params: Optional[EngineCostParams] = None,
    include_power_energy: bool = True,
    progress: bool = False,
) -> FullStudyResults:
    """Reproduce every experiment of the paper on the simulated board.

    ``n_runs`` follows the paper's protocol (5); lower it for quick
    smoke runs.  With the default model set this covers Tables 1 and 3
    analytically and runs ~290 simulated configurations for the sweeps.
    """
    models = models or list(PAPER_MODELS)
    results = FullStudyResults()

    results.table1_footprints = footprint_table(
        [PAPER_MODELS[m] for m in models if m in PAPER_MODELS]
    )
    results.table3_perplexity = perplexity_table(get_device("jetson-orin-agx-64gb"))

    def log(msg: str) -> None:
        if progress:  # pragma: no cover - cosmetic
            print(msg, flush=True)

    for model in models:
        log(f"[study] batch-size sweep: {model}")
        results.batch_sweeps[model] = {
            wl: batch_size_sweep(model, workload=wl, n_runs=n_runs, params=params)
            for wl in ("wikitext2", "longbench")
        }
        log(f"[study] sequence-length sweep: {model}")
        results.seqlen_sweeps[model] = {
            wl: seq_len_sweep(model, workload=wl, n_runs=n_runs, params=params)
            for wl in ("wikitext2", "longbench")
        }
        log(f"[study] quantization sweep: {model}")
        results.quant_sweeps[model] = quantization_sweep(
            model, n_runs=n_runs, params=params
        )
        log(f"[study] power-mode sweep: {model}")
        results.power_mode_sweeps[model] = power_mode_sweep(
            model, n_runs=n_runs, params=params
        )
        if include_power_energy:
            log(f"[study] power/energy x batch x precision: {model}")
            results.power_energy_sweeps[model] = batch_quant_power_sweep(
                model, n_runs=n_runs, params=params
            )
    return results
