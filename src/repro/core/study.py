"""Run the entire paper in one call."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import ExperimentSpec
from repro.errors import ExperimentError
from repro.core.parallel import run_specs
from repro.core.sweeps import (
    batch_quant_power_sweep_specs,
    batch_size_sweep_specs,
    power_mode_sweep_specs,
    quantization_sweep_specs,
    seq_len_sweep_specs,
)
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult
from repro.hardware.device import get_device
from repro.models.footprint import footprint_table
from repro.models.zoo import PAPER_MODELS
from repro.perplexity.analytical import perplexity_table
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class StudySpec:
    """What to reproduce: the study-level counterpart of ExperimentSpec.

    ``models=None`` means every paper model; ``n_runs`` follows the
    paper's measurement protocol (5) — lower it for smoke runs.
    """

    models: Optional[Tuple[str, ...]] = None
    n_runs: int = 5
    include_power_energy: bool = True
    fast_forward: bool = True
    #: Inference-runtime backend every planned experiment runs on.
    runtime: str = "hf-transformers"

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ExperimentError("study needs n_runs >= 1")
        from repro.backends import get_backend

        get_backend(self.runtime)  # typed ConfigError on unknown names

    def __setstate__(self, state: dict) -> None:
        state.setdefault("runtime", "hf-transformers")
        self.__dict__.update(state)

    @classmethod
    def of(cls, models: Optional[Sequence[str]] = None,
           **overrides) -> "StudySpec":
        """Build a spec, normalising any model list to a tuple."""
        if models is not None:
            overrides["models"] = tuple(models)
        return cls(**overrides)


@dataclass
class FullStudyResults:
    """Every table/figure's data, keyed the way the benches consume it."""

    table1_footprints: List[dict] = field(default_factory=list)
    table3_perplexity: List[dict] = field(default_factory=list)
    batch_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    seqlen_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    quant_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_mode_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_energy_sweeps: Dict[str, Dict[Precision, List[RunResult]]] = field(
        default_factory=dict
    )


#: (slot, model, sub-key) — addresses where one spec's result lands in
#: :class:`FullStudyResults`.  sub-key is a workload name, a Precision,
#: or None depending on the slot.
_Slot = Tuple[str, str, object]


def _build_plan(
    models: List[str], n_runs: int, include_power_energy: bool,
    runtime: str = "hf-transformers",
) -> List[Tuple[_Slot, ExperimentSpec]]:
    """Flatten every sweep of every model into one ordered spec list.

    The order is exactly the order the pre-fan-out serial loop issued
    experiments in, so a serial replay of the plan touches configurations
    in the historical order (and progress output stays comparable).
    """
    plan: List[Tuple[_Slot, ExperimentSpec]] = []
    for model in models:
        for wl in ("wikitext2", "longbench"):
            for spec in batch_size_sweep_specs(
                    ExperimentSpec.for_model(model, workload=wl,
                                             n_runs=n_runs,
                                             runtime=runtime)):
                plan.append((("batch", model, wl), spec))
        for wl in ("wikitext2", "longbench"):
            for spec in seq_len_sweep_specs(
                    ExperimentSpec.for_model(model, workload=wl,
                                             n_runs=n_runs,
                                             runtime=runtime)):
                plan.append((("seqlen", model, wl), spec))
        for spec in quantization_sweep_specs(
                ExperimentSpec.for_model(model, n_runs=n_runs,
                                         runtime=runtime)):
            plan.append((("quant", model, None), spec))
        for spec in power_mode_sweep_specs(
                ExperimentSpec.for_model(model, n_runs=n_runs,
                                         runtime=runtime)):
            plan.append((("power_mode", model, None), spec))
        if include_power_energy:
            grid = batch_quant_power_sweep_specs(
                ExperimentSpec.for_model(model, n_runs=n_runs,
                                         runtime=runtime))
            for prec, specs in grid.items():
                for spec in specs:
                    plan.append((("power_energy", model, prec), spec))
    return plan


#: run_full_study kwargs that configure *what* runs (StudySpec fields,
#: plus the legacy spelling ``models`` as a list).
_STUDY_SPEC_KEYS = ("models", "n_runs", "include_power_energy",
                    "fast_forward", "runtime")


def run_full_study(
    spec: Optional[StudySpec] = None,
    params: Optional[EngineCostParams] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
    cache=None,
    observer=None,
    **legacy,
) -> FullStudyResults:
    """Reproduce every experiment of the paper on the simulated board.

    ``spec`` (a :class:`StudySpec`) says *what* to run; the remaining
    arguments say *how* (cost params, process fan-out, cache, progress,
    observability).  ``run_full_study()`` bare runs the full paper.

    ``jobs`` fans the configurations out over a process pool
    (``-1`` = all cores); results are identical to a serial run, in the
    same order.  ``cache`` (a :class:`~repro.core.cache.ResultCache`)
    skips configurations whose results are already on disk.  An enabled
    ``observer`` (:class:`repro.obs.Observer`) collects spans for every
    configuration — and forces the serial, uncached path, since neither
    a worker process nor a cache hit can produce span records.

    The pre-spec keyword form (``run_full_study(models=[...], n_runs=1)``)
    still works but emits a :class:`DeprecationWarning`.
    """
    if legacy:
        unknown = set(legacy) - set(_STUDY_SPEC_KEYS)
        if unknown:
            raise TypeError(
                f"run_full_study() got unexpected keyword arguments "
                f"{sorted(unknown)}")
        if spec is not None:
            raise ExperimentError(
                "run_full_study: pass either a StudySpec or legacy "
                "keyword arguments, not both")
        warnings.warn(
            "run_full_study(models=..., n_runs=...) keywords are "
            "deprecated; pass a StudySpec (StudySpec.of(models, ...))",
            DeprecationWarning, stacklevel=2,
        )
        spec = StudySpec.of(**legacy)
    if spec is None:
        spec = StudySpec()
    models = list(spec.models) if spec.models is not None else list(PAPER_MODELS)
    n_runs = spec.n_runs
    include_power_energy = spec.include_power_energy
    fast_forward = spec.fast_forward
    results = FullStudyResults()

    results.table1_footprints = footprint_table(
        [PAPER_MODELS[m] for m in models if m in PAPER_MODELS]
    )
    results.table3_perplexity = perplexity_table(get_device("jetson-orin-agx-64gb"))

    def log(msg: str) -> None:
        if progress:  # pragma: no cover - cosmetic
            print(msg, flush=True)

    plan = _build_plan(models, n_runs, include_power_energy,
                       runtime=spec.runtime)
    log(f"[study] {len(plan)} configurations across {len(models)} model(s), "
        f"jobs={jobs or 1}")
    runs = run_specs([s for _, s in plan], params=params, jobs=jobs,
                     cache=cache, fast_forward=fast_forward,
                     observer=observer)

    # Reassemble in plan order: append order within each slot list equals
    # the order the specs were planned, which equals serial sweep order.
    for (slot, model, sub), result in zip((s for s, _ in plan), runs):
        if slot == "batch":
            results.batch_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
        elif slot == "seqlen":
            results.seqlen_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
        elif slot == "quant":
            results.quant_sweeps.setdefault(model, []).append(result)
        elif slot == "power_mode":
            results.power_mode_sweeps.setdefault(model, []).append(result)
        elif slot == "power_energy":
            results.power_energy_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
    if cache is not None:
        log(f"[study] cache: {cache.stats.as_row()}")
    return results
