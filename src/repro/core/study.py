"""Run the entire paper in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.experiment import ExperimentSpec
from repro.core.parallel import run_specs
from repro.core.sweeps import (
    batch_quant_power_sweep_specs,
    batch_size_sweep_specs,
    power_mode_sweep_specs,
    quantization_sweep_specs,
    seq_len_sweep_specs,
)
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult
from repro.hardware.device import get_device
from repro.models.footprint import footprint_table
from repro.models.zoo import PAPER_MODELS
from repro.perplexity.analytical import perplexity_table
from repro.quant.dtypes import Precision


@dataclass
class FullStudyResults:
    """Every table/figure's data, keyed the way the benches consume it."""

    table1_footprints: List[dict] = field(default_factory=list)
    table3_perplexity: List[dict] = field(default_factory=list)
    batch_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    seqlen_sweeps: Dict[str, Dict[str, List[RunResult]]] = field(default_factory=dict)
    quant_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_mode_sweeps: Dict[str, List[RunResult]] = field(default_factory=dict)
    power_energy_sweeps: Dict[str, Dict[Precision, List[RunResult]]] = field(
        default_factory=dict
    )


#: (slot, model, sub-key) — addresses where one spec's result lands in
#: :class:`FullStudyResults`.  sub-key is a workload name, a Precision,
#: or None depending on the slot.
_Slot = Tuple[str, str, object]


def _build_plan(
    models: List[str], n_runs: int, include_power_energy: bool
) -> List[Tuple[_Slot, ExperimentSpec]]:
    """Flatten every sweep of every model into one ordered spec list.

    The order is exactly the order the pre-fan-out serial loop issued
    experiments in, so a serial replay of the plan touches configurations
    in the historical order (and progress output stays comparable).
    """
    plan: List[Tuple[_Slot, ExperimentSpec]] = []
    for model in models:
        for wl in ("wikitext2", "longbench"):
            for spec in batch_size_sweep_specs(model, workload=wl, n_runs=n_runs):
                plan.append((("batch", model, wl), spec))
        for wl in ("wikitext2", "longbench"):
            for spec in seq_len_sweep_specs(model, workload=wl, n_runs=n_runs):
                plan.append((("seqlen", model, wl), spec))
        for spec in quantization_sweep_specs(model, n_runs=n_runs):
            plan.append((("quant", model, None), spec))
        for spec in power_mode_sweep_specs(model, n_runs=n_runs):
            plan.append((("power_mode", model, None), spec))
        if include_power_energy:
            grid = batch_quant_power_sweep_specs(model, n_runs=n_runs)
            for prec, specs in grid.items():
                for spec in specs:
                    plan.append((("power_energy", model, prec), spec))
    return plan


def run_full_study(
    models: Optional[List[str]] = None,
    n_runs: int = 5,
    params: Optional[EngineCostParams] = None,
    include_power_energy: bool = True,
    progress: bool = False,
    jobs: Optional[int] = None,
    cache=None,
    fast_forward: bool = True,
) -> FullStudyResults:
    """Reproduce every experiment of the paper on the simulated board.

    ``n_runs`` follows the paper's protocol (5); lower it for quick
    smoke runs.  With the default model set this covers Tables 1 and 3
    analytically and runs ~290 simulated configurations for the sweeps.

    ``jobs`` fans the configurations out over a process pool
    (``-1`` = all cores); results are identical to a serial run, in the
    same order.  ``cache`` (a :class:`~repro.core.cache.ResultCache`)
    skips configurations whose results are already on disk.
    """
    models = models or list(PAPER_MODELS)
    results = FullStudyResults()

    results.table1_footprints = footprint_table(
        [PAPER_MODELS[m] for m in models if m in PAPER_MODELS]
    )
    results.table3_perplexity = perplexity_table(get_device("jetson-orin-agx-64gb"))

    def log(msg: str) -> None:
        if progress:  # pragma: no cover - cosmetic
            print(msg, flush=True)

    plan = _build_plan(models, n_runs, include_power_energy)
    log(f"[study] {len(plan)} configurations across {len(models)} model(s), "
        f"jobs={jobs or 1}")
    runs = run_specs([spec for _, spec in plan], params=params, jobs=jobs,
                     cache=cache, fast_forward=fast_forward)

    # Reassemble in plan order: append order within each slot list equals
    # the order the specs were planned, which equals serial sweep order.
    for (slot, model, sub), result in zip((s for s, _ in plan), runs):
        if slot == "batch":
            results.batch_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
        elif slot == "seqlen":
            results.seqlen_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
        elif slot == "quant":
            results.quant_sweeps.setdefault(model, []).append(result)
        elif slot == "power_mode":
            results.power_mode_sweeps.setdefault(model, []).append(result)
        elif slot == "power_energy":
            results.power_energy_sweeps.setdefault(model, {}).setdefault(sub, []).append(result)
    if cache is not None:
        log(f"[study] cache: {cache.stats.as_row()}")
    return results
