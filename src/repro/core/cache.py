"""Content-addressed on-disk cache for experiment results.

The study harness replays the same ~290 configurations every time any
bench or CLI invocation asks for them.  The simulator is deterministic:
a :class:`~repro.core.experiment.ExperimentSpec` plus the cost-model
constants fully determine the :class:`~repro.engine.runtime.RunResult`.
This module exploits that by addressing results with a SHA-256 digest of

- every field of the spec (model, precision, device, batch, generation
  split, power mode, workload, run protocol, KV mode, runtime),
- every calibration constant in the effective
  :class:`~repro.engine.kernels.EngineCostParams` (including the quant
  kernel model),
- the selected runtime backend's configuration payload plus
  :data:`~repro.backends.registry.BACKEND_MODEL_VERSION`, and
- :data:`COST_MODEL_VERSION`, a manually-bumped tag for semantic changes
  that the constants alone cannot see.

Invalidation is therefore automatic: change a calibration constant, pass
different params, or bump the version tag, and every affected key
misses.  There is deliberately no TTL — entries are immutable facts
about one (spec, model-version) point.

Use :func:`set_default_cache` (or the ``REPRO_CACHE_DIR`` environment
variable) to make :func:`~repro.core.experiment.run_experiment` consult
a cache without plumbing it through every call site.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.backends.registry import BACKEND_MODEL_VERSION
from repro.engine.kernels import EngineCostParams
from repro.engine.runtime import RunResult

#: Bump when the *semantics* of the cost/power/memory model change in a
#: way the calibration constants do not capture (e.g. a new roofline
#: term).  Every bump invalidates all previously cached results.
COST_MODEL_VERSION = "2026.08-runtime-axis-1"

#: Environment variable that, when set, enables the process-default
#: cache at the given directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-edge-llm"


def _canonical_params(params: EngineCostParams) -> dict:
    """EngineCostParams -> JSON-serialisable dict with stable keys."""
    d = dataclasses.asdict(params)
    quant = d.get("quant") or {}
    gpu_util = quant.get("gpu_util") or {}
    # Precision-enum keys -> their string values, sorted by json.dumps.
    quant["gpu_util"] = {getattr(k, "value", str(k)): v
                         for k, v in gpu_util.items()}
    d["quant"] = quant
    return d


def spec_fingerprint(spec, params: EngineCostParams,
                     version: str = COST_MODEL_VERSION) -> str:
    """SHA-256 content address of one (spec, constants, version) point."""
    from repro.core.experiment import backend_for_spec
    from repro.kvtier.policy import KV_TIER_VERSION

    payload = {
        "spec": {
            "model": spec.model,
            "precision": spec.precision.value,
            "device": spec.device,
            "batch_size": spec.batch_size,
            "input_tokens": spec.gen.input_tokens,
            "output_tokens": spec.gen.output_tokens,
            "power_mode": spec.power_mode,
            "workload": spec.workload,
            "n_runs": spec.n_runs,
            "warmup": spec.warmup,
            "kv_mode": spec.kv_mode,
            "runtime": getattr(spec, "runtime", "hf-transformers"),
        },
        "params": _canonical_params(params),
        "backend": backend_for_spec(spec).config_payload(),
        "backend_model_version": BACKEND_MODEL_VERSION,
        "cost_model_version": version,
        # KV lifecycle semantics (preemption, swap, prefix sharing) sit
        # under every serving result; bumping kvtier invalidates too.
        "kv_tier_version": KV_TIER_VERSION,
    }
    return payload_fingerprint(payload)


def payload_fingerprint(payload: dict) -> str:
    """SHA-256 of a canonical-JSON payload (shared key machinery).

    Everything content-addressed in this codebase — experiment results
    here, fault schedules in :mod:`repro.faults.schedule` — funnels
    through this one canonicalisation (sorted keys, no whitespace,
    ``str()`` for non-JSON leaves) so keys are comparable and collision
    semantics are uniform.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Misses resolved by waiting for another worker's in-flight compute
    #: (the single-flight claim protocol) instead of computing locally.
    dedup_waits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another stats delta into this one (in place).

        The one aggregation protocol: worker processes ship their
        per-chunk deltas back and :func:`~repro.core.parallel.run_specs`
        and the benches fold them here — ``hit_rate``/``lookups`` stay
        consistent because they derive from the folded counters.
        """
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.dedup_waits += other.dedup_waits
        return self

    def snapshot(self) -> "CacheStats":
        """Copy (for before/after deltas around a chunk of work)."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          puts=self.puts, dedup_waits=self.dedup_waits)

    def delta_since(self, before: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``before`` (a :meth:`snapshot`)."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            puts=self.puts - before.puts,
            dedup_waits=self.dedup_waits - before.dedup_waits,
        )

    def as_row(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts,
                "dedup_waits": self.dedup_waits,
                "hit_rate": round(self.hit_rate, 3)}


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM still means alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except (OverflowError, ValueError, OSError):
        return False
    return True


def _claim_is_stale(claim: Path, claim_stale_s: float) -> bool:
    """A claim is stale when its owner died or it outlived the deadline.

    Racy reads are fine: a claim that vanishes mid-probe is simply not
    stale (its owner finished), and tearing down a just-replaced claim
    at worst duplicates one compute against an atomic ``put``.
    """
    try:
        st = claim.stat()
    except OSError:
        return False
    if time.time() - st.st_mtime > claim_stale_s:
        return True
    try:
        pid = int(claim.read_text().strip() or "0")
    except (OSError, ValueError):
        # Claimed but pid not yet written (or unreadable): fresh mtime
        # says give the owner the benefit of the doubt.
        return False
    return bool(pid) and not _pid_alive(pid)


class ResultCache:
    """Content-addressed store of :class:`RunResult` pickles.

    Layout: ``<root>/<aa>/<sha256>.pkl`` (two-level fan-out keeps
    directories small for study-scale grids).  Writes are atomic
    (temp file + rename), so concurrent workers — the parallel study
    fan-out — can share one cache directory without locking: the worst
    case is two workers computing the same entry and one rename winning.
    """

    def __init__(self, root: Optional[Path | str] = None,
                 version: str = COST_MODEL_VERSION):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version
        self.stats = CacheStats()

    # -- keys --------------------------------------------------------------
    def key_for(self, spec, params: EngineCostParams) -> str:
        return spec_fingerprint(spec, params, self.version)

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- access ------------------------------------------------------------
    def _load(self, path: Path) -> Optional[RunResult]:
        """Read one entry; None when missing, torn, or incompatible."""
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def _store(self, path: Path, result: RunResult) -> None:
        """Atomic write (temp file + rename; last writer wins)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1

    def get(self, spec, params: EngineCostParams) -> Optional[RunResult]:
        """Cached result for (spec, params), or None on miss."""
        result = self._load(self._path_for(self.key_for(spec, params)))
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, spec, params: EngineCostParams, result: RunResult) -> None:
        """Store one result (atomic; last writer wins)."""
        self._store(self._path_for(self.key_for(spec, params)), result)

    # -- single-flight ------------------------------------------------------
    def get_or_compute(self, spec, params: EngineCostParams, compute,
                       wait_timeout_s: float = 60.0,
                       claim_stale_s: float = 300.0) -> RunResult:
        """Return the cached result, computing it at most once fleet-wide.

        Under parallel cold runs, N workers hitting the same key would
        all compute it.  Instead, a miss first claims the key by
        creating ``<key>.claim`` with ``O_CREAT | O_EXCL`` (atomic on
        every POSIX filesystem): the winner runs ``compute()``, stores
        the result, and removes the claim; losers poll for the result
        file and count a ``dedup_waits`` when it lands.  Claims are
        advisory and crash-safe — a claim whose owner pid is dead (or
        older than ``claim_stale_s``) is torn down and taken over, and a
        waiter that exhausts ``wait_timeout_s`` computes anyway (the
        atomic ``put`` makes duplicated computes harmless, so this can
        only waste work, never corrupt the cache).
        """
        key = self.key_for(spec, params)
        path = self._path_for(key)
        result = self._load(path)
        if result is not None:
            self.stats.hits += 1
            return result
        self.stats.misses += 1

        claim = path.parent / f"{key}.claim"
        deadline = time.monotonic() + wait_timeout_s
        poll_s = 0.001
        while True:
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                # We own the claim: compute exactly once, publish, release.
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(str(os.getpid()))
                    result = self._load(path)
                    if result is not None:
                        # The previous owner published between our miss
                        # and our claim.
                        return result
                    result = compute()
                    self._store(path, result)
                    return result
                finally:
                    try:
                        os.unlink(claim)
                    except OSError:
                        pass
            # Someone else is computing this key: wait for their result.
            time.sleep(poll_s)
            poll_s = min(poll_s * 2, 0.05)
            result = self._load(path)
            if result is not None:
                self.stats.dedup_waits += 1
                return result
            if _claim_is_stale(claim, claim_stale_s):
                try:
                    os.unlink(claim)
                except OSError:
                    pass
                continue  # retry the claim immediately
            if time.monotonic() >= deadline:
                # Give up on the owner (wedged, not dead): duplicate the
                # compute rather than stall the whole sweep.
                result = compute()
                self._store(path, result)
                return result

    # -- maintenance -------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl")) if self.root.exists() else 0

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        if self.root.exists():
            for p in self.root.glob("*/*.pkl"):
                try:
                    p.unlink()
                    n += 1
                except OSError:
                    pass
        return n


# -- process-default cache --------------------------------------------------

_default_cache: Optional[ResultCache] = None
_default_resolved = False


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or, with None, remove) the process-default cache."""
    global _default_cache, _default_resolved
    _default_cache = cache
    _default_resolved = True


def get_default_cache() -> Optional[ResultCache]:
    """The process-default cache.

    Resolution order: whatever :func:`set_default_cache` installed;
    otherwise a cache at ``$REPRO_CACHE_DIR`` if that variable is set;
    otherwise None (caching off).
    """
    global _default_cache, _default_resolved
    if not _default_resolved:
        if os.environ.get(CACHE_DIR_ENV):
            _default_cache = ResultCache()
        _default_resolved = True
    return _default_cache
