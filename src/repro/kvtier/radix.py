"""Shared-prefix radix cache over token-ID prompts.

The millions-of-users scenario: every request opens with the same
system prompt, so the KV blocks covering that prefix are identical
across requests and computing them once is pure win.  This module
models that sharing SGLang-style — a radix tree keyed on token IDs,
block-granular accounting, refcounted pinning while any request reads a
path, copy-on-write where a new request diverges mid-block, and LRU
reclamation of unreferenced nodes when the pool needs blocks back.

The cache is storage-agnostic: it counts blocks and bytes, and callers
(cluster nodes, the paged backend) decide what a block costs.  A
``match`` is measured in *tokens*; only whole blocks are reusable, so
the benefit a caller should apply is ``block_hit_tokens``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class RadixStats:
    """Lifetime counters for one radix cache."""

    lookups: int = 0
    #: Lookups that reused at least one full block.
    hits: int = 0
    hit_tokens: int = 0
    inserted_tokens: int = 0
    #: Edge splits at a non-block-aligned point: the divergence block is
    #: duplicated so the shared parent stays immutable.
    cow_copies: int = 0
    cow_bytes: int = 0
    evicted_blocks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Node:
    """One radix-tree edge: a run of tokens starting at ``start``."""

    __slots__ = ("tokens", "start", "children", "parent", "refs", "last_hit")

    def __init__(self, tokens: Tuple[int, ...], start: int,
                 parent: "Optional[_Node]"):
        self.tokens = tokens
        self.start = start
        self.children: Dict[int, _Node] = {}
        self.parent = parent
        self.refs = 0
        self.last_hit = 0.0

    def full_blocks(self, block_tokens: int) -> int:
        """Whole KV blocks this edge completes (block-boundary aligned)."""
        end = self.start + len(self.tokens)
        return end // block_tokens - self.start // block_tokens


class RadixPrefixCache:
    """Radix tree sharing block-granular KV across common prompt prefixes."""

    def __init__(self, block_tokens: int, block_bytes: int):
        if block_tokens <= 0 or block_bytes <= 0:
            raise ConfigError("block_tokens and block_bytes must be positive")
        self.block_tokens = block_tokens
        self.block_bytes = block_bytes
        self._root = _Node((), 0, None)
        self._root.refs = 1  # never evicted
        #: owner -> deepest pinned node (the whole path holds one ref each).
        self._pins: Dict[int, _Node] = {}
        self.stats = RadixStats()

    # -- accounting -----------------------------------------------------------
    @property
    def resident_blocks(self) -> int:
        return sum(n.full_blocks(self.block_tokens)
                   for n in self._iter_nodes())
        # Partial trailing blocks belong to the owning request's own
        # allocation, not the shared pool.

    @property
    def resident_bytes(self) -> int:
        return self.resident_blocks * self.block_bytes

    def _iter_nodes(self) -> List[_Node]:
        out: List[_Node] = []
        stack = [self._root]
        while stack:
            n = stack.pop()
            if n is not self._root:
                out.append(n)
            stack.extend(n.children.values())
        return out

    # -- lookup / insert ------------------------------------------------------
    def match(self, tokens: Sequence[int], now: float) -> int:
        """Longest cached prefix of ``tokens``, in tokens (not pinned)."""
        self.stats.lookups += 1
        node, matched = self._walk(tokens)
        while node is not None and node is not self._root:
            node.last_hit = now
            node = node.parent
        block_hit = self.block_hit_tokens(matched)
        if block_hit:
            self.stats.hits += 1
            self.stats.hit_tokens += block_hit
        return matched

    def peek(self, tokens: Sequence[int]) -> int:
        """Longest cached prefix in tokens, with **no side effects**.

        Unlike :meth:`match` this neither counts a lookup nor touches
        LRU timestamps — routers probing every node's cache to place a
        request must not perturb the caches they inspect (or the stats
        the reports are built from).
        """
        _, matched = self._walk(tuple(tokens))
        return matched

    def block_hit_tokens(self, matched_tokens: int) -> int:
        """The reusable (whole-block) part of a token match."""
        return (matched_tokens // self.block_tokens) * self.block_tokens

    def insert(self, owner: int, tokens: Sequence[int], now: float) -> int:
        """Register ``owner``'s prompt, sharing any cached prefix.

        Returns the whole-block token count served from cache.  The
        owner pins its path until :meth:`release`; pinned nodes are
        never reclaimed.
        """
        if owner in self._pins:
            raise ConfigError(f"owner {owner} already holds a radix pin")
        toks = tuple(tokens)
        node, matched = self._walk(toks, split=True)
        self.stats.lookups += 1
        block_hit = self.block_hit_tokens(matched)
        if block_hit:
            self.stats.hits += 1
            self.stats.hit_tokens += block_hit
        if matched < len(toks):
            child = _Node(toks[matched:], matched, node)
            node.children[child.tokens[0]] = child
            self.stats.inserted_tokens += len(child.tokens)
            node = child
        node.last_hit = now
        self._pin(owner, node)
        return block_hit

    def release(self, owner: int) -> None:
        """Drop ``owner``'s pin; its path becomes reclaimable."""
        node = self._pins.pop(owner, None)
        while node is not None and node is not self._root:
            node.refs -= 1
            node = node.parent

    def holds(self, owner: int) -> bool:
        return owner in self._pins

    def reclaim(self, target_bytes: int, now: float) -> int:
        """Evict unreferenced leaves, LRU by last hit, until at least
        ``target_bytes`` of whole-block KV is freed (or nothing
        evictable remains).  Returns the bytes actually freed."""
        freed = 0
        while freed < target_bytes:
            victims = [n for n in self._iter_nodes()
                       if n.refs == 0 and not n.children]
            if not victims:
                break
            victim = min(victims, key=lambda n: (n.last_hit, n.start))
            del victim.parent.children[victim.tokens[0]]
            blocks = victim.full_blocks(self.block_tokens)
            freed += blocks * self.block_bytes
            self.stats.evicted_blocks += blocks
        return freed

    def clear(self) -> None:
        """Drop the whole tree (node crash: device KV is gone)."""
        self._root.children.clear()
        self._pins.clear()

    # -- internals ------------------------------------------------------------
    def _pin(self, owner: int, node: _Node) -> None:
        self._pins[owner] = node
        while node is not None and node is not self._root:
            node.refs += 1
            node = node.parent

    def _walk(self, tokens: Tuple[int, ...], split: bool = False):
        """Descend as far as ``tokens`` match; returns (node, matched).

        With ``split=True`` a partial edge match splits the edge so the
        returned node ends exactly at the divergence point; a split at
        a non-block-aligned offset is a copy-on-write of the divergence
        block (the sharer gets its own copy of that block).
        """
        node, matched = self._root, 0
        while matched < len(tokens):
            child = node.children.get(tokens[matched])
            if child is None:
                return node, matched
            run = 0
            limit = min(len(child.tokens), len(tokens) - matched)
            while run < limit and child.tokens[run] == tokens[matched + run]:
                run += 1
            if run == len(child.tokens):
                node, matched = child, matched + run
                continue
            # Partial edge match: those ``run`` tokens are cached too.
            matched += run
            if split:
                return self._split(child, run), matched
            return node, matched
        return node, matched

    def _split(self, node: _Node, at: int) -> _Node:
        """Split ``node``'s edge at token offset ``at`` (0 < at < len);
        returns the new head node ending exactly at the split point."""
        head = _Node(node.tokens[:at], node.start, node.parent)
        head.refs = node.refs
        head.last_hit = node.last_hit
        node.parent.children[head.tokens[0]] = head
        node.parent = head
        node.tokens = node.tokens[at:]
        node.start = head.start + at
        head.children[node.tokens[0]] = node
        if node.start % self.block_tokens:
            # Divergence mid-block: the tail's first partial block must
            # be copied so the shared head's block stays immutable.
            self.stats.cow_copies += 1
            self.stats.cow_bytes += self.block_bytes
        return head
