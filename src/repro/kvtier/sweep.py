"""The ``repro kvtier`` sweep: policy × trigger × prefix-share-ratio.

One spec describes a memory-pressured single-node serving scenario; the
sweep replays the *same* deterministic workload under every combination
of KV lifecycle policy, trigger threshold and shared-prefix ratio, so
the rows differ only in what the policy axis changed.  Everything is
content-addressed (:func:`KvTierSpec.cache_key` folds
:data:`~repro.kvtier.policy.KV_TIER_VERSION`) and bit-reproducible —
the CI smoke job runs the sweep twice and diffs the CSV byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.cache import payload_fingerprint
from repro.errors import ConfigError
from repro.kvtier.policy import KV_TIER_VERSION, get_kv_policy


@dataclass(frozen=True)
class KvTierSpec:
    """One kvtier sweep configuration (frozen, content-addressable)."""

    device: str = "jetson-orin-agx-64gb"
    model: str = "llama3.1-8b"
    precision: str = "fp16"
    runtime: str = "paged"
    power_mode: str = "MAXN"
    rate_per_s: float = 4.0
    n_requests: int = 40
    prefix_tokens: int = 128
    unique_tokens: int = 32
    output_tokens: int = 64
    max_batch: int = 8
    #: Fraction of the node's natural KV budget kept.  The default
    #: workload barely dents a 64 GB board's natural budget, so the
    #: default keeps ~0.5% of it — enough pressure that the preemption
    #: path the sweep exists to compare actually fires.
    kv_budget_frac: float = 0.005
    policies: Tuple[str, ...] = ("sacrifice", "swap-lifo", "swap-lru")
    triggers: Tuple[float, ...] = (1.0, 0.85)
    share_ratios: Tuple[float, ...] = (0.0, 0.5)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.policies or not self.triggers or not self.share_ratios:
            raise ConfigError("sweep axes must be non-empty")
        if not 0.0 < self.kv_budget_frac <= 1.0:
            raise ConfigError("kv_budget_frac must be in (0, 1]")
        for p in self.policies:
            get_kv_policy(p)  # typed error on unknown names
        for t in self.triggers:
            if not 0.0 < t <= 1.0:
                raise ConfigError("triggers must be in (0, 1]")
        for s in self.share_ratios:
            if not 0.0 <= s <= 1.0:
                raise ConfigError("share_ratios must be in [0, 1]")

    def cache_key(self) -> str:
        """Content address folding the kvtier semantics version."""
        payload = dataclasses.asdict(self)
        payload["kv_tier_version"] = KV_TIER_VERSION
        return payload_fingerprint(payload)


@dataclass
class KvTierReport:
    """All sweep rows for one spec (deterministic row order)."""

    spec: KvTierSpec
    rows: List[Dict] = dataclasses.field(default_factory=list)

    def table(self) -> str:
        """Aligned text table of the rows (stable formatting)."""
        if not self.rows:
            return ""
        cols = list(self.rows[0])
        widths = {c: max(len(c), *(len(str(r[c])) for r in self.rows))
                  for c in cols}
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in self.rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)


def _run_point(spec: KvTierSpec, policy_name: str, trigger: float,
               share_ratio: float) -> Dict:
    from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
    from repro.cluster.workload import shared_prefix_workload

    fleet = FleetSpec.of(
        [NodeSpec(spec.device, power_mode=spec.power_mode,
                  max_batch=spec.max_batch, runtime=spec.runtime,
                  kv_policy=policy_name, kv_trigger=trigger)],
        model=spec.model, precision=spec.precision,
    )
    cluster = EdgeCluster.of(fleet)
    node = cluster.nodes[0]
    node._kv_budget_base = max(
        1, int(node._kv_budget_base * spec.kv_budget_frac))
    node._explicit_kv_budget = True
    workload = shared_prefix_workload(
        spec.rate_per_s, spec.n_requests,
        prefix_tokens=spec.prefix_tokens,
        share_ratio=share_ratio,
        unique_tokens=spec.unique_tokens,
        output_tokens=spec.output_tokens,
        seed=spec.seed,
    )
    report = cluster.run(workload)
    policy = node.kv_policy
    row = {
        "policy": policy.label,
        "trigger": trigger,
        "share_ratio": share_ratio,
        "completed": report.completed,
        "goodput_rps": round(report.goodput_rps, 4),
        "p50_ttft_s": round(report.p50_ttft_s, 3),
        "p99_ttft_s": round(report.p99_ttft_s, 3),
        "lost_tokens": report.lost_tokens,
        "swap_outs": report.swap_outs,
        "swap_ins": report.swap_ins,
        "sacrifices": report.sacrifices,
        "swapped_gb": round(report.swapped_gb, 4),
        "prefix_hit_rate": round(report.prefix_hit_rate, 3),
        "prefix_hit_tokens": report.prefix_hit_tokens,
        "j_per_token": round(report.j_per_token, 4),
    }
    return row


def run_kvtier(spec: KvTierSpec) -> KvTierReport:
    """Run the full policy × trigger × share-ratio grid (deterministic)."""
    report = KvTierReport(spec=spec)
    for share in spec.share_ratios:
        for policy_name in spec.policies:
            for trigger in spec.triggers:
                report.rows.append(
                    _run_point(spec, policy_name, trigger, share))
    return report


def sweep_rows_csv(report: KvTierReport) -> str:
    """The rows as canonical CSV text (the determinism-gate artifact)."""
    if not report.rows:
        return ""
    cols = list(report.rows[0])
    lines = [",".join(cols)]
    for r in report.rows:
        lines.append(",".join(str(r[c]) for c in r))
    return "\n".join(lines) + "\n"
