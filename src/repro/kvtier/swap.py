"""The host swap tier: bounded space, bandwidth-modelled transfers.

On Jetson-class boards there is no PCIe hop to hide behind: CPU and GPU
share one LPDDR5 pool, so a KV swap is a DRAM-to-DRAM copy that reads
and writes the *same* bus — the achievable one-way rate is half the
streaming bandwidth at the current EMC clock.  Discrete-GPU servers
instead bottleneck on the host link.  Both cases derive from the
existing :class:`~repro.hardware.memory.SharedMemory` state, so power
modes that downclock memory (the paper's mode H) automatically make
swapping slower too.

:class:`HostSwapSpace` owns the host-side bookkeeping for one node:
which requests hold swapped KV, how many bytes, and the lifetime
counters (:class:`SwapStats`) reporting folds into tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice

#: Effective host-link bandwidth for non-unified (discrete GPU) devices:
#: PCIe 4.0 x16 at practical efficiency.
PCIE_HOST_LINK_BYTES_S = 25e9


def swap_bandwidth_bytes_s(device: EdgeDevice) -> float:
    """One-way KV transfer rate at the device's current operating point.

    Unified memory: a copy through one LPDDR bus pays read + write, so
    the rate is half the streaming bandwidth at the current clock.
    Discrete: the PCIe link caps the transfer (DRAM is faster).
    """
    mem = device.memory
    streaming = (mem.peak_bandwidth * mem.streaming_efficiency
                 * mem.effective_ratio)
    if device.unified_memory:
        return streaming / 2.0
    return min(streaming, PCIE_HOST_LINK_BYTES_S)


@dataclass
class SwapStats:
    """Lifetime swap-tier counters for one node."""

    swap_outs: int = 0
    swap_ins: int = 0
    #: Victims that fell back to sacrifice (host space full, or the
    #: policy never preserved KV in the first place).
    sacrifices: int = 0
    swapped_out_bytes: int = 0
    swapped_in_bytes: int = 0
    peak_host_bytes: int = 0
    #: Total wall time the bus spent moving KV (both directions).
    transfer_seconds: float = 0.0

    def as_row(self) -> Dict:
        return {
            "swap_outs": self.swap_outs,
            "swap_ins": self.swap_ins,
            "sacrifices": self.sacrifices,
            "swapped_gb": round(self.swapped_out_bytes / 1e9, 3),
            "swap_transfer_s": round(self.transfer_seconds, 2),
        }


class HostSwapSpace:
    """Bounded host-side store of preempted requests' KV.

    Transfers are *accounted*, not scheduled: callers receive the
    seconds a transfer occupies the bus and bill them on their own
    serving loop (the node stalls; interference is the model).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError("host swap capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._held: Dict[int, int] = {}
        self.host_bytes = 0
        self.stats = SwapStats()

    def can_hold(self, nbytes: int) -> bool:
        """Would ``nbytes`` more fit right now?"""
        return self.host_bytes + nbytes <= self.capacity_bytes

    def holds(self, req_id: int) -> bool:
        return req_id in self._held

    def swap_out(self, req_id: int, nbytes: int,
                 bandwidth_bytes_s: float) -> float:
        """Store a victim's KV; returns the transfer seconds to bill."""
        if req_id in self._held:
            raise ConfigError(f"request {req_id} is already swapped")
        if nbytes <= 0:
            raise ConfigError("swapped KV must be positive")
        if not self.can_hold(nbytes):
            raise ConfigError("host swap space full")
        self._held[req_id] = nbytes
        self.host_bytes += nbytes
        st = self.stats
        st.swap_outs += 1
        st.swapped_out_bytes += nbytes
        st.peak_host_bytes = max(st.peak_host_bytes, self.host_bytes)
        seconds = nbytes / bandwidth_bytes_s
        st.transfer_seconds += seconds
        return seconds

    def swap_in(self, req_id: int, bandwidth_bytes_s: float) -> tuple:
        """Restore a request's KV; returns ``(nbytes, transfer_seconds)``."""
        nbytes = self._held.pop(req_id, None)
        if nbytes is None:
            raise ConfigError(f"request {req_id} holds no swapped KV")
        self.host_bytes -= nbytes
        st = self.stats
        st.swap_ins += 1
        st.swapped_in_bytes += nbytes
        seconds = nbytes / bandwidth_bytes_s
        st.transfer_seconds += seconds
        return nbytes, seconds

    def drop(self, req_id: int) -> int:
        """Discard a request's swapped KV without a transfer (crash,
        rejection, fleet requeue).  Returns the bytes released (0 when
        the request held nothing)."""
        nbytes = self._held.pop(req_id, None)
        if nbytes is None:
            return 0
        self.host_bytes -= nbytes
        return nbytes
