"""repro.kvtier — the KV lifecycle subsystem.

Owns what happens to KV caches under memory pressure: the
:class:`~repro.kvtier.policy.KvLifecyclePolicy` axis (sacrifice vs.
host-swap preemption, LIFO/FIFO/LRU victims, conservative vs.
aggressive triggers), the bounded host
:class:`~repro.kvtier.swap.HostSwapSpace` with bandwidth-modelled
transfers, and the shared-prefix
:class:`~repro.kvtier.radix.RadixPrefixCache` for the paged backend.
``repro kvtier`` (see :mod:`repro.kvtier.sweep`) sweeps the whole
design space deterministically.
"""

from repro.kvtier.policy import (
    AGGRESSIVE_TRIGGER,
    KV_TIER_VERSION,
    VICTIM_ORDERS,
    KvLifecyclePolicy,
    SacrificePolicy,
    SwapPolicy,
    get_kv_policy,
    list_kv_policies,
)
from repro.kvtier.radix import RadixPrefixCache, RadixStats
from repro.kvtier.swap import (
    HostSwapSpace,
    SwapStats,
    swap_bandwidth_bytes_s,
)
from repro.kvtier.sweep import (
    KvTierReport,
    KvTierSpec,
    run_kvtier,
    sweep_rows_csv,
)

__all__ = [
    "AGGRESSIVE_TRIGGER",
    "KV_TIER_VERSION",
    "VICTIM_ORDERS",
    "KvLifecyclePolicy",
    "SacrificePolicy",
    "SwapPolicy",
    "get_kv_policy",
    "list_kv_policies",
    "RadixPrefixCache",
    "RadixStats",
    "HostSwapSpace",
    "SwapStats",
    "swap_bandwidth_bytes_s",
    "KvTierReport",
    "KvTierSpec",
    "run_kvtier",
    "sweep_rows_csv",
]
