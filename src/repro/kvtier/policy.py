"""The :class:`KvLifecyclePolicy` axis: what happens under KV pressure.

Before this subsystem the serving stack had exactly one escape hatch
when live KV outgrew the budget: preempt the youngest request and throw
its cache away (drop + full re-prefill).  The policy interface turns
that hard-coded failure path into a configuration axis, the design
space of the ``vllm_simulation`` exemplar:

- **mode** — ``sacrifice`` (drop the victim's KV, re-prefill later;
  the historical behaviour) vs ``swap`` (preserve the victim's KV on
  the host side of the LPDDR5 pool and pay a bandwidth-modelled
  transfer each way);
- **victim order** — ``lifo`` (youngest admission; the historical
  rule), ``fifo`` (oldest admission) or ``lru`` (stalest last token);
- **trigger** — *conservative* policies preempt only once live KV
  actually exceeds the budget (trigger = 1.0); *aggressive* policies
  keep proactive headroom by treating ``trigger * budget`` as the
  ceiling, preempting earlier but less urgently.

Policies are frozen dataclasses so their configuration content-
addresses experiment results; :data:`KV_TIER_VERSION` is folded into
every cache key that depends on lifecycle semantics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError

#: Bump when KV-lifecycle semantics change in a way the policy fields
#: alone cannot see; folded into result-cache keys next to
#: COST_MODEL_VERSION / BACKEND_MODEL_VERSION.
KV_TIER_VERSION = "2026.08-kvtier-1"

#: Victim-selection orders, in presentation order.
VICTIM_ORDERS = ("lifo", "fifo", "lru")

#: Trigger a non-conservative policy defaults to (see ``aggressive``).
AGGRESSIVE_TRIGGER = 0.85


def _last_activity(r, default: float) -> float:
    """Last token production time, falling back to arrival (no token yet)."""
    t = getattr(r, "last_token_s", None)
    return t if t is not None else default


@dataclass(frozen=True)
class KvLifecyclePolicy:
    """Base class: victim order + trigger threshold, no KV preservation."""

    name = "base"
    description = ""
    #: True when preempted KV survives (swap tier) instead of being lost.
    preserves_kv = False

    #: Victim-selection order: ``lifo`` | ``fifo`` | ``lru``.
    victim: str = "lifo"
    #: Fraction of the KV budget treated as the preemption ceiling.
    #: 1.0 = conservative (preempt only when actually over budget);
    #: lower = aggressive (keep proactive headroom).
    trigger: float = 1.0

    def __post_init__(self) -> None:
        if self.victim not in VICTIM_ORDERS:
            known = "|".join(VICTIM_ORDERS)
            raise ConfigError(
                f"unknown victim order {self.victim!r}; known: {known}")
        if not 0.0 < self.trigger <= 1.0:
            raise ConfigError("trigger must be in (0, 1]")

    # -- decisions ----------------------------------------------------------
    def effective_budget(self, budget_bytes: int) -> int:
        """The ceiling preemption/admission keeps live KV under."""
        return int(budget_bytes * self.trigger)

    def select_victim(self, candidates: Sequence, keep=None):
        """Pick the next preemption victim (deterministic; None if empty).

        ``candidates`` are the running requests in admission order;
        ``keep`` is excluded (the request whose growth forced the
        preemption must itself make progress).
        """
        pool = [(i, r) for i, r in enumerate(candidates) if r is not keep]
        if not pool:
            return None
        if self.victim == "lifo":
            # Youngest arrival, ties broken by admission order — the
            # historical preempt-youngest rule, bit-for-bit.
            return max(pool, key=lambda p: (p[1].arrival_s, p[0]))[1]
        if self.victim == "fifo":
            return min(pool, key=lambda p: (p[1].arrival_s, p[0]))[1]
        # lru: stalest last token; requests that never produced one rank
        # by arrival.  Ties fall back to admission order (stable).
        return min(pool,
                   key=lambda p: (_last_activity(p[1], p[1].arrival_s),
                                  p[1].arrival_s, p[0]))[1]

    # -- identity -----------------------------------------------------------
    def config_payload(self) -> Dict:
        """JSON-serialisable configuration for content addressing."""
        payload = {"name": self.name, "kv_tier_version": KV_TIER_VERSION}
        for f in dataclasses.fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    def with_(self, **kwargs) -> "KvLifecyclePolicy":
        """Copy with configuration overrides."""
        return dataclasses.replace(self, **kwargs)

    @property
    def label(self) -> str:
        """Compact display label (``swap-lru@0.85``)."""
        return f"{self.name}-{self.victim}@{self.trigger:g}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


@dataclass(frozen=True)
class SacrificePolicy(KvLifecyclePolicy):
    """Drop + re-prefill: the victim's KV is recomputed from scratch."""

    name = "sacrifice"
    description = ("drop the victim's KV and re-prefill on re-admission "
                   "(recompute preemption; the historical behaviour)")
    preserves_kv = False


@dataclass(frozen=True)
class SwapPolicy(KvLifecyclePolicy):
    """Preserve the victim's KV on the host side of the memory system.

    Swapped bytes move at the device's *current* bandwidth-derived swap
    rate (see :func:`repro.kvtier.swap.swap_bandwidth_bytes_s`), so low
    memory power modes make swapping proportionally slower.  Host space
    is bounded; once it fills, further victims fall back to sacrifice.
    """

    name = "swap"
    description = ("preserve preempted KV on the host (CPU/LPDDR5) side "
                   "and restore it on re-admission")
    preserves_kv = True

    #: Fraction of the device's physical memory usable as host swap
    #: space (on unified-memory boards the CPU side of the same pool).
    host_capacity_frac: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.host_capacity_frac <= 4.0:
            raise ConfigError("host_capacity_frac must be in (0, 4]")


_POLICIES = {
    "sacrifice": SacrificePolicy,
    "swap": SwapPolicy,
}


def list_kv_policies() -> Sequence[str]:
    """Registered policy mode names, sorted."""
    return sorted(_POLICIES)


def get_kv_policy(name: "Optional[str | KvLifecyclePolicy]" = None,
                  **overrides) -> KvLifecyclePolicy:
    """Resolve a policy from a compound name or pass an instance through.

    Grammar: ``mode[-victim][-aggressive]`` — e.g. ``sacrifice``,
    ``swap-lru``, ``swap-fifo-aggressive``.  ``aggressive`` sets
    ``trigger`` to :data:`AGGRESSIVE_TRIGGER` unless an explicit
    ``trigger=`` override is given.
    """
    if isinstance(name, KvLifecyclePolicy):
        return name.with_(**overrides) if overrides else name
    if name is None:
        name = "sacrifice"
    parts = [p for p in name.strip().lower().split("-") if p]
    if not parts or parts[0] not in _POLICIES:
        known = ", ".join(sorted(_POLICIES))
        raise ConfigError(
            f"unknown KV lifecycle policy {name!r}; known modes: {known} "
            f"(grammar: mode[-victim][-aggressive])")
    cls = _POLICIES[parts[0]]
    kwargs: Dict = {}
    for part in parts[1:]:
        if part in VICTIM_ORDERS:
            kwargs["victim"] = part
        elif part == "aggressive":
            kwargs.setdefault("trigger", AGGRESSIVE_TRIGGER)
        elif part == "conservative":
            kwargs.setdefault("trigger", 1.0)
        else:
            raise ConfigError(
                f"unknown KV policy qualifier {part!r} in {name!r}; "
                f"expected one of {'|'.join(VICTIM_ORDERS)}, "
                f"aggressive, conservative")
    kwargs.update(overrides)
    return cls(**kwargs)
