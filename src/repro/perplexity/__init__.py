"""Perplexity evaluation.

- :mod:`repro.perplexity.evaluator` — the paper's sliding-window
  protocol (1024-token windows, stride 512, cross-entropy over
  non-overlapped targets) running on the real numpy transformer.
- :mod:`repro.perplexity.analytical` — Table-3 reproduction for
  paper-scale models: calibrated FP32 anchors plus the measured
  quantization-error -> NLL-degradation model.
"""

from repro.perplexity.evaluator import sliding_window_perplexity
from repro.perplexity.analytical import perplexity_table, predicted_perplexity

__all__ = [
    "perplexity_table",
    "predicted_perplexity",
    "sliding_window_perplexity",
]
