"""Table-3 reproduction for paper-scale models.

Absolute FP32 perplexity of a 32B model cannot be computed offline, so
the anchors come from the paper (documented in
:mod:`repro.calibration.constants`); the quantization *degradation* is
predicted from the measured matmul error of the real quantizers through
the calibrated sensitivity model.  OOM cells are decided by the same
memory model the engine uses (can the weights + a 1024-token evaluation
window fit the 64 GB board?).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.calibration.constants import (
    PPL_ANCHOR_PRECISION,
    PPL_ANCHORS,
    PPL_ERROR_EXPONENT,
    PPL_SENSITIVITY,
)
from repro.errors import ExperimentError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.footprint import weight_bytes
from repro.models.zoo import PAPER_MODELS
from repro.quant.dtypes import PRECISION_ORDER, Precision
from repro.quant.error import measure_quant_error


def fits_on_device(
    arch: TransformerArchitecture, precision: Precision, device: EdgeDevice,
    eval_window: int = 1024,
) -> bool:
    """Can a perplexity evaluation run at this precision on this device?

    Weights + the evaluation working set (KV for one window, workspace)
    must fit the usable memory.
    """
    weights = weight_bytes(arch, precision)
    kv = arch.kv_cache_spec().bytes_total(1, eval_window)
    workspace = int(0.5e9)
    return weights + kv + workspace <= device.memory.usable_bytes


def predicted_perplexity(
    model_name: str,
    precision: Precision,
    dataset: str,
    seed: int = 0,
) -> float:
    """Predicted perplexity for one (model, precision, dataset) cell."""
    anchors = PPL_ANCHORS.get(dataset)
    if anchors is None or model_name not in anchors:
        raise ExperimentError(f"no anchor for {model_name!r} on {dataset!r}")
    arch = PAPER_MODELS[model_name]
    anchor_prec = Precision.parse(PPL_ANCHOR_PRECISION[model_name])
    base = anchors[model_name]
    s = PPL_SENSITIVITY[model_name]
    p = PPL_ERROR_EXPONENT

    e_target = measure_quant_error(arch, precision, seed=seed).rel_matmul_error
    e_anchor = measure_quant_error(arch, anchor_prec, seed=seed).rel_matmul_error
    delta = s * (e_target**p - e_anchor**p)
    return float(base * math.exp(delta))


def perplexity_table(
    device: EdgeDevice,
    datasets: tuple = ("wikitext2", "longbench"),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Full Table-3 analogue with OOM cells decided by the memory model."""
    rows: List[Dict[str, object]] = []
    for model_name in PAPER_MODELS:
        arch = PAPER_MODELS[model_name]
        row: Dict[str, object] = {"model": model_name}
        for ds in datasets:
            for prec in PRECISION_ORDER:
                key = f"{ds}_{prec.value}"
                if not fits_on_device(arch, prec, device):
                    row[key] = None
                    continue
                row[key] = round(
                    predicted_perplexity(model_name, prec, ds, seed=seed), 2
                )
        rows.append(row)
    return rows


def perplexity_cell(
    model_name: str, precision: Precision, dataset: str, device: Optional[EdgeDevice] = None,
    seed: int = 0,
) -> Optional[float]:
    """One cell, or None if it would OOM on ``device``."""
    if device is not None and not fits_on_device(
        PAPER_MODELS[model_name], precision, device
    ):
        return None
    return round(predicted_perplexity(model_name, precision, dataset, seed=seed), 2)
