"""Sliding-window perplexity, exactly as the paper computes it.

"For WikiText2 and LongBench, we process text in overlapping windows of
1024 tokens with a stride of 512.  The model's loss, computed using
cross-entropy, represents the negative log-likelihood of the target
tokens", and perplexity is ``exp(sum NLL / total tokens)`` — §2.

The overlapped prefix of each window provides context only; its target
positions are masked (the standard HF evaluation recipe).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.nn.loss import cross_entropy_nll
from repro.nn.transformer import NumpyTransformer

IGNORE = -100


def sliding_window_perplexity(
    model: NumpyTransformer,
    token_ids: Sequence[int],
    window: int = 1024,
    stride: int = 512,
) -> float:
    """Perplexity of ``token_ids`` under ``model``.

    Windows advance by ``stride``; within each window only the tokens
    past the previous window's end contribute targets, so every token is
    scored exactly once with up to ``window - stride`` tokens of extra
    context.
    """
    ids = np.asarray(list(token_ids), dtype=np.int64)
    if ids.ndim != 1 or ids.size < 2:
        raise ModelError("need a flat sequence of at least 2 tokens")
    if stride < 1 or window < 2 or stride > window:
        raise ModelError("require 1 <= stride <= window and window >= 2")

    total_nll = 0.0
    total_tokens = 0
    prev_end = 0
    for begin in range(0, ids.size, stride):
        end = min(begin + window, ids.size)
        chunk = ids[begin:end]
        if chunk.size < 2:
            break
        logits = model.forward(chunk[None, :])  # (1, t, vocab)
        targets = chunk[1:].copy()
        # Mask targets already scored by a previous window.
        n_context = max(0, prev_end - begin - 1)
        targets[:n_context] = IGNORE
        nll, n = cross_entropy_nll(logits[:, :-1, :], targets[None, :])
        total_nll += nll
        total_tokens += n
        prev_end = end
        if end == ids.size:
            break
    if total_tokens == 0:
        raise ModelError("no tokens were scored")
    return float(np.exp(total_nll / total_tokens))
