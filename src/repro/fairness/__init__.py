"""Multi-tenant fair serving: sessions, schedulers, throttling, waste.

The paper's single-stream measurements say what one request costs on an
edge board; this package asks who should get the next batch slot when
several tenants want it.  It follows the FAIRSERVE decomposition:

- :mod:`repro.fairness.session` — multi-turn *interactions* whose turns
  carry cumulative context and arrive after think-time gaps;
- :mod:`repro.fairness.scheduler` — pluggable per-queue disciplines
  (FCFS, virtual-token-counter fair queueing, weighted service
  counters) shared by the cluster nodes and the single-device engine;
- :mod:`repro.fairness.throttle` — per-tenant token-rate budgets that
  turn over-issued work away at injection;
- :mod:`repro.fairness.accounting` — served / wasted / throttled token
  ledgers with conservation checks;
- :mod:`repro.fairness.sweep` — the ``repro fairness`` comparison grid.
"""

from repro.fairness.accounting import (TenantLedger, build_ledger,
                                       conservation_violations)
from repro.fairness.scheduler import (FAIRNESS_VERSION, FairScheduler,
                                      FCFSScheduler, VTCScheduler,
                                      WSCScheduler, get_fair_scheduler,
                                      list_fair_schedulers)
from repro.fairness.session import (Interaction, SessionTurn,
                                    session_requests, session_workload)
from repro.fairness.sweep import (TENANT_MIXES, FairnessReport,
                                  FairnessSpec, fairness_rows_csv,
                                  run_fairness)
from repro.fairness.throttle import TenantBucket, TokenThrottle

__all__ = [
    "FairnessReport",
    "FairnessSpec",
    "TENANT_MIXES",
    "fairness_rows_csv",
    "run_fairness",
    "FAIRNESS_VERSION",
    "FCFSScheduler",
    "FairScheduler",
    "Interaction",
    "SessionTurn",
    "TenantBucket",
    "TenantLedger",
    "TokenThrottle",
    "VTCScheduler",
    "WSCScheduler",
    "build_ledger",
    "conservation_violations",
    "get_fair_scheduler",
    "list_fair_schedulers",
    "session_requests",
    "session_workload",
]
