"""Pluggable per-queue fair schedulers (FCFS / VTC / WSC).

A :class:`FairScheduler` decides, at every admission opportunity, which
queued request a serving loop should admit next.  The interface is three
hooks on the request lifecycle:

- :meth:`~FairScheduler.on_arrival` — a request entered the queue;
- :meth:`~FairScheduler.on_tokens_served` — the serving loop billed
  prefill or decode tokens to a running request;
- :meth:`~FairScheduler.select_next` — pick the queue index to admit.

``fcfs`` is a bit-identical extraction of the historical head-of-queue
discipline (``select_next`` always returns 0 and the counters are
no-ops), so wiring a scheduler into an existing loop changes nothing
until a non-default policy is selected — the parity tests pin that.

``vtc`` is Virtual Token Counter fair queueing (Sheng et al., FairServe
lineage): each tenant accumulates a counter of weighted service
(``w_p * prefill + w_d * decode``, divided by the tenant's weight) and
the scheduler always admits the backlogged tenant with the smallest
counter.  A tenant arriving to an empty backlog is *lifted* to the
minimum live counter so idle time is not bankable as future priority.

``wsc`` is the plain weighted-service-counter variant: the same
min-counter rule with unit token costs and no lift, so long-idle
tenants may burst until their counter catches up.

Schedulers keep per-tenant state only (floats and ints keyed by tenant
name); selection scans the queue in order and tie-breaks on queue
position, so a fixed seed gives a bit-identical simulation regardless
of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError

#: Bump when scheduler/throttle/session semantics change: cache keys of
#: fairness sweeps fold this constant, so stale artifacts never collide.
FAIRNESS_VERSION = "fairness-1"


class FairScheduler:
    """Base queue-scheduler: FCFS-compatible no-op hooks.

    ``weights`` maps tenant name to service weight (missing tenants get
    1.0); only the counter-based policies consult it.
    """

    name = "base"

    def __init__(self, weights: Optional[Mapping[str, float]] = None):
        self.weights: Dict[str, float] = dict(weights or {})
        for tenant, w in self.weights.items():
            if w <= 0:
                raise ConfigError(
                    f"scheduler weight for tenant {tenant!r} must be positive")

    def weight_of(self, tenant: str) -> float:
        return float(self.weights.get(tenant, 1.0))

    @staticmethod
    def tenant_of(request) -> str:
        return getattr(request, "tenant", "tenant0")

    # -- lifecycle hooks (no-ops in the base/FCFS discipline) ---------------
    def on_arrival(self, request, now: float) -> None:
        """A request joined the queue at simulation time ``now``."""

    def on_dequeue(self, request) -> None:
        """The serving loop admitted ``request`` out of the queue."""

    def on_tokens_served(self, request, prefill_tokens: int = 0,
                         decode_tokens: int = 0) -> None:
        """Service was billed to ``request``'s tenant."""

    def on_flush(self) -> None:
        """The queue was wiped wholesale (node crash)."""

    def select_next(self, queue: Sequence) -> int:
        """Index of the queued request to admit next (queue non-empty)."""
        raise NotImplementedError

    def counter_snapshot(self) -> Dict[str, float]:
        """Per-tenant service counters (empty for stateless policies)."""
        return {}


class FCFSScheduler(FairScheduler):
    """Head-of-queue admission: the historical discipline, extracted.

    Every hook is inherited as a no-op and ``select_next`` is constant
    0, so a loop driven by this scheduler pops exactly the requests the
    pre-scheduler code popped — bit-identical, parity-tested.
    """

    name = "fcfs"

    def select_next(self, queue: Sequence) -> int:
        return 0


class _CounterScheduler(FairScheduler):
    """Shared machinery of the min-counter policies (VTC / WSC)."""

    #: Relative cost of one prefill / one decode token.
    prefill_weight = 1.0
    decode_weight = 1.0
    #: Lift a tenant arriving to an empty backlog up to the minimum
    #: live counter (VTC's no-banking rule).
    lift_on_arrival = False

    def __init__(self, weights: Optional[Mapping[str, float]] = None):
        super().__init__(weights)
        self.counters: Dict[str, float] = {}
        self._backlog: Dict[str, int] = {}

    def on_arrival(self, request, now: float) -> None:
        tenant = self.tenant_of(request)
        if self.lift_on_arrival and not self._backlog.get(tenant):
            # Counters of tenants with queued work are "live"; an idle
            # tenant re-entering cannot undercut them with banked idle
            # time.  With nothing backlogged, any known counter works
            # as the floor (value-min: hash order cannot matter).
            live = [self.counters[t] for t, n in self._backlog.items() if n]
            floor = min(live) if live else min(self.counters.values(),
                                               default=0.0)
            self.counters[tenant] = max(self.counters.get(tenant, 0.0), floor)
        self.counters.setdefault(tenant, 0.0)
        self._backlog[tenant] = self._backlog.get(tenant, 0) + 1

    def on_dequeue(self, request) -> None:
        tenant = self.tenant_of(request)
        if self._backlog.get(tenant, 0) > 0:
            self._backlog[tenant] -= 1

    def on_tokens_served(self, request, prefill_tokens: int = 0,
                         decode_tokens: int = 0) -> None:
        tenant = self.tenant_of(request)
        cost = (self.prefill_weight * prefill_tokens
                + self.decode_weight * decode_tokens)
        if cost:
            self.counters[tenant] = (self.counters.get(tenant, 0.0)
                                     + cost / self.weight_of(tenant))

    def on_flush(self) -> None:
        self._backlog.clear()

    def select_next(self, queue: Sequence) -> int:
        """Earliest-queued request of the min-counter tenant.

        Scans the queue in arrival order and keys on (counter, queue
        position): within a tenant FCFS order is preserved, and ties
        between tenants resolve to the earlier arrival — deterministic
        with no dependence on dict iteration order.
        """
        best, best_key = 0, None
        for idx, r in enumerate(queue):
            key = (self.counters.get(self.tenant_of(r), 0.0), idx)
            if best_key is None or key < best_key:
                best, best_key = idx, key
        return best

    def counter_snapshot(self) -> Dict[str, float]:
        return dict(sorted(self.counters.items()))


class VTCScheduler(_CounterScheduler):
    """Virtual Token Counter fair queueing over prefill+decode tokens.

    Decode tokens cost twice a prefill token (the FairServe/VTC
    convention: decode occupies an iteration per token, prefill
    amortises), counters divide by tenant weight, and arrivals to an
    empty backlog are lifted to the live minimum.
    """

    name = "vtc"
    prefill_weight = 1.0
    decode_weight = 2.0
    lift_on_arrival = True


class WSCScheduler(_CounterScheduler):
    """Weighted service counters: tokens/weight, min-counter, no lift."""

    name = "wsc"
    prefill_weight = 1.0
    decode_weight = 1.0
    lift_on_arrival = False


_SCHEDULERS: Dict[str, type] = {
    FCFSScheduler.name: FCFSScheduler,
    VTCScheduler.name: VTCScheduler,
    WSCScheduler.name: WSCScheduler,
}


def list_fair_schedulers() -> List[str]:
    return sorted(_SCHEDULERS)


def get_fair_scheduler(name=None,
                       weights: Optional[Mapping[str, float]] = None
                       ) -> FairScheduler:
    """Resolve a queue scheduler by name (or pass an instance through).

    ``None`` resolves to FCFS — the historical discipline — so every
    call site that predates the scheduler axis keeps its behaviour.
    Raises :class:`~repro.errors.ConfigError` (never ``KeyError``) on
    unknown or non-string names, listing the valid policies.
    """
    if name is None:
        return FCFSScheduler()
    if isinstance(name, FairScheduler):
        return name
    if not isinstance(name, str):
        raise ConfigError(
            f"fair scheduler must be a string or FairScheduler, got "
            f"{type(name).__name__}; known: "
            f"{', '.join(list_fair_schedulers())}"
        )
    cls = _SCHEDULERS.get(name.strip().lower())
    if cls is None:
        raise ConfigError(
            f"unknown fair scheduler {name!r}; known: "
            f"{', '.join(list_fair_schedulers())}"
        )
    return cls(weights)
