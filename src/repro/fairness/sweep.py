"""The ``repro fairness`` sweep: scheduler × mix × runtime × kv × power.

One spec describes a contended multi-turn serving scenario; the sweep
replays the *same* deterministic session workload under every queue
discipline, tenant mix, runtime backend, KV lifecycle policy and
nvpmodel power mode, so the rows differ only in what the policy axes
changed.  The power-mode axis answers the fairness × power question:
fair-share guarantees are *relative* (who gets the tokens), so
down-clocking the node shrinks everyone's tokens without breaking the
shares — ``jain_tokens`` should hold under a downshifted mode.  The adversarial
``flood`` mix is the FairServe stress case: one tenant issues far more
than its entitlement while equally-weighted polite tenants trickle in —
FCFS lets the flood starve them, VTC/WSC do not, and the per-tenant
``jain_tokens`` column shows the gap.

Every row's token books are conservation-checked
(:func:`~repro.fairness.accounting.conservation_violations`) and the
whole grid is content-addressed (:func:`FairnessSpec.cache_key` folds
:data:`~repro.fairness.scheduler.FAIRNESS_VERSION`) and
bit-reproducible — the CI smoke job runs the sweep twice and diffs the
CSV byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cache import payload_fingerprint
from repro.errors import ConfigError, ExperimentError
from repro.fairness.scheduler import FAIRNESS_VERSION, get_fair_scheduler

#: Named tenant mixes the sweep draws sessions from.  Profile weights
#: set *arrival* share; for most mixes the sweep grants tenants *equal*
#: fairness entitlement, so the ``flood`` tenant's 8x arrival share is
#: exactly the over-issuing adversary fair schedulers exist to contain.
#: Mixes listed in :data:`WEIGHTED_ENTITLEMENT_MIXES` instead carry
#: their profile weights into the schedulers as entitlements.
TENANT_MIXES: Dict[str, Tuple] = {}

#: Mixes whose profile weights are fairness *entitlements* too: VTC/WSC
#: should serve these tenants tokens in proportion to their weights,
#: not equally.
WEIGHTED_ENTITLEMENT_MIXES = frozenset({"weighted"})


def _init_mixes() -> None:
    from repro.cluster.workload import TenantProfile

    TENANT_MIXES["balanced"] = (
        TenantProfile("chat", weight=1.0, mean_input_tokens=48,
                      mean_output_tokens=96, cv_input=0.6, cv_output=0.7),
        TenantProfile("summarize", weight=1.0, mean_input_tokens=256,
                      mean_output_tokens=48, cv_input=0.4, cv_output=0.4),
        TenantProfile("analytics", weight=1.0, mean_input_tokens=384,
                      mean_output_tokens=128, cv_input=0.3, cv_output=0.3),
    )
    TENANT_MIXES["flood"] = (
        TenantProfile("flood", weight=8.0, mean_input_tokens=192,
                      mean_output_tokens=160, cv_input=0.2, cv_output=0.2),
        TenantProfile("polite-a", weight=1.0, mean_input_tokens=48,
                      mean_output_tokens=64, cv_input=0.5, cv_output=0.5),
        TenantProfile("polite-b", weight=1.0, mean_input_tokens=48,
                      mean_output_tokens=64, cv_input=0.5, cv_output=0.5),
    )
    # Premium pays for a 3x entitlement and issues many small requests;
    # standard issues a third as many sessions at 3x the token shapes,
    # so the two tenants *demand* roughly equal tokens.  Under
    # contention a weight-honoring scheduler should serve premium ~3x
    # standard's tokens; FCFS, blind to weights, serves demand (~1:1).
    TENANT_MIXES["weighted"] = (
        TenantProfile("premium", weight=3.0, mean_input_tokens=48,
                      mean_output_tokens=48, cv_input=0.3, cv_output=0.3),
        TenantProfile("standard", weight=1.0, mean_input_tokens=144,
                      mean_output_tokens=144, cv_input=0.3, cv_output=0.3),
    )


@dataclass(frozen=True)
class FairnessSpec:
    """One fairness sweep configuration (frozen, content-addressable)."""

    device: str = "jetson-orin-agx-64gb"
    model: str = "llama3.1-8b"
    precision: str = "fp16"
    runtimes: Tuple[str, ...] = ("hf-transformers",)
    kv_policies: Tuple[str, ...] = ("sacrifice",)
    schedulers: Tuple[str, ...] = ("fcfs", "vtc", "wsc")
    mixes: Tuple[str, ...] = ("balanced", "flood")
    #: nvpmodel operating points the grid replays under — does fair
    #: scheduling hold when the whole node is downshifted?
    power_modes: Tuple[str, ...] = ("MAXN",)
    routing: str = "round-robin"
    rate_per_s: float = 3.0
    n_interactions: int = 24
    mean_turns: float = 3.0
    max_turns: int = 6
    mean_think_time_s: float = 1.0
    #: Small on purpose: fairness only matters while work is queued.
    max_batch: int = 2
    #: Per-tenant token budget (tokens/s); 0 disables the throttle.
    throttle_rate: float = 0.0
    throttle_burst_s: float = 4.0
    #: SLO deadlines the ``jain_tokens`` good-share metric scores by.
    #: The TTFT deadline sits between the queue-jump TTFT a fair
    #: scheduler buys a polite tenant (~10 s under the flood mix) and
    #: the full-queue wait FCFS imposes (minutes), so the good-share
    #: columns actually separate the disciplines.
    slo_ttft_s: float = 30.0
    slo_tpot_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.runtimes or not self.kv_policies:
            raise ConfigError("sweep axes must be non-empty")
        if not self.schedulers or not self.mixes or not self.power_modes:
            raise ConfigError("sweep axes must be non-empty")
        from repro.power.modes import get_power_mode

        for pm in self.power_modes:
            get_power_mode(pm)  # typed error on unknown names
        for s in self.schedulers:
            get_fair_scheduler(s)  # typed error on unknown names
        from repro.kvtier.policy import get_kv_policy

        for p in self.kv_policies:
            get_kv_policy(p)  # typed error likewise
        if not TENANT_MIXES:
            _init_mixes()
        for m in self.mixes:
            if m not in TENANT_MIXES:
                raise ConfigError(
                    f"unknown tenant mix {m!r}; "
                    f"known: {', '.join(sorted(TENANT_MIXES))}")
        if self.throttle_rate < 0:
            raise ConfigError("throttle_rate must be >= 0")

    def cache_key(self) -> str:
        """Content address folding the fairness semantics version."""
        payload = dataclasses.asdict(self)
        payload["fairness_version"] = FAIRNESS_VERSION
        return payload_fingerprint(payload)


@dataclass
class FairnessReport:
    """All sweep rows for one spec (deterministic row order)."""

    spec: FairnessSpec
    rows: List[Dict] = dataclasses.field(default_factory=list)

    def table(self) -> str:
        """Aligned text table of the rows (stable formatting)."""
        if not self.rows:
            return ""
        cols = list(self.rows[0])
        widths = {c: max(len(c), *(len(str(r[c])) for r in self.rows))
                  for c in cols}
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in self.rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)


def _weight_fidelity(requests, weights: Dict[str, float]) -> float:
    """How faithfully service tracked the entitlements (1.0 = perfect).

    Weighted fair queueing promises service *rates* proportional to the
    weights only while every tenant is backlogged, so the metric scores
    the contended window: ``T*`` is the instant the first tenant drains
    (its last completion), and each tenant's output tokens completed by
    ``T*`` are normalised by its weight.  The worst/best ratio of those
    per-entitlement token counts is the fidelity.  Cumulative served
    tokens over the whole run cannot separate schedulers — the
    simulation drains every request eventually, so lifetime service
    always equals demand; what a weight-honoring scheduler changes is
    the *order*, which the drain-time cutoff converts into tokens.
    """
    done: Dict[str, List] = {}
    for r in requests:
        if r.finish_s is not None:
            done.setdefault(r.tenant, []).append(r)
    if set(done) != set(weights) or not weights:
        return 0.0  # a tenant never completed anything: no fair window
    t_star = min(max(r.finish_s for r in reqs) for reqs in done.values())
    per_weight = [
        sum(r.output_tokens for r in reqs if r.finish_s <= t_star)
        / weights[tenant]
        for tenant, reqs in done.items()
    ]
    return min(per_weight) / max(per_weight) if max(per_weight) > 0 else 0.0


def _run_point(spec: FairnessSpec, scheduler: str, mix: str,
               runtime: str, kv_policy: str, power_mode: str) -> Dict:
    from repro.cluster import EdgeCluster, FleetSpec, NodeSpec
    from repro.cluster.slo import SLOSpec
    from repro.fairness.accounting import (build_ledger,
                                           conservation_violations)
    from repro.fairness.session import session_workload
    from repro.fairness.throttle import TokenThrottle

    tenants = TENANT_MIXES[mix]
    if mix in WEIGHTED_ENTITLEMENT_MIXES:
        weights = {t.name: float(t.weight) for t in tenants}
    else:
        weights = {t.name: 1.0 for t in tenants}
    throttle = None
    if spec.throttle_rate > 0:
        throttle = TokenThrottle(spec.throttle_rate,
                                 burst_s=spec.throttle_burst_s)
    fleet = FleetSpec.of(
        [NodeSpec(spec.device, power_mode=power_mode,
                  max_batch=spec.max_batch, runtime=runtime,
                  kv_policy=kv_policy, scheduler=scheduler)],
        model=spec.model, precision=spec.precision, policy=spec.routing)
    cluster = EdgeCluster.of(
        fleet,
        slo=SLOSpec(ttft_s=spec.slo_ttft_s, tpot_s=spec.slo_tpot_s),
        throttle=throttle, tenant_weights=weights,
    )
    interactions = session_workload(
        spec.rate_per_s, spec.n_interactions, tenants=tenants,
        mean_turns=spec.mean_turns, max_turns=spec.max_turns,
        mean_think_time_s=spec.mean_think_time_s, seed=spec.seed,
    )
    report = cluster.run_interactions(interactions)
    abandoned = frozenset(i.interaction_id for i in interactions
                          if i.abandoned)
    ledgers = build_ledger(cluster.last_requests, abandoned,
                           slo_met=cluster.slo.met, weights=weights)
    meters = sum(sum(n.tenant_served_tokens.values())
                 for n in cluster.nodes)
    violations = conservation_violations(ledgers,
                                         node_served_tokens=meters)
    if violations:
        raise ExperimentError(
            "token books do not balance: " + "; ".join(violations))
    fidelity = _weight_fidelity(cluster.last_requests, weights)
    return {
        "scheduler": scheduler,
        "mix": mix,
        "runtime": runtime,
        "kv_policy": kv_policy,
        "power_mode": power_mode,
        "interactions": report.interactions,
        "abandoned": report.abandoned_interactions,
        "completed": report.completed,
        "throttled": report.throttled,
        "jain": round(report.jains_index, 3),
        "jain_tokens": round(report.jain_tokens, 3),
        "weight_fidelity": round(fidelity, 3),
        "goodput_rps": round(report.goodput_rps, 4),
        "p99_ttft_s": round(report.p99_ttft_s, 3),
        "wasted_tokens": report.wasted_tokens,
        "throttled_tokens": report.throttled_tokens,
        "prefix_hit_rate": round(report.prefix_hit_rate, 3),
        "j_per_token": round(report.j_per_token, 4),
    }


def run_fairness(spec: FairnessSpec) -> FairnessReport:
    """Run the scheduler × mix × runtime × kv × power grid."""
    report = FairnessReport(spec=spec)
    for mix in spec.mixes:
        for runtime in spec.runtimes:
            for kv_policy in spec.kv_policies:
                for power_mode in spec.power_modes:
                    for scheduler in spec.schedulers:
                        report.rows.append(_run_point(
                            spec, scheduler, mix, runtime, kv_policy,
                            power_mode))
    return report


def fairness_rows_csv(report: FairnessReport) -> str:
    """The rows as canonical CSV text (the determinism-gate artifact)."""
    if not report.rows:
        return ""
    cols = list(report.rows[0])
    lines = [",".join(cols)]
    for r in report.rows:
        lines.append(",".join(str(r[c]) for c in r))
    return "\n".join(lines) + "\n"
