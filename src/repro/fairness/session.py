"""Multi-turn sessions: Interactions of staged requests with context growth.

Real conversational traffic is not independent single-shot requests: a
user opens an *interaction*, and each turn's prompt carries the whole
conversation so far (prior prompts plus the assistant's replies) plus
the new user message.  :class:`Interaction` models exactly that — an
ordered list of pre-materialised :class:`SessionTurn` templates whose
prompt lengths grow cumulatively, staged one at a time: turn *k+1* is
only injected after turn *k* completes and the user's think-time gap
elapses (:meth:`~repro.cluster.cluster.EdgeCluster.run_interactions`
drives the staging on the DES clock).

Because each turn's ``prompt_ids`` extend the previous turn's prompt
verbatim, session turns are natural shared-prefix sharers: on the paged
backend the radix cache serves turn *k*'s context from the blocks turn
*k-1* left behind — if the router lands the turn on the same node
(:class:`~repro.cluster.router.PrefixAffinityRouter`).

:func:`session_workload` generates a deterministic interaction trace
over the existing :class:`~repro.cluster.workload.TenantProfile` mix,
sharing the tenant-draw normalisation with ``multi_tenant_workload``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.workload import (
    DEFAULT_TENANTS,
    ClusterRequest,
    TenantProfile,
    normalized_weights,
)
from repro.errors import WorkloadError


@dataclass(frozen=True)
class SessionTurn:
    """One pre-materialised turn template of an interaction.

    ``input_tokens`` is the *cumulative* prompt length this turn
    submits (all prior turns' prompts and outputs plus
    ``new_input_tokens`` of fresh user text); ``think_time_s`` is the
    user gap between the previous turn's completion and this turn's
    injection.
    """

    new_input_tokens: int
    output_tokens: int
    think_time_s: float
    input_tokens: int
    prompt_ids: Optional[Tuple[int, ...]] = None


@dataclass
class Interaction:
    """An ordered multi-turn session owned by one tenant.

    Turns are staged: :meth:`next_request` materialises one turn as a
    :class:`~repro.cluster.workload.ClusterRequest` and advances the
    cursor; the cluster injects the next turn only after the previous
    one completes plus the think-time gap.  A rejected or throttled
    turn abandons the whole session — every token already served to it
    was wasted (the accounting ledger charges it as such).
    """

    interaction_id: int
    tenant: str
    arrival_s: float
    turns: List[SessionTurn]
    #: Index of the next turn to stage.
    next_turn: int = 0
    #: True once a turn was rejected/throttled: remaining turns never run.
    abandoned: bool = False
    #: The requests actually injected for this session, in turn order.
    requests: List[ClusterRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.turns:
            raise WorkloadError("an interaction needs at least one turn")

    @property
    def has_next(self) -> bool:
        return not self.abandoned and self.next_turn < len(self.turns)

    @property
    def completed(self) -> bool:
        """Every turn injected and finished (never true once abandoned)."""
        return (not self.abandoned
                and self.next_turn >= len(self.turns)
                and all(r.finish_s is not None for r in self.requests))

    def peek_turn(self) -> Optional[SessionTurn]:
        return self.turns[self.next_turn] if self.has_next else None

    def next_request(self, req_id: int,
                     arrival_s: float) -> Optional[ClusterRequest]:
        """Materialise the next staged turn (None when exhausted)."""
        turn = self.peek_turn()
        if turn is None:
            return None
        r = ClusterRequest(
            req_id=req_id, arrival_s=arrival_s,
            input_tokens=turn.input_tokens,
            output_tokens=turn.output_tokens,
            prompt_ids=turn.prompt_ids,
            tenant=self.tenant,
            interaction_id=self.interaction_id,
            turn=self.next_turn,
        )
        self.next_turn += 1
        self.requests.append(r)
        return r

    def mark_abandoned(self) -> None:
        self.abandoned = True


def session_workload(
    rate_per_s: float,
    n_interactions: int,
    tenants: Sequence[TenantProfile] = DEFAULT_TENANTS,
    mean_turns: float = 3.0,
    max_turns: int = 8,
    mean_think_time_s: float = 2.0,
    seed: int = 0,
    with_prompt_ids: bool = True,
) -> List[Interaction]:
    """Seeded Poisson stream of multi-turn interactions over a tenant mix.

    Interaction arrivals are Poisson at ``rate_per_s``; the owning
    tenant is drawn from the normalised profile weights (the same
    helper ``multi_tenant_workload`` uses).  Turn counts are
    ``1 + Poisson(mean_turns - 1)`` clamped to ``max_turns``; per-turn
    shapes come from the tenant's length profile and think times are
    exponential with mean ``mean_think_time_s``.  With
    ``with_prompt_ids`` each turn carries concrete token IDs extending
    the previous turn's prompt (prior context plus synthetic assistant
    output plus the new user text), so turns share radix prefixes.
    """
    if rate_per_s <= 0 or n_interactions < 1:
        raise WorkloadError("need a positive rate and >= 1 interaction")
    if mean_turns < 1 or max_turns < 1:
        raise WorkloadError("need mean_turns >= 1 and max_turns >= 1")
    if mean_think_time_s < 0:
        raise WorkloadError("mean_think_time_s must be >= 0")
    weights = normalized_weights(tenants)
    rng = np.random.default_rng(seed)
    t = 0.0
    out: List[Interaction] = []
    for i in range(n_interactions):
        t += float(rng.exponential(1.0 / rate_per_s))
        tenant = tenants[int(rng.choice(len(tenants), p=weights))]
        n_turns = min(max_turns, 1 + int(rng.poisson(max(0.0, mean_turns - 1))))
        turns: List[SessionTurn] = []
        context = 0
        ids: Tuple[int, ...] = ()
        for k in range(n_turns):
            new_in, new_out = tenant.sample_shape(rng)
            think = (0.0 if k == 0 or mean_think_time_s == 0
                     else float(rng.exponential(mean_think_time_s)))
            if with_prompt_ids:
                # This turn's prompt = full context so far + new user
                # text; afterwards the (synthetic) assistant reply joins
                # the context, so turn k+1 extends turn k's prompt AND
                # its output — the natural radix-prefix chain.
                ids = ids + tuple(
                    int(v) for v in rng.integers(0, 32000, size=new_in))
                prompt_ids: Optional[Tuple[int, ...]] = ids
                ids = ids + tuple(
                    int(v) for v in rng.integers(32000, 64000, size=new_out))
            else:
                prompt_ids = None
            turns.append(SessionTurn(
                new_input_tokens=new_in,
                output_tokens=new_out,
                think_time_s=think,
                input_tokens=context + new_in,
                prompt_ids=prompt_ids,
            ))
            context += new_in + new_out
        out.append(Interaction(interaction_id=i, tenant=tenant.name,
                               arrival_s=t, turns=turns))
    return out


def session_requests(interactions: Sequence[Interaction]
                     ) -> List[ClusterRequest]:
    """All requests injected so far across ``interactions`` (turn order)."""
    out: List[ClusterRequest] = []
    for inter in interactions:
        out.extend(inter.requests)
    return out
