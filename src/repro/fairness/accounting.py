"""Wasted-token accounting: a per-tenant conservation ledger.

Every decode token a node produces is billed somewhere — the question
fair serving asks is *to whom, usefully?*  :func:`build_ledger` folds a
run's requests into one :class:`TenantLedger` per tenant with an exact
conservation identity:

``produced_tokens == served_tokens + wasted_tokens``

- *produced* — every decode token generated for the tenant, including
  tokens later thrown away (``generated + lost_tokens``; this matches
  the nodes' ``served_tokens`` meters, which count production);
- *served* — tokens delivered by completed requests whose session was
  not abandoned (useful work);
- *wasted* — replayed tokens (preemption sacrifice, crash KV loss),
  tokens of requests that never finished, tokens served to turns of
  interactions later abandoned (the FairServe waste notion: the
  conversation died, so its context tokens bought nothing), and tokens
  an SLM generated for requests the cascade's quality gate escalated
  (``repro.sustain``: the answer was re-served by the LLM, so the
  small model's draft bought nothing).

Throttled requests are rejected before placement and must satisfy
``produced == 0``; their turned-away demand lands in
``throttled_tokens``, closing the books: demand in equals service out
plus waste plus throttled-away, per tenant.
:func:`conservation_violations` checks all of it and is asserted in
tests and the fairness sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

FrozenIds = frozenset


@dataclass
class TenantLedger:
    """One tenant's token books for a run (conservation-checked)."""

    tenant: str
    weight: float = 1.0
    injected: int = 0
    completed: int = 0
    rejected: int = 0
    throttled: int = 0
    #: Total demand (prompt + requested output) over injected requests.
    demand_tokens: int = 0
    #: Demand turned away by the throttle (subset of ``demand_tokens``).
    throttled_tokens: int = 0
    #: Requested output tokens over non-throttled injected requests —
    #: the denominator of the SLO-good share.
    admitted_output_tokens: int = 0
    #: Decode tokens produced for this tenant (``generated + lost``).
    produced_tokens: int = 0
    #: Tokens delivered by completed, non-abandoned requests.
    served_tokens: int = 0
    #: Produced minus served: replays, unfinished, abandoned sessions.
    wasted_tokens: int = 0
    #: Served tokens of requests that met every SLO deadline.
    good_tokens: int = 0

    @property
    def slo_good_share(self) -> float:
        """SLO-attained fraction of the tenant's admitted output demand."""
        if self.admitted_output_tokens <= 0:
            return 0.0
        return self.good_tokens / self.admitted_output_tokens

    def as_row(self) -> Dict:
        return {
            "tenant": self.tenant,
            "weight": self.weight,
            "injected": self.injected,
            "completed": self.completed,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "demand_tokens": self.demand_tokens,
            "throttled_tokens": self.throttled_tokens,
            "produced_tokens": self.produced_tokens,
            "served_tokens": self.served_tokens,
            "wasted_tokens": self.wasted_tokens,
            "good_tokens": self.good_tokens,
            "slo_good_share": round(self.slo_good_share, 4),
        }


def build_ledger(
    requests: Sequence,
    abandoned_interactions: FrozenIds = frozenset(),
    slo_met: Optional[Callable] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, TenantLedger]:
    """Fold request outcomes into per-tenant ledgers (sorted by tenant).

    ``abandoned_interactions`` holds the interaction IDs whose sessions
    were abandoned: even *completed* turns of those sessions count as
    wasted (their context died with the conversation).  ``slo_met`` is
    a predicate over completed requests (typically ``SLOSpec.met``);
    without it ``good_tokens`` equals ``served_tokens``.
    """
    ledgers: Dict[str, TenantLedger] = {}
    for r in requests:
        tenant = getattr(r, "tenant", "tenant0")
        led = ledgers.setdefault(tenant, TenantLedger(tenant=tenant))
        if weights and tenant in weights:
            led.weight = float(weights[tenant])
        demand = r.input_tokens + r.output_tokens
        led.injected += 1
        led.demand_tokens += demand
        if getattr(r, "throttled", False):
            led.throttled += 1
            led.throttled_tokens += demand
            # Throttled before placement: nothing was produced.  A
            # violation here means the throttle ran after serving
            # started — conservation_violations flags it.
            led.produced_tokens += r.generated + r.lost_tokens
            continue
        led.admitted_output_tokens += r.output_tokens
        if getattr(r, "rejected", False):
            led.rejected += 1
        produced = r.generated + r.lost_tokens
        led.produced_tokens += produced
        in_dead_session = (
            getattr(r, "interaction_id", None) in abandoned_interactions)
        finished = r.finish_s is not None
        if getattr(r, "escalated", False):
            # The cascade gate failed this SLM draft: everything it
            # produced is waste, the LLM twin carries the service.
            if finished:
                led.completed += 1
            led.wasted_tokens += produced
        elif finished and not in_dead_session:
            led.completed += 1
            led.served_tokens += r.generated
            led.wasted_tokens += r.lost_tokens
            if slo_met is None or slo_met(r):
                led.good_tokens += r.generated
        else:
            if finished:
                led.completed += 1
            led.wasted_tokens += produced
    return dict(sorted(ledgers.items()))


def conservation_violations(
    ledgers: Mapping[str, TenantLedger],
    node_served_tokens: Optional[int] = None,
) -> List[str]:
    """Check the token books; returns human-readable violations (empty
    list = balanced).

    Per tenant: ``produced == served + wasted`` and throttled requests
    produced nothing (``throttled > 0`` with all demand throttled away
    implies ``produced == 0``).  Fleet-wide, when the caller passes the
    nodes' production meter sum: ``sum(produced) == node_served_tokens``.
    """
    out: List[str] = []
    for tenant, led in ledgers.items():
        if led.produced_tokens != led.served_tokens + led.wasted_tokens:
            out.append(
                f"{tenant}: produced {led.produced_tokens} != served "
                f"{led.served_tokens} + wasted {led.wasted_tokens}")
        if led.throttled == led.injected and led.produced_tokens != 0:
            out.append(
                f"{tenant}: fully throttled but produced "
                f"{led.produced_tokens} tokens")
        if led.throttled_tokens > led.demand_tokens:
            out.append(
                f"{tenant}: throttled_tokens {led.throttled_tokens} exceeds "
                f"demand {led.demand_tokens}")
    if node_served_tokens is not None:
        produced = sum(l.produced_tokens for l in ledgers.values())
        if produced != node_served_tokens:
            out.append(
                f"fleet: ledger production {produced} != node production "
                f"meters {node_served_tokens}")
    return out
