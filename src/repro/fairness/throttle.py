"""Over-issued-token throttling: per-tenant token-rate budgets.

A flooding tenant can starve the queue before any fair scheduler gets
to reorder it — admission-time throttling is the complementary control.
:class:`TokenThrottle` gives each tenant a token bucket (``rate_per_s``
tokens per second of demand, up to ``burst`` banked) refilled lazily
and deterministically on the DES clock: every decision is a pure
function of the last-refill timestamp, so seeded runs are
bit-reproducible.

A request is charged its *demand* (prompt + requested output tokens) at
injection; if the tenant's bucket cannot cover it the request is
rejected with reason ``"throttle"`` — whole-request semantics, no
partial admission — and the turned-away demand is counted per tenant
for the conservation ledger (:mod:`repro.fairness.accounting`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError


@dataclass
class TenantBucket:
    """One tenant's bucket: level at ``stamp_s`` (lazy refill)."""

    level: float
    stamp_s: float
    #: Lifetime counters for the conservation ledger.
    throttled_requests: int = 0
    throttled_tokens: int = 0


@dataclass
class TokenThrottle:
    """Deterministic per-tenant token buckets on the simulation clock.

    ``rate_per_s`` is the default demand budget (tokens/s) for every
    tenant; ``burst_s`` sizes the bucket as that many seconds of rate
    (buckets start full, so a tenant can always open with one burst).
    ``rates`` overrides the rate per tenant — weights-proportional
    budgets are the natural choice for weighted tenant mixes.
    """

    rate_per_s: float
    burst_s: float = 2.0
    rates: Optional[Mapping[str, float]] = None
    _buckets: Dict[str, TenantBucket] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigError("throttle rate_per_s must be positive")
        if self.burst_s <= 0:
            raise ConfigError("throttle burst_s must be positive")
        for tenant, r in (self.rates or {}).items():
            if r <= 0:
                raise ConfigError(
                    f"throttle rate for tenant {tenant!r} must be positive")

    def _rate(self, tenant: str) -> float:
        if self.rates is not None and tenant in self.rates:
            return float(self.rates[tenant])
        return self.rate_per_s

    def _bucket(self, tenant: str, now: float) -> TenantBucket:
        b = self._buckets.get(tenant)
        rate = self._rate(tenant)
        cap = rate * self.burst_s
        if b is None:
            b = self._buckets[tenant] = TenantBucket(level=cap, stamp_s=now)
            return b
        if now > b.stamp_s:
            b.level = min(cap, b.level + (now - b.stamp_s) * rate)
            b.stamp_s = now
        return b

    def admit(self, tenant: str, tokens: int, now: float) -> bool:
        """Charge ``tokens`` of demand; False means throttled (no
        partial take — the bucket is left to keep refilling)."""
        b = self._bucket(tenant, now)
        if b.level >= tokens:
            b.level -= tokens
            return True
        b.throttled_requests += 1
        b.throttled_tokens += tokens
        return False

    def level(self, tenant: str, now: float) -> float:
        """Current bucket level (refilled to ``now``), for tests."""
        return self._bucket(tenant, now).level

    @property
    def throttled_requests(self) -> int:
        return sum(b.throttled_requests for b in self._buckets.values())

    @property
    def throttled_tokens(self) -> int:
        return sum(b.throttled_tokens for b in self._buckets.values())

    def per_tenant(self) -> Dict[str, TenantBucket]:
        """Tenant -> bucket, sorted by tenant name (stable reporting)."""
        return dict(sorted(self._buckets.items()))
