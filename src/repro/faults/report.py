"""Chaos experiments: a faulted run against its fault-free twin.

:func:`run_chaos` executes one scenario twice on identical fleets and
identical (regenerated-from-seed) workloads — once clean, once with the
seeded fault schedule injected — and folds the pair into a
:class:`ChaosReport`:

- **availability** — up node-seconds over fleet node-seconds (exactly
  1.0 on the clean twin, by construction);
- **MTTR** — mean repair time over completed crash episodes;
- **goodput ratio** — SLO-meeting completions per second under fault,
  relative to the fault-free baseline (the honest "how much service did
  the chaos cost" number);
- **retry amplification** — placement attempts per injected request
  (1.0 when every request lands first try);
- **per-fault-class energy overhead** — the faulted run's extra fleet
  joules, attributed to classes proportionally to their active
  node-seconds (classes overlap; proportional split is the defensible
  default).

Everything in the report is a deterministic function of the
:class:`ChaosSpec` — no wall-clock, no global RNG — so
:meth:`ChaosSpec.cache_key` content-addresses the whole experiment
through the same SHA-256 machinery as the result cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import EdgeCluster, NodeSpec
from repro.cluster.slo import ClusterReport, SLOSpec
from repro.cluster.workload import poisson_workload
from repro.core.cache import COST_MODEL_VERSION, payload_fingerprint
from repro.errors import ConfigError

from repro.faults.inject import FaultInjector
from repro.faults.recovery import (FallbackConfig, PrecisionFallback,
                                   RetryPolicy)
from repro.faults.schedule import (CLASS_ORDER, FAULT_MODEL_VERSION,
                                   FaultSchedule, FaultScheduleSpec,
                                   generate_schedule)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos experiment: fleet + workload + fault schedule."""

    devices: Tuple[str, ...] = ("jetson-orin-agx-64gb",
                                "jetson-orin-agx-64gb")
    model: str = "llama"
    precision: str = "int8"
    policy: str = "jsq"
    max_batch: int = 8
    max_queue: int = 256
    #: KV lifecycle policy under preemption (see repro.kvtier); folded
    #: into the cache key via asdict like every other field.
    kv_policy: str = "sacrifice"

    rate_per_s: float = 2.0
    n_requests: int = 80
    input_tokens: int = 32
    output_tokens: int = 64
    workload_seed: int = 0

    faults: FaultScheduleSpec = field(default_factory=FaultScheduleSpec)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Attach the INT8->INT4 precision-fallback controller to both twins.
    enable_fallback: bool = False

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigError("chaos spec needs at least one device")
        if self.faults.n_nodes > len(self.devices):
            raise ConfigError(
                f"fault schedule targets {self.faults.n_nodes} nodes but "
                f"the fleet has {len(self.devices)}"
            )
        if self.rate_per_s <= 0 or self.n_requests < 1:
            raise ConfigError("need a positive rate and >= 1 request")

    def cache_key(self) -> str:
        """Content address of the full experiment (spec + model versions)."""
        return payload_fingerprint({
            "chaos_spec": dataclasses.asdict(self),
            "cost_model_version": COST_MODEL_VERSION,
            "fault_model_version": FAULT_MODEL_VERSION,
        })


@dataclass
class ChaosReport:
    """The faulted/fault-free pair, folded into resilience metrics."""

    spec: ChaosSpec
    cache_key: str
    schedule_fingerprint: str
    n_episodes: Dict[str, int]
    injected_trace: List[tuple]
    baseline: ClusterReport
    faulted: ClusterReport
    availability: float
    mttr_s: float
    retries: int
    requeues: int
    lost_tokens: int
    retry_amplification: float
    goodput_ratio: float
    energy_overhead_j: float
    energy_overhead_by_class: Dict[str, float]

    def as_row(self) -> Dict:
        """Flat summary row (deterministic: rounded, insertion-ordered)."""
        row = {
            "seed": self.spec.faults.seed,
            "cache_key": self.cache_key[:16],
            "schedule": self.schedule_fingerprint[:16],
            "episodes": sum(self.n_episodes.values()),
            "availability": round(self.availability, 4),
            "mttr_s": round(self.mttr_s, 2),
            "retries": self.retries,
            "requeues": self.requeues,
            "lost_tokens": self.lost_tokens,
            "retry_amp": round(self.retry_amplification, 3),
            "goodput_ratio": round(self.goodput_ratio, 3),
            "baseline_goodput_rps": round(self.baseline.goodput_rps, 3),
            "faulted_goodput_rps": round(self.faulted.goodput_rps, 3),
            "energy_overhead_j": round(self.energy_overhead_j, 1),
        }
        # Every class column is always present (0.0 when the class drew
        # no episodes), so rows across scenarios share one schema.
        for cls in CLASS_ORDER:
            row[f"overhead_{cls.value}_j"] = round(
                self.energy_overhead_by_class.get(cls.value, 0.0), 1)
        return row

    def trace_lines(self) -> List[str]:
        """The applied-fault transcript, one canonical line per edge."""
        out = []
        for (t, node, fault, action, applied, detail) in self.injected_trace:
            mark = "+" if applied else "-"
            line = f"{t:10.3f}s {mark} node{node} {fault}.{action}"
            if detail:
                line += f" ({detail})"
            out.append(line)
        return out


def _build_cluster(spec: ChaosSpec, observer=None) -> EdgeCluster:
    from repro.cluster.fleet import FleetSpec

    fleet = FleetSpec.of(
        [NodeSpec(d, max_batch=spec.max_batch, max_queue=spec.max_queue,
                  kv_policy=spec.kv_policy)
         for d in spec.devices],
        model=spec.model, precision=spec.precision, policy=spec.policy)
    return EdgeCluster.of(fleet, retry=spec.retry, observer=observer)


def _workload(spec: ChaosSpec):
    return poisson_workload(spec.rate_per_s, spec.n_requests,
                            input_tokens=spec.input_tokens,
                            output_tokens=spec.output_tokens,
                            seed=spec.workload_seed)


def run_chaos(spec: ChaosSpec,
              slo: Optional[SLOSpec] = None,
              observer=None) -> ChaosReport:
    """Run the fault-free twin, then the faulted run; fold the pair.

    When an ``observer`` (:class:`repro.obs.Observer`) is given it is
    attached to the *faulted* twin only — the interesting telemetry is
    what the chaos did, and the clean twin staying unobserved keeps the
    baseline comparable with non-chaos cluster runs.
    """
    schedule: FaultSchedule = generate_schedule(spec.faults)

    baseline_cluster = _build_cluster(spec)
    if slo is not None:
        baseline_cluster.slo = slo
    if spec.enable_fallback:
        baseline_cluster.attach_service(PrecisionFallback(
            baseline_cluster.env, baseline_cluster.nodes, FallbackConfig()))
    baseline = baseline_cluster.run(_workload(spec))

    faulted_cluster = _build_cluster(spec, observer=observer)
    if slo is not None:
        faulted_cluster.slo = slo
    injector = FaultInjector(faulted_cluster.env, faulted_cluster.nodes,
                             schedule)
    faulted_cluster.attach_injector(injector)
    if spec.enable_fallback:
        faulted_cluster.attach_service(PrecisionFallback(
            faulted_cluster.env, faulted_cluster.nodes, FallbackConfig()))
    faulted = faulted_cluster.run(_workload(spec))

    n = spec.n_requests
    amplification = (n + faulted.retries + faulted.requeues) / n
    goodput_ratio = (faulted.goodput_rps / baseline.goodput_rps
                     if baseline.goodput_rps > 0 else 0.0)

    overhead_j = faulted.fleet_energy_j - baseline.fleet_energy_j
    active = injector.class_active_seconds(until_s=faulted.makespan_s)
    total_active = sum(active.values())
    by_class = {
        cls.value: (overhead_j * active.get(cls.value, 0.0) / total_active
                    if total_active > 0 else 0.0)
        for cls in CLASS_ORDER
    }

    episodes: Dict[str, int] = {}
    for ep in schedule.episodes:
        episodes[ep.fault.value] = episodes.get(ep.fault.value, 0) + 1

    return ChaosReport(
        spec=spec,
        cache_key=spec.cache_key(),
        schedule_fingerprint=schedule.fingerprint(),
        n_episodes=episodes,
        injected_trace=injector.applied_trace(),
        baseline=baseline,
        faulted=faulted,
        availability=faulted.availability,
        mttr_s=faulted.mttr_s,
        retries=faulted.retries,
        requeues=faulted.requeues,
        lost_tokens=faulted.lost_tokens,
        retry_amplification=amplification,
        goodput_ratio=goodput_ratio,
        energy_overhead_j=overhead_j,
        energy_overhead_by_class=by_class,
    )
