"""Resilience mechanisms that answer the injected faults.

Three layers, smallest hammer first:

- :class:`RetryPolicy` / :class:`RetryBudget` — placement retry with
  capped exponential backoff and a fleet-wide retry budget, so a
  brown-out fleet degrades to fast rejection instead of melting under
  retry amplification (the classic metastable-failure trap).
- requeue-on-crash — orphaned requests (their KV state died with the
  node) are reset for replay and re-placed through the same retry
  path, with a per-request requeue cap.  The re-prefill cost is real
  and accounted: the serving node pays the prompt again, and the
  request's ``lost_tokens`` / ``replays`` counters feed the chaos
  report's amplification metrics.
- :class:`PrecisionFallback` — graceful degradation: a node whose KV
  pressure stays above threshold for ``patience`` consecutive control
  periods steps its weights down the precision ladder (INT8 -> INT4 by
  default), shrinking the weight footprint and growing the KV budget.
  One-way per run: re-quantising upward mid-serve is not a thing real
  deployments do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigError
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import ClusterNode


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with bounded total retry volume."""

    #: Placement rounds after the first attempt (per admission pass).
    max_retries: int = 2
    #: First backoff; round ``k`` waits ``min(cap, base * 2**k)``.
    base_backoff_s: float = 0.25
    cap_backoff_s: float = 4.0
    #: Times one request may be re-placed after losing its node.
    max_requeues: int = 3
    #: Fleet-wide cap on backoff retries per run (None = unlimited).
    #: When spent, failed placements reject immediately (fail fast).
    retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_requeues < 0:
            raise ConfigError("retry and requeue caps must be >= 0")
        if self.base_backoff_s <= 0 or self.cap_backoff_s < self.base_backoff_s:
            raise ConfigError(
                "need 0 < base_backoff_s <= cap_backoff_s"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ConfigError("retry_budget must be >= 0 or None")

    def delay_s(self, attempt: int) -> float:
        """Backoff before re-placing after failed attempt ``attempt``."""
        return min(self.cap_backoff_s, self.base_backoff_s * (2.0 ** attempt))


class RetryBudget:
    """Mutable per-run counter drawn down by every backoff retry."""

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        """Consume one retry; False once the budget is exhausted."""
        if self.limit is not None and self.spent >= self.limit:
            return False
        self.spent += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit


#: Default degradation ladder.  Only quantized formats degrade: dropping
#: FP16 to INT8 mid-run would *slow the node down* on the edge (the
#: paper's Fig 3/11 finding) while saving little KV headroom.
DEFAULT_LADDER: Mapping[Precision, Precision] = {
    Precision.INT8: Precision.INT4,
}


@dataclass(frozen=True)
class FallbackConfig:
    """Control-loop tuning for :class:`PrecisionFallback`."""

    #: KV pressure (committed / budget) that counts as sustained.
    pressure_threshold: float = 0.95
    #: Consecutive hot control periods before degrading one rung.
    patience: int = 3
    period_s: float = 2.0
    ladder: Mapping[Precision, Precision] = field(
        default_factory=lambda: dict(DEFAULT_LADDER)
    )

    def __post_init__(self) -> None:
        if self.pressure_threshold <= 0:
            raise ConfigError("pressure_threshold must be positive")
        if self.patience < 1:
            raise ConfigError("patience must be >= 1")
        if self.period_s <= 0:
            raise ConfigError("control period must be positive")
        for src, dst in self.ladder.items():
            if src is dst:
                raise ConfigError(f"ladder maps {src.value} to itself")


@dataclass(frozen=True)
class Degradation:
    """One precision downshift, for the audit trail."""

    time_s: float
    node_id: int
    from_precision: str
    to_precision: str
    pressure: float


class PrecisionFallback:
    """Periodic per-node precision-degradation controller.

    Same lifecycle contract as
    :class:`~repro.cluster.autoscale.PowerModeAutoscaler` (``start`` /
    ``stop``; attach via ``EdgeCluster.attach_service``).
    """

    def __init__(self, env: Environment, nodes: Sequence["ClusterNode"],
                 config: Optional[FallbackConfig] = None):
        if not nodes:
            raise ConfigError("precision fallback needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self.config = config or FallbackConfig()
        self._hot_periods: Dict[int, int] = {n.node_id: 0 for n in self.nodes}
        self.history: List[Degradation] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name="precision-fallback")

    def stop(self) -> None:
        self._running = False

    def _control_step(self) -> None:
        cfg = self.config
        for node in self.nodes:
            if not node.healthy:
                self._hot_periods[node.node_id] = 0
                continue
            pressure = node.kv_pressure
            if pressure < cfg.pressure_threshold:
                self._hot_periods[node.node_id] = 0
                continue
            self._hot_periods[node.node_id] += 1
            target = cfg.ladder.get(node.precision)
            if target is None:
                continue  # bottom of the ladder (or not degradable)
            if self._hot_periods[node.node_id] >= cfg.patience:
                before = node.precision
                node.set_precision(target)
                self._hot_periods[node.node_id] = 0
                self.history.append(Degradation(
                    self.env.now, node.node_id,
                    before.value, target.value, pressure,
                ))

    def _run(self):
        while self._running:
            yield self.env.timeout(self.config.period_s)
            if not self._running:
                break
            self._control_step()
