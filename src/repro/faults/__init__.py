"""repro.faults — deterministic fault injection + resilience.

Seeded fault schedules (:mod:`~repro.faults.schedule`), a replayable
injector over the shared DES (:mod:`~repro.faults.inject`), the
resilience policies that answer the faults
(:mod:`~repro.faults.recovery`), and baseline-paired chaos experiments
(:mod:`~repro.faults.report`).

Everything is exported lazily: the cluster layer imports
``repro.faults.recovery`` while :mod:`repro.faults.inject` and
:mod:`repro.faults.report` import the cluster layer back, so an eager
``__init__`` would be a cycle.  ``from repro.faults import X`` still
works for every public name.
"""

from __future__ import annotations

import importlib
from typing import List

_EXPORTS = {
    # schedule
    "FAULT_MODEL_VERSION": "schedule",
    "CLASS_ORDER": "schedule",
    "FaultClass": "schedule",
    "FaultEpisode": "schedule",
    "FaultEvent": "schedule",
    "FaultSchedule": "schedule",
    "FaultScheduleSpec": "schedule",
    "generate_schedule": "schedule",
    "schedule_from_episodes": "schedule",
    # inject
    "AppliedFault": "inject",
    "FaultInjector": "inject",
    # recovery
    "DEFAULT_LADDER": "recovery",
    "Degradation": "recovery",
    "FallbackConfig": "recovery",
    "PrecisionFallback": "recovery",
    "RetryBudget": "recovery",
    "RetryPolicy": "recovery",
    # report
    "ChaosReport": "report",
    "ChaosSpec": "report",
    "run_chaos": "report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(f"{__name__}.{module}"), name)


def __dir__() -> List[str]:
    return __all__
