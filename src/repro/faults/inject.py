"""The fault injector: replays a schedule against live cluster nodes.

A :class:`FaultInjector` is one DES process that walks the schedule's
time-sorted begin/end edges with absolute timeouts and pokes the target
node's fault surface:

====================  ==============================================
fault class           begin / end action on the node
====================  ==============================================
``crash``             ``node.crash()`` / ``node.restart()``
``brownout``          ``node.apply_mode(<forced mode>)`` / restore
                      the snapshot taken at begin
``oom``               ``node.set_kv_shrink(f)`` / ``set_kv_shrink(1)``
``straggler``         ``node.slowdown = m`` / ``node.slowdown = 1``
``thermal``           ``node.thermal.ambient_c += d`` / ``-= d``
====================  ==============================================

Every edge — applied or skipped — lands in :attr:`FaultInjector.trace`
as an :class:`AppliedFault`, so the injected history is itself part of
the deterministic chaos output.  Edges can be *skipped* when the
schedule asks for something already moot (crashing a node that a
different episode already took down, ending a brownout on a node that
crashed mid-episode and rebooted into its default mode — the restore
would be wrong, so it is dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.autoscale import clamp_mode_to_device
from repro.cluster.node import ClusterNode
from repro.errors import ConfigError
from repro.obs import kinds
from repro.obs.span import NO_SPAN
from repro.power.modes import PowerMode, get_power_mode
from repro.sim.environment import Environment

from repro.faults.schedule import FaultClass, FaultEvent, FaultSchedule


@dataclass(frozen=True)
class AppliedFault:
    """One injector action, as it actually landed."""

    time_s: float
    node_id: int
    fault: str
    action: str   # "begin" | "end"
    applied: bool
    detail: str = ""

    def as_tuple(self) -> tuple:
        return (round(self.time_s, 9), self.node_id, self.fault,
                self.action, self.applied, self.detail)


class FaultInjector:
    """Drives one :class:`FaultSchedule` against a fleet of nodes.

    Same lifecycle contract as the autoscaler (``start`` / ``stop``;
    attach via ``EdgeCluster.attach_injector``).  The injector never
    creates faults of its own — it is a pure, replayable transcript
    player, which is what keeps chaos runs bit-reproducible.
    """

    def __init__(self, env: Environment, nodes: Sequence[ClusterNode],
                 schedule: FaultSchedule):
        if not nodes:
            raise ConfigError("fault injector needs at least one node")
        if schedule.spec.n_nodes > len(nodes):
            raise ConfigError(
                f"schedule targets {schedule.spec.n_nodes} nodes but the "
                f"fleet has {len(nodes)}"
            )
        self.env = env
        self.nodes: Dict[int, ClusterNode] = {n.node_id: n for n in nodes}
        self.schedule = schedule
        #: Shared observability sink (all cluster nodes carry the same
        #: observer); fault episodes land on ``node{i}.faults`` tracks.
        self.obs = next(iter(self.nodes.values())).obs
        #: (node_id, fault class) -> open episode span id.
        self._episode_spans: Dict[Tuple[int, str], int] = {}
        #: Deterministic transcript of every edge, applied or skipped.
        self.trace: List[AppliedFault] = []
        #: node_id -> operating point snapshot taken at brownout begin.
        self._brownout_restore: Dict[int, PowerMode] = {}
        #: node_id -> ambient delta currently applied (thermal episodes).
        self._ambient_applied: Dict[int, float] = {}
        self._running = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name="fault-injector")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        for ev in self.schedule.events:
            if not self._running:
                return
            if ev.time_s > self.env.now:
                yield self.env.timeout_at(ev.time_s)
            if not self._running:
                return
            self._apply(ev)

    # -- edge handlers -----------------------------------------------------
    def _record(self, ev: FaultEvent, applied: bool, detail: str = "") -> None:
        self.trace.append(AppliedFault(
            time_s=self.env.now, node_id=ev.node_id, fault=ev.fault.value,
            action=ev.action, applied=applied, detail=detail,
        ))
        if not self.obs.enabled:
            return
        name = kinds.fault_kind(ev.fault.value)
        track = f"node{ev.node_id}.faults"
        key = (ev.node_id, ev.fault.value)
        if not applied:
            self.obs.instant(name, cat=kinds.CAT_FAULT, track=track,
                             action=ev.action, skipped=detail or "moot")
        elif ev.action == "begin":
            self._episode_spans[key] = self.obs.begin(
                name, cat=kinds.CAT_FAULT, track=track,
                magnitude=ev.magnitude, detail=detail)
            self.obs.metrics.counter("faults_injected_total",
                                     fault=ev.fault.value).inc()
        else:
            self.obs.end(self._episode_spans.pop(key, NO_SPAN), detail=detail)

    def _apply(self, ev: FaultEvent) -> None:
        node = self.nodes.get(ev.node_id)
        if node is None:
            self._record(ev, False, "no such node")
            return
        handler = {
            FaultClass.CRASH: self._crash,
            FaultClass.BROWNOUT: self._brownout,
            FaultClass.OOM: self._oom,
            FaultClass.STRAGGLER: self._straggler,
            FaultClass.THERMAL: self._thermal,
        }[ev.fault]
        handler(ev, node)

    def _crash(self, ev: FaultEvent, node: ClusterNode) -> None:
        if ev.action == "begin":
            if not node.healthy:
                self._record(ev, False, "already down")
                return
            orphans = node.crash()
            # A reboot wipes volatile operating state; pending restores
            # for this node no longer describe anything real.
            self._brownout_restore.pop(node.node_id, None)
            self._record(ev, True, f"orphaned={len(orphans)}")
        else:
            if node.healthy:
                self._record(ev, False, "already up")
                return
            node.restart()
            self._record(ev, True)

    def _brownout(self, ev: FaultEvent, node: ClusterNode) -> None:
        spec = self.schedule.spec
        if ev.action == "begin":
            if node.node_id in self._brownout_restore:
                self._record(ev, False, "already browned out")
                return
            self._brownout_restore[node.node_id] = node.current_mode_snapshot()
            forced = clamp_mode_to_device(
                get_power_mode(spec.brownout_mode), node.device)
            node.apply_mode(forced)
            self._record(ev, True, f"mode={forced.name}")
        else:
            restore = self._brownout_restore.pop(node.node_id, None)
            if restore is None:
                # Node crashed (and maybe rebooted) mid-brownout; the
                # reboot already restored the configured mode.
                self._record(ev, False, "no snapshot (crashed mid-episode)")
                return
            node.apply_mode(restore)
            self._record(ev, True)

    def _oom(self, ev: FaultEvent, node: ClusterNode) -> None:
        if ev.action == "begin":
            evicted = node.set_kv_shrink(ev.magnitude)
            self._record(ev, True, f"evicted={len(evicted)}")
        else:
            node.set_kv_shrink(1.0)
            self._record(ev, True)

    def _straggler(self, ev: FaultEvent, node: ClusterNode) -> None:
        if ev.action == "begin":
            node.slowdown = ev.magnitude
        else:
            node.slowdown = 1.0
        self._record(ev, True)

    def _thermal(self, ev: FaultEvent, node: ClusterNode) -> None:
        if ev.action == "begin":
            if self._ambient_applied.get(node.node_id):
                self._record(ev, False, "episode already active")
                return
            node.thermal.ambient_c += ev.magnitude
            self._ambient_applied[node.node_id] = ev.magnitude
            self._record(ev, True)
        else:
            delta = self._ambient_applied.pop(node.node_id, 0.0)
            if not delta:
                self._record(ev, False, "no active episode")
                return
            node.thermal.ambient_c -= delta
            self._record(ev, True)

    # -- reporting ---------------------------------------------------------
    def applied_trace(self) -> List[Tuple]:
        """Canonical rows (what determinism comparisons use)."""
        return [a.as_tuple() for a in self.trace]

    def class_active_seconds(self, until_s: Optional[float] = None) -> Dict[str, float]:
        """Wall-seconds each fault class was active across the fleet.

        Sums per-episode overlap with ``[0, until_s]`` (default: now),
        from the *schedule* — the denominator for per-class energy
        overhead attribution.
        """
        horizon = self.env.now if until_s is None else until_s
        out: Dict[str, float] = {}
        for ep in self.schedule.episodes:
            active = max(0.0, min(ep.end_s, horizon) - min(ep.start_s, horizon))
            out[ep.fault.value] = out.get(ep.fault.value, 0.0) + active
        return out
