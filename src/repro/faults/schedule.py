"""Seeded, deterministic fault schedules for chaos runs.

A schedule is a pure function of its :class:`FaultScheduleSpec`: every
episode's onset, duration and magnitude is drawn from per-(node, class)
``numpy`` substreams seeded as ``[seed, node_id, class_index]``, so

- the same seed always yields a bit-identical event list (the
  acceptance bar for ``repro chaos --seed N``),
- adding a fault class or a node never perturbs the other streams
  (substreams are independent, not one shared cursor), and
- the schedule is *cache-keyable*: :meth:`FaultSchedule.fingerprint`
  content-addresses the spec through the same SHA-256 machinery as
  :func:`repro.core.cache.spec_fingerprint`, so chaos results can live
  in the on-disk result cache next to fault-free runs.

Episodes of one class never overlap on one node (the next onset is
drawn from the previous episode's end), which keeps begin/end pairing
trivially well-formed for the injector.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Bump when schedule-generation semantics change in a way the spec
#: fields cannot see; every bump invalidates cached chaos fingerprints.
FAULT_MODEL_VERSION = "2026.08-faults-1"


class FaultClass(str, Enum):
    """The failure modes an edge fleet actually lives with."""

    #: Node process dies; KV state is lost, the board reboots.
    CRASH = "crash"
    #: Supply sag forces an nvpmodel downshift for the episode.
    BROWNOUT = "brownout"
    #: Co-located workload squeezes the KV headroom (transient OOM).
    OOM = "oom"
    #: Background interference stretches every engine step.
    STRAGGLER = "straggler"
    #: Heat wave / cooling loss raises ambient; throttling then
    #: *emerges* from the node's RC thermal model, it is not scripted.
    THERMAL = "thermal"


#: Fixed substream order — append only, never reorder (reordering would
#: silently change every schedule drawn from an existing seed).
CLASS_ORDER: Tuple[FaultClass, ...] = (
    FaultClass.CRASH,
    FaultClass.BROWNOUT,
    FaultClass.OOM,
    FaultClass.STRAGGLER,
    FaultClass.THERMAL,
)


@dataclass(frozen=True)
class FaultScheduleSpec:
    """Declarative chaos intensity; rates are per node, per minute."""

    seed: int = 0
    horizon_s: float = 120.0
    n_nodes: int = 2
    #: Minimum episode length (exponential draws are clipped up to it).
    min_duration_s: float = 1.0

    crash_rate_per_min: float = 0.0
    crash_downtime_s: float = 10.0

    brownout_rate_per_min: float = 0.0
    brownout_duration_s: float = 15.0
    #: nvpmodel mode forced while browned out (paper Table 2 names).
    brownout_mode: str = "H"

    oom_rate_per_min: float = 0.0
    oom_duration_s: float = 15.0
    #: Fraction of the nominal KV budget that survives the pressure.
    oom_shrink: float = 0.35

    straggler_rate_per_min: float = 0.0
    straggler_duration_s: float = 10.0
    #: Multiplier on engine-step wall time while interfered with.
    straggler_slowdown: float = 2.5

    thermal_rate_per_min: float = 0.0
    thermal_duration_s: float = 45.0
    thermal_ambient_delta_c: float = 25.0

    def __post_init__(self) -> None:
        from repro.power.modes import PAPER_POWER_MODES

        if self.horizon_s <= 0:
            raise ConfigError("fault horizon must be positive")
        if self.n_nodes < 1:
            raise ConfigError("fault schedule needs >= 1 node")
        if self.min_duration_s <= 0:
            raise ConfigError("min_duration_s must be positive")
        for cls in CLASS_ORDER:
            if self.rate_of(cls) < 0:
                raise ConfigError(f"{cls.value} rate must be >= 0")
            if self.mean_duration_of(cls) <= 0:
                raise ConfigError(f"{cls.value} duration must be positive")
        if not 0.0 < self.oom_shrink <= 1.0:
            raise ConfigError("oom_shrink must be in (0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ConfigError("straggler_slowdown must be >= 1")
        if self.thermal_ambient_delta_c <= 0:
            raise ConfigError("thermal_ambient_delta_c must be positive")
        if self.brownout_mode.strip().upper() not in PAPER_POWER_MODES:
            known = ", ".join(PAPER_POWER_MODES)
            raise ConfigError(
                f"unknown brownout mode {self.brownout_mode!r}; known: {known}"
            )

    # -- per-class views ---------------------------------------------------
    def rate_of(self, cls: FaultClass) -> float:
        return getattr(self, f"{cls.value}_rate_per_min")

    def mean_duration_of(self, cls: FaultClass) -> float:
        if cls is FaultClass.CRASH:
            return self.crash_downtime_s
        return getattr(self, f"{cls.value}_duration_s")

    def magnitude_of(self, cls: FaultClass) -> float:
        """The class's scalar knob (what ``FaultEvent.magnitude`` carries)."""
        return {
            FaultClass.CRASH: self.crash_downtime_s,
            FaultClass.BROWNOUT: 0.0,  # mode name rides on the spec
            FaultClass.OOM: self.oom_shrink,
            FaultClass.STRAGGLER: self.straggler_slowdown,
            FaultClass.THERMAL: self.thermal_ambient_delta_c,
        }[cls]


@dataclass(frozen=True)
class FaultEpisode:
    """One contiguous fault interval on one node."""

    episode_id: int
    node_id: int
    fault: FaultClass
    start_s: float
    duration_s: float
    magnitude: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class FaultEvent:
    """A begin or end edge of one episode, as the injector sees it."""

    time_s: float
    node_id: int
    fault: FaultClass
    action: str  # "begin" | "end"
    magnitude: float
    episode_id: int

    def as_tuple(self) -> tuple:
        """Canonical trace row (what determinism tests compare)."""
        return (round(self.time_s, 9), self.node_id, self.fault.value,
                self.action, self.magnitude, self.episode_id)


@dataclass(frozen=True)
class FaultSchedule:
    """Spec + the fully materialised, time-sorted event list."""

    spec: FaultScheduleSpec
    episodes: Tuple[FaultEpisode, ...]
    events: Tuple[FaultEvent, ...]

    def fingerprint(self) -> str:
        """Content address of this schedule (cache key component).

        Hashes the spec *and* the materialised episode list through the
        same SHA-256 canonical-JSON path as
        :func:`repro.core.cache.spec_fingerprint`.  For generated
        schedules the episodes are a pure function of the spec, so the
        digest doubles as a regression tripwire on the stream
        semantics; for hand-written schedules it is the only thing that
        distinguishes them.
        """
        from repro.core.cache import payload_fingerprint

        return payload_fingerprint({
            "fault_spec": dataclasses.asdict(self.spec),
            "episodes": [
                (e.episode_id, e.node_id, e.fault.value,
                 e.start_s, e.duration_s, e.magnitude)
                for e in self.episodes
            ],
            "fault_model_version": FAULT_MODEL_VERSION,
        })

    def trace(self) -> List[tuple]:
        """The canonical event trace (list of tuples)."""
        return [ev.as_tuple() for ev in self.events]

    def episodes_of(self, cls: FaultClass) -> List[FaultEpisode]:
        return [e for e in self.episodes if e.fault is cls]


def generate_schedule(spec: FaultScheduleSpec) -> FaultSchedule:
    """Materialise the seeded schedule described by ``spec``.

    Per (node, class): onset gaps are exponential with mean
    ``60 / rate_per_min`` seconds, durations exponential with the
    class's mean (clipped up to ``min_duration_s``), and consecutive
    episodes chain end-to-start so they never overlap.
    """
    episodes: List[FaultEpisode] = []
    eid = 0
    for node in range(spec.n_nodes):
        for cls_idx, cls in enumerate(CLASS_ORDER):
            rate = spec.rate_of(cls)
            if rate <= 0:
                continue
            rng = np.random.default_rng([spec.seed, node, cls_idx])
            mean_gap = 60.0 / rate
            mean_dur = spec.mean_duration_of(cls)
            t = float(rng.exponential(mean_gap))
            while t < spec.horizon_s:
                dur = max(spec.min_duration_s, float(rng.exponential(mean_dur)))
                episodes.append(FaultEpisode(
                    episode_id=eid, node_id=node, fault=cls,
                    start_s=t, duration_s=dur,
                    magnitude=spec.magnitude_of(cls),
                ))
                eid += 1
                t = t + dur + float(rng.exponential(mean_gap))

    events: List[FaultEvent] = []
    for ep in episodes:
        events.append(FaultEvent(ep.start_s, ep.node_id, ep.fault, "begin",
                                 ep.magnitude, ep.episode_id))
        events.append(FaultEvent(ep.end_s, ep.node_id, ep.fault, "end",
                                 ep.magnitude, ep.episode_id))
    # Ends sort before begins at equal timestamps so back-to-back
    # episodes on one node tear down before the next one applies.
    events.sort(key=lambda ev: (ev.time_s, 0 if ev.action == "end" else 1,
                                ev.node_id, ev.fault.value, ev.episode_id))
    return FaultSchedule(spec=spec, episodes=tuple(episodes),
                         events=tuple(events))


def schedule_from_episodes(
    episodes: Sequence[FaultEpisode],
    spec: Optional[FaultScheduleSpec] = None,
) -> FaultSchedule:
    """Build a schedule from hand-written episodes (tests, what-ifs).

    ``spec`` defaults to a zero-rate spec sized to the episodes; the
    fingerprint then covers the explicit episode list instead of the
    (empty) generative spec.
    """
    if spec is None:
        n_nodes = 1 + max((e.node_id for e in episodes), default=0)
        horizon = max((e.end_s for e in episodes), default=1.0)
        spec = FaultScheduleSpec(n_nodes=n_nodes,
                                 horizon_s=max(horizon, 1e-9))
    for ep in episodes:
        if ep.start_s < 0 or ep.duration_s <= 0:
            raise ConfigError("episodes need start >= 0 and duration > 0")
        if not 0 <= ep.node_id < spec.n_nodes:
            raise ConfigError(f"episode node {ep.node_id} outside fleet")
    generated = generate_schedule(spec)
    if generated.episodes:
        raise ConfigError(
            "schedule_from_episodes needs a zero-rate spec "
            "(explicit episodes would collide with generated ones)"
        )
    events: List[FaultEvent] = []
    for ep in episodes:
        events.append(FaultEvent(ep.start_s, ep.node_id, ep.fault, "begin",
                                 ep.magnitude, ep.episode_id))
        events.append(FaultEvent(ep.end_s, ep.node_id, ep.fault, "end",
                                 ep.magnitude, ep.episode_id))
    events.sort(key=lambda ev: (ev.time_s, 0 if ev.action == "end" else 1,
                                ev.node_id, ev.fault.value, ev.episode_id))
    return FaultSchedule(spec=spec, episodes=tuple(episodes),
                         events=tuple(events))
