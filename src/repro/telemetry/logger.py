"""Power-trace persistence: save/load jtop-style traces.

Real studies archive their tegrastats/jtop logs; the simulated sampler
produces the same shape of data, and this module round-trips it through
CSV so traces can be diffed across calibrations or plotted externally.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.telemetry.energy import median_power_w, trapezoid_energy_j
from repro.telemetry.sampler import PowerSample


def save_trace(path: str | Path, samples: Sequence[PowerSample]) -> Path:
    """Write a power trace as CSV (time_s, power_w, phase)."""
    if not samples:
        raise ConfigError("refusing to save an empty trace")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "power_w", "phase"])
        for s in samples:
            writer.writerow([f"{s.time_s:.6f}", f"{s.power_w:.4f}", s.phase])
    return out


def load_trace(path: str | Path) -> List[PowerSample]:
    """Read a trace written by :func:`save_trace`."""
    p = Path(path)
    if not p.exists():
        raise ConfigError(f"no trace at {p}")
    samples: List[PowerSample] = []
    with p.open() as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != ["time_s", "power_w", "phase"]:
            raise ConfigError(f"not a power trace: {p} (header {reader.fieldnames})")
        for row in reader:
            samples.append(PowerSample(
                time_s=float(row["time_s"]),
                power_w=float(row["power_w"]),
                phase=row["phase"],
            ))
    return samples


def trace_summary(samples: Sequence[PowerSample]) -> Dict[str, float]:
    """Headline numbers of a trace (what the paper reports per run)."""
    if not samples:
        raise ConfigError("empty trace")
    duration = samples[-1].time_s - samples[0].time_s
    return {
        "duration_s": round(duration, 3),
        "samples": len(samples),
        "median_power_w": round(median_power_w(samples), 2),
        "peak_power_w": round(max(s.power_w for s in samples), 2),
        "energy_j": round(trapezoid_energy_j(samples), 1),
        "active_fraction": round(
            sum(s.phase != "idle" for s in samples) / len(samples), 3
        ),
    }
