"""Telemetry: power sampling, energy integration, metric computation.

Mirrors the paper's measurement methodology: power is sampled every 2 s
with jtop, the median across batches is reported as the power load, and
energy is the trapezoidal integral of the sampled trace (§2).
"""

from repro.telemetry.sampler import PowerSample, PowerSampler
from repro.telemetry.energy import median_power_w, trapezoid_energy_j
from repro.telemetry.metrics import (
    latency_seconds,
    throughput_tokens_per_s,
)

__all__ = [
    "PowerSample",
    "PowerSampler",
    "latency_seconds",
    "median_power_w",
    "throughput_tokens_per_s",
    "trapezoid_energy_j",
]
