"""Energy and power statistics over sampled traces (the paper's §2 math)."""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.integrate import trapezoid

from repro.errors import ConfigError
from repro.telemetry.sampler import PowerSample


def trapezoid_energy_j(samples: Sequence[PowerSample]) -> float:
    """Total energy via trapezoidal integration of the power trace.

    "For total energy usage, we perform trapezoidal numerical
    integration over time for a batch with power sampled every 2s" — §2.
    """
    if len(samples) == 0:
        raise ConfigError("cannot integrate an empty power trace")
    if len(samples) == 1:
        return 0.0
    t = np.array([s.time_s for s in samples])
    p = np.array([s.power_w for s in samples])
    if (np.diff(t) < 0).any():
        raise ConfigError("power samples must be time-ordered")
    return float(trapezoid(p, t))


def median_power_w(
    samples: Sequence[PowerSample], active_only: bool = True
) -> float:
    """Median power across the trace.

    With ``active_only`` (the paper reports the median *across
    batches*, i.e. while work is running) idle-phase samples are
    excluded unless the whole trace is idle.
    """
    if len(samples) == 0:
        raise ConfigError("cannot take the median of an empty power trace")
    vals = [s.power_w for s in samples if not active_only or s.phase != "idle"]
    if not vals:
        vals = [s.power_w for s in samples]
    return float(np.median(vals))
