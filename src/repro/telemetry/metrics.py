"""Metric definitions, matching the paper's §2 exactly."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError


def throughput_tokens_per_s(
    input_tokens: Sequence[int], output_tokens: Sequence[int], batch_latency_s: float
) -> float:
    """Token throughput: sum of (input + output) tokens over batch latency.

    ``TP = sum_i (in_i + out_i) / batch_latency`` — §2.
    """
    if batch_latency_s <= 0:
        raise ConfigError("batch latency must be positive")
    if len(input_tokens) != len(output_tokens):
        raise ConfigError("input/output token lists must have equal length")
    total = sum(input_tokens) + sum(output_tokens)
    return total / batch_latency_s


def latency_seconds(step_durations: Sequence[float], prefill_s: float = 0.0) -> float:
    """End-to-end batch latency: time to last token across all prompts."""
    if prefill_s < 0 or any(d < 0 for d in step_durations):
        raise ConfigError("durations must be non-negative")
    return prefill_s + sum(step_durations)
