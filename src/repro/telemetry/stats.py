"""Derived efficiency statistics over run results.

The paper reports raw latency/power/energy; deployment decisions use
derived figures of merit: energy per token, energy-delay product, and
tail percentiles over per-step durations.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.engine.runtime import RunResult
from repro.errors import ConfigError


def energy_per_token_j(result: RunResult) -> float:
    """Joules per (input+output) token across the measured batches."""
    if result.oom:
        raise ConfigError("no energy figure for an OOM result")
    total_tokens = sum(b.request.total_tokens for b in result.batches if not b.oom)
    if total_tokens == 0:
        raise ConfigError("result contains no completed tokens")
    return result.energy_j / total_tokens


def energy_delay_product(result: RunResult) -> float:
    """EDP: energy x latency (lower is better on both axes)."""
    if result.oom:
        raise ConfigError("no EDP for an OOM result")
    return result.energy_j * result.mean_latency_s


def step_latency_percentiles(
    result: RunResult, percentiles: Sequence[float] = (50, 95, 99)
) -> Dict[str, float]:
    """Decode-step duration percentiles across the measured batches."""
    steps = [s for b in result.batches if not b.oom for s in b.step_seconds]
    if not steps:
        raise ConfigError("result has no decode steps")
    arr = np.array(steps)
    return {f"p{int(p)}": float(np.percentile(arr, p)) for p in percentiles}


def efficiency_row(result: RunResult) -> Dict[str, float]:
    """One comparison row of derived metrics."""
    return {
        "model": result.model,
        "precision": result.precision.value,
        "power_mode": result.power_mode,
        "tokens_per_joule": round(1.0 / energy_per_token_j(result), 2),
        "edp_js": round(energy_delay_product(result), 1),
        **{k: round(v, 4) for k, v in step_latency_percentiles(result).items()},
    }
