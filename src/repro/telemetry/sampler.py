"""jtop-style periodic power sampler as a DES process."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.state import EngineState
from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.obs import kinds
from repro.obs.span import NULL_OBSERVER, Observer
from repro.power.model import PowerModel
from repro.sim.environment import Environment


@dataclass(frozen=True)
class PowerSample:
    """One reading: time, total watts, and the active phase label."""

    time_s: float
    power_w: float
    phase: str


class PowerSampler:
    """Samples board power every ``period_s`` of simulated time.

    Start with :meth:`start`; the process runs until the environment
    drains or :meth:`stop` is called.  Samples accumulate in
    :attr:`samples`; when an observer is attached each reading is also
    published as a :data:`~repro.obs.kinds.POWER_W` counter series on
    ``obs_track`` (one Perfetto counter lane per sampled board) and
    folded into the ``power_w`` histogram of the metrics registry.
    """

    def __init__(
        self,
        env: Environment,
        device: EdgeDevice,
        power_model: PowerModel,
        state: EngineState,
        period_s: float = 2.0,
        obs: Observer = NULL_OBSERVER,
        obs_track: str = "power",
    ):
        if period_s <= 0:
            raise ConfigError("sampling period must be positive")
        self.env = env
        self.device = device
        self.power_model = power_model
        self.state = state
        self.period_s = period_s
        self.obs = obs
        self.obs_track = obs_track
        self.samples: List[PowerSample] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._run(), name="power-sampler")

    def stop(self) -> None:
        """Stop after the current period."""
        self._running = False

    def _take_sample(self) -> None:
        watts = self.power_model.power_w(self.device, self.state.util)
        self.samples.append(
            PowerSample(time_s=self.env.now, power_w=watts, phase=self.state.phase)
        )
        if self.obs.enabled:
            self.obs.counter(kinds.POWER_W, watts, track=self.obs_track,
                             time_s=self.env.now)
            self.obs.metrics.histogram(
                "power_w", buckets=(5, 10, 15, 20, 25, 30, 40, 50, 60, 80),
                track=self.obs_track,
            ).observe(watts)

    def _run(self):
        # Sample at t=0 then every period, like a jtop session started
        # alongside the workload.
        self._take_sample()
        while self._running:
            yield self.env.timeout(self.period_s)
            if not self._running:
                break
            self._take_sample()
