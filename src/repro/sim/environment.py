"""The simulation environment: clock, event heap, process scheduling."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AbsoluteTimeout, Event, Interrupt, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process ends.

    A process wraps a generator.  Each value the generator yields must be
    an :class:`Event`; the process sleeps until that event fires, then is
    resumed with the event's value (or the event's exception thrown in).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target is not a generator: {generator!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at current sim time via an immediately-firing event.
        init = Event(env)
        init.callbacks.append(self._resume)
        self._target: Optional[Event] = init
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        ev = Event(self.env)
        ev.callbacks.append(self._resume_interrupt)
        ev.succeed(Interrupt(cause))

    # -- internal resumption ----------------------------------------------
    def _resume_interrupt(self, ev: Event) -> None:
        if self.triggered:
            return  # finished between scheduling and delivery
        # Detach from the event we were waiting on (it may still fire later;
        # the stale callback checks identity below).
        self._target = None
        self._step(throw=ev.value)

    def _resume(self, ev: Event) -> None:
        if self.triggered or ev is not self._target:
            return  # stale wake-up (e.g. after an interrupt re-targeted us)
        self._target = None
        if ev.ok:
            self._step(send=ev.value)
        else:
            self._step(throw=ev.value)

    def _step(self, send: Any = None, throw: Any = None) -> None:
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Process chose not to handle the interrupt: treat as failure.
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
        if target.env is not self.env:
            raise SimulationError("process yielded event from another environment")
        self._target = target
        if target.processed:
            # Already done: resume immediately (via a zero-delay event so
            # execution order stays heap-driven and deterministic).
            bounce = Event(self.env)
            bounce.callbacks.append(self._resume)
            self._target = bounce
            if target.ok:
                bounce.succeed(target.value)
            else:
                bounce._ok = False
                bounce._value = target.value
                self.env.schedule(bounce)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Owns simulated time and executes events in timestamp order.

    Ties are broken by insertion order, making runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> AbsoluteTimeout:
        """Create an event firing at absolute sim time ``when`` (>= now)."""
        return AbsoluteTimeout(self, when, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator, name=name)

    # -- scheduling/execution ----------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Put a triggered event on the heap ``delay`` seconds from now."""
        self.schedule_at(event, self._now + delay)

    def schedule_at(self, event: Event, when: float) -> None:
        """Put a triggered event on the heap at absolute time ``when``.

        All scheduling funnels through here so every event gets its
        tie-break counter from the same :func:`itertools.count` — events
        with equal timestamps always fire in the order they were
        scheduled, whether they came from relative timeouts, absolute
        timeouts, or immediate (zero-delay) events.
        """
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        event._scheduled = True
        heapq.heappush(self._heap, (when, next(self._counter), event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on empty event heap")
        when, _, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the heap drains or sim time reaches ``until``.

        If ``until`` is an :class:`Event`, run until it fires and return
        its value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before target event fired"
                    )
                self.step()
            if target.ok:
                return target.value
            raise target.value
        limit = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= limit:
            self.step()
        if limit != float("inf"):
            self._now = max(self._now, limit)
        return None
