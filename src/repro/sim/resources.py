"""Contention primitives: counted resources and object stores."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.environment import Environment


class Request(Event):
    """Event that fires when a :class:`Resource` slot is granted."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource"):
        super().__init__(env)
        self.resource = resource


class Resource:
    """A resource with ``capacity`` slots and FIFO queueing.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # critical section
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of pending requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed(None)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(req)
        except ValueError:
            raise SimulationError("release() of a request that does not hold a slot")
        if self._queue:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed(None)


class Store:
    """An unbounded (or bounded) FIFO buffer of Python objects.

    ``put`` events fire when the item is accepted; ``get`` events fire with
    the item as value when one is available.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    @property
    def size(self) -> int:
        """Number of buffered items."""
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; returns an event that fires on acceptance."""
        ev = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Take the oldest item; returns an event whose value is the item."""
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed(None)
        else:
            self._getters.append(ev)
        return ev
