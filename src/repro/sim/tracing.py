"""Legacy trace API — a thin shim over :mod:`repro.obs` spans.

Historically the engine and telemetry sampler appended flat
:class:`TraceRecord` entries here and reporting code sliced them by
kind.  The observability layer (:mod:`repro.obs.span`) replaced that
buffer with request-scoped spans, instants and counter series; this
module keeps the old read/write surface working on top of it:

- :meth:`Trace.record` forwards to :meth:`Observer.instant
  <repro.obs.span.Observer.instant>` under the ``legacy`` category;
- iteration / :meth:`Trace.by_kind` project the observer's instants
  *and* closed spans back into time-ordered :class:`TraceRecord` rows
  (a span contributes one record at its start time, with its duration
  in the payload), so code slicing by ``"prefill"`` keeps working when
  the records now come from spans.

New code should use :class:`repro.obs.span.Observer` directly and name
kinds from :mod:`repro.obs.kinds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import kinds
from repro.obs.span import Observer


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        Category string, e.g. ``"decode"`` or ``"power_w"``.
    data:
        Arbitrary payload.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Kind-filtered view over an :class:`~repro.obs.span.Observer`.

    Constructed bare it owns a private enabled observer, so the old
    ``Trace()``-and-``record`` flow still works; constructed over an
    existing observer it is a read view of that observer's records.
    """

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self._obs = observer if observer is not None else Observer()

    @property
    def observer(self) -> Observer:
        """The backing observer (for span-aware consumers)."""
        return self._obs

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append one record at simulation time ``time``."""
        self._obs.instant(kind, cat=kinds.CAT_LEGACY, track="trace",
                          time_s=time, **data)

    def _records(self) -> List[TraceRecord]:
        rows = [
            (i.time_s, i.event_id,
             TraceRecord(time=i.time_s, kind=i.name, data=dict(i.args)))
            for i in self._obs.instants
        ]
        for s in self._obs.spans:
            data = dict(s.args)
            data["duration_s"] = s.duration_s
            rows.append((s.start_s, s.span_id,
                         TraceRecord(time=s.start_s, kind=s.name, data=data)))
        rows.sort(key=lambda r: (r[0], r[1]))
        return [r[2] for r in rows]

    def __len__(self) -> int:
        return len(self._obs.instants) + len(self._obs.spans)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records())

    def by_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in time order."""
        return [r for r in self._records() if r.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct kinds, in first-seen (time) order."""
        seen: Dict[str, None] = {}
        for r in self._records():
            seen.setdefault(r.kind, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all records."""
        self._obs.clear()
