"""Lightweight timestamped tracing for simulations.

The serving engine and telemetry sampler append :class:`TraceRecord`
entries; reporting code slices them by kind.  Records are kept in
insertion order which, by construction of the DES, is time order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        Category string, e.g. ``"decode_step"`` or ``"power_sample"``.
    data:
        Arbitrary payload.
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only trace buffer with kind-based filtering."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def record(self, time: float, kind: str, **data: Any) -> None:
        """Append one record at simulation time ``time``."""
        self._records.append(TraceRecord(time=time, kind=kind, data=data))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in time order."""
        return [r for r in self._records if r.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct kinds, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.kind, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
