"""Event primitives for the DES kernel.

An :class:`Event` moves through three states: *pending* (created, not yet
triggered), *triggered* (scheduled on the environment's heap with a value),
and *processed* (its callbacks have run).  Processes wait on events by
yielding them; the environment resumes the process when the event fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot synchronisation point.

    Parameters
    ----------
    env:
        Owning environment.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._scheduled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (vs. failed with an exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exc`` raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self.env.schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` sim-seconds.

    The value is assigned only when the event actually fires, so a
    pending timeout is not considered triggered (conditions collecting
    fired events rely on this).
    """

    __slots__ = ("delay", "_fire_value")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._fire_value = value
        env.schedule(self, delay=self.delay)

    def _run_callbacks(self) -> None:
        if self._value is PENDING:
            self._value = self._fire_value
        super()._run_callbacks()


class AbsoluteTimeout(Event):
    """An event that fires at an *absolute* simulated time.

    ``env.timeout(delay)`` schedules at ``now + delay``, which re-rounds
    in floating point.  Fast-forward paths that must land on a timestamp
    computed elsewhere (e.g. the exact float the step-by-step path would
    have reached) use this to schedule at that timestamp bit-for-bit.
    """

    __slots__ = ("at", "_fire_value")

    def __init__(self, env: "Environment", when: float, value: Any = None):
        when = float(when)
        if when < env.now:
            raise SimulationError(
                f"absolute timeout at {when!r} is before current time {env.now!r}"
            )
        super().__init__(env)
        self.at = when
        self._fire_value = value
        env.schedule_at(self, when)

    def _run_callbacks(self) -> None:
        if self._value is PENDING:
            self._value = self._fire_value
        super()._run_callbacks()


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of child events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            elif ev.triggered:
                # Already scheduled; hook a callback so we observe it.
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev.ok
        }


class AllOf(_Condition):
    """Fires once all child events have fired; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any child event fires; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(self._collect())
