"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy:

- :class:`~repro.sim.environment.Environment` owns the clock and event heap.
- :class:`~repro.sim.events.Event` is the synchronisation primitive;
  :class:`~repro.sim.events.Timeout` fires after a delay.
- Processes are plain Python generators that ``yield`` events; wrap them
  with :meth:`Environment.process`.
- :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` provide contention and queueing.
- :class:`~repro.sim.tracing.Trace` records timestamped events for
  post-hoc analysis (telemetry, Gantt-style debugging).

The engine is used by :mod:`repro.engine` to run the simulated inference
server and by :mod:`repro.telemetry` for the jtop-style power sampler.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.environment import Environment, Process
from repro.sim.resources import Resource, Store
from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "Timeout",
    "Trace",
    "TraceRecord",
]
