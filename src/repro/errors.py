"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class OutOfMemoryError(ReproError):
    """The simulated device ran out of shared CPU/GPU memory.

    Mirrors a CUDA OOM on the real board.  Carries the number of bytes
    that were requested and how many were available at the failure point.
    """

    def __init__(self, requested_bytes: int, available_bytes: int, context: str = ""):
        self.requested_bytes = int(requested_bytes)
        self.available_bytes = int(available_bytes)
        self.context = context
        msg = (
            f"simulated OOM: requested {requested_bytes / 2**30:.2f} GiB, "
            f"only {available_bytes / 2**30:.2f} GiB available"
        )
        if context:
            msg += f" ({context})"
        super().__init__(msg)


class AllocationError(ReproError):
    """An invalid allocator operation (double free, unknown handle, ...)."""


class QuantizationError(ReproError):
    """Invalid quantization input (bad block size, empty tensor, ...)."""


class TokenizerError(ReproError):
    """Tokenizer training or encoding failure."""


class ModelError(ReproError):
    """Invalid model architecture description or unknown model name."""


class PowerModeError(ReproError):
    """Invalid power-mode definition or unknown mode name."""


class WorkloadError(ReproError):
    """Workload/dataset construction failure (e.g. empty prompt pool)."""


class CalibrationError(ReproError):
    """Calibration fitting failed or calibration data is inconsistent."""


class ExperimentError(ReproError):
    """An experiment specification is invalid or a run failed."""
