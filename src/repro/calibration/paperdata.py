"""The paper's published measurements, transcribed verbatim.

Units follow the paper: RAM in GB (total peak: model + incremental),
latency in seconds (the appendix column header says "ms" but the values
are clearly seconds — e.g. Table 4's Phi-2 batch-1 latency of "3.73"
matches §A.1's "3.73 seconds"), throughput in tokens/s.

``None`` marks OOM cells.

Sources: Tables 4-7 (appendix), Table 3 (perplexity), Table 1
(footprints), plus headline claims from §3 used as shape checks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

MODELS = ("MS-Phi2", "Llama3", "Mistral-Base", "Deepseek-Qwen")

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)
SEQ_LENGTHS = (128, 256, 512, 1024)

#: Sequence-length compositions: total -> (input tokens, output tokens).
SEQLEN_SPLIT: Dict[int, Tuple[int, int]] = {
    96: (32, 64),
    128: (32, 96),
    256: (64, 192),
    512: (128, 384),
    1024: (256, 768),
}

Cell = Optional[float]

# ---------------------------------------------------------------------------
# Table 4: batch-size sweep, WikiText2.  MAXN, sl=96 (32+64).
# FP16 everywhere, INT8 for Deepseek-Qwen.
# Per model: {bs: (ram_gb, latency_s, throughput_tok_s)}
# ---------------------------------------------------------------------------
TABLE4_BATCH_WIKITEXT: Dict[str, Dict[int, Tuple[Cell, Cell, Cell]]] = {
    "MS-Phi2": {
        1: (6.18, 3.73, 25.45), 2: (6.24, 3.95, 48.66), 4: (6.36, 3.95, 96.24),
        8: (6.48, 3.95, 194.59), 16: (6.87, 4.09, 375.88), 32: (8.05, 5.19, 591.68),
        64: (11.57, 7.59, 809.96), 128: (20.53, 12.85, 956.61),
    },
    "Llama3": {
        1: (16.38, 6.37, 15.08), 2: (16.42, 6.66, 28.82), 4: (16.45, 6.87, 55.91),
        8: (16.53, 7.37, 104.27), 16: (16.72, 8.33, 184.39), 32: (17.12, 9.96, 308.47),
        64: (17.91, 14.04, 437.47), 128: (19.26, 21.99, 558.87),
    },
    "Mistral-Base": {
        1: (47.33, 18.51, 5.19), 2: (47.36, 18.30, 8.96), 4: (47.44, 18.74, 20.49),
        8: (47.59, 19.54, 39.30), 16: (47.74, 21.29, 72.16), 32: (47.99, 39.12, 78.52),
        64: (48.77, 48.84, 125.79), 128: (50.08, 66.53, 184.69),
    },
    "Deepseek-Qwen": {
        1: (34.82, 43.25, 2.22), 2: (35.24, 46.97, 4.09), 4: (35.72, 48.97, 7.84),
        8: (36.76, 47.73, 16.09), 16: (38.25, 69.81, 22.00), 32: (40.87, 47.92, 64.11),
        64: (43.23, 61.05, 100.65), 128: (44.35, 83.69, 146.83),
    },
}

# ---------------------------------------------------------------------------
# Table 5: batch-size sweep, LongBench.  Same configuration.
# ---------------------------------------------------------------------------
TABLE5_BATCH_LONGBENCH: Dict[str, Dict[int, Tuple[Cell, Cell, Cell]]] = {
    "MS-Phi2": {
        1: (6.09, 3.62, 26.54), 2: (6.10, 3.64, 52.73), 4: (6.13, 3.63, 105.72),
        8: (6.13, 3.65, 210.17), 16: (6.22, 3.85, 398.99), 32: (7.42, 4.93, 623.20),
        64: (10.94, 7.12, 863.01), 128: (19.91, 11.97, 1026.76),
    },
    "Llama3": {
        1: (16.37, 6.36, 15.08), 2: (16.46, 6.59, 29.13), 4: (16.46, 6.77, 56.69),
        8: (16.53, 7.26, 105.84), 16: (16.73, 8.19, 187.59), 32: (17.14, 9.76, 314.60),
        64: (17.91, 13.65, 450.12), 128: (19.27, 21.21, 579.40),
    },
    "Mistral-Base": {
        1: (47.77, 18.53, 5.18), 2: (47.73, 18.30, 10.49), 4: (47.89, 18.63, 20.61),
        8: (48.03, 19.43, 39.53), 16: (48.18, 21.14, 72.66), 32: (48.40, 39.05, 78.67),
        64: (49.10, 48.44, 126.83), 128: (50.55, 65.83, 186.67),
    },
    "Deepseek-Qwen": {
        1: (34.74, 43.42, 2.21), 2: (35.11, 46.58, 4.12), 4: (35.72, 48.11, 7.98),
        8: (36.94, 47.01, 16.34), 16: (37.97, 69.13, 22.22), 32: (39.76, 46.52, 66.04),
        64: (41.90, 58.86, 104.39), 128: (43.06, 80.61, 152.43),
    },
}

# ---------------------------------------------------------------------------
# Table 6: sequence-length sweep, LongBench.  MAXN, bs=32.
# ---------------------------------------------------------------------------
TABLE6_SEQLEN_LONGBENCH: Dict[str, Dict[int, Tuple[Cell, Cell, Cell]]] = {
    "MS-Phi2": {
        128: (6.97, 7.74, 529.04), 256: (20.70, 21.26, 385.32),
        512: (None, None, None), 1024: (None, None, None),
    },
    "Llama3": {
        128: (17.24, 15.09, 271.50), 256: (18.26, 37.37, 219.21),
        512: (21.17, 101.02, 162.18), 1024: (29.37, 305.36, 107.31),
    },
    "Mistral-Base": {
        128: (48.24, 57.51, 71.22), 256: (49.00, 123.64, 66.26),
        512: (50.86, 281.30, 58.24), 1024: (54.48, 694.74, 47.17),
    },
    "Deepseek-Qwen": {
        128: (34.56, 97.72, 41.91), 256: (39.58, 257.02, 31.88),
        512: (42.17, 679.31, 24.12), 1024: (46.91, 1646.36, 19.90),
    },
}

# ---------------------------------------------------------------------------
# Table 7: sequence-length sweep, WikiText2.
# ---------------------------------------------------------------------------
TABLE7_SEQLEN_WIKITEXT: Dict[str, Dict[int, Tuple[Cell, Cell, Cell]]] = {
    "MS-Phi2": {
        128: (9.19, 7.74, 529.31), 256: (19.98, 21.03, 389.48),
        512: (None, None, None), 1024: (None, None, None),
    },
    "Llama3": {
        128: (17.20, 14.99, 273.18), 256: (18.77, 37.23, 220.02),
        512: (20.99, 100.69, 162.71), 1024: (29.13, 304.33, 107.67),
    },
    "Mistral-Base": {
        128: (48.15, 57.35, 71.42), 256: (49.00, 123.31, 66.43),
        512: (50.81, 280.48, 58.41), 1024: (54.66, 693.13, 47.28),
    },
    "Deepseek-Qwen": {
        128: (40.49, 93.04, 44.03), 256: (41.38, 249.24, 32.87),
        512: (43.28, 667.08, 24.56), 1024: (46.10, 1681.75, 19.48),
    },
}

# ---------------------------------------------------------------------------
# Table 3: perplexity per precision.  None = OOM on the device.
# ---------------------------------------------------------------------------
TABLE3_PERPLEXITY: Dict[str, Dict[str, Dict[str, Cell]]] = {
    "wikitext2": {
        "MS-Phi2": {"fp32": 9.12, "fp16": 9.12, "int8": 9.34, "int4": 9.69},
        "Llama3": {"fp32": 5.91, "fp16": 5.91, "int8": 6.00, "int4": 6.30},
        "Mistral-Base": {"fp32": None, "fp16": 4.99, "int8": 5.00, "int4": 5.08},
        "Deepseek-Qwen": {"fp32": None, "fp16": None, "int8": 6.36, "int4": 6.48},
    },
    "longbench": {
        "MS-Phi2": {"fp32": 7.35, "fp16": 7.35, "int8": 7.47, "int4": 7.65},
        "Llama3": {"fp32": 5.77, "fp16": 5.77, "int8": 5.80, "int4": 5.99},
        "Mistral-Base": {"fp32": None, "fp16": 4.95, "int8": 4.97, "int4": 5.11},
        "Deepseek-Qwen": {"fp32": None, "fp16": None, "int8": 6.42, "int4": 6.53},
    },
}

# ---------------------------------------------------------------------------
# Table 1: model footprints in decimal GB (red "estimate" cells included).
# ---------------------------------------------------------------------------
TABLE1_FOOTPRINT: Dict[str, Dict[str, float]] = {
    "MS-Phi2": {"params_b": 2.7, "fp32": 11.2, "fp16": 5.6, "int8": 3.0, "int4": 1.8},
    "Llama3": {"params_b": 8.0, "fp32": 32.2, "fp16": 16.1, "int8": 9.1, "int4": 5.6},
    "Mistral-Base": {"params_b": 23.6, "fp32": 94.2, "fp16": 47.1, "int8": 24.9, "int4": 13.8},
    "Deepseek-Qwen": {"params_b": 32.8, "fp32": 124.0, "fp16": 62.0, "int8": 34.3, "int4": 18.7},
}

#: Which precision each model ran at in the performance sweeps.
SWEEP_PRECISION: Dict[str, str] = {
    "MS-Phi2": "fp16",
    "Llama3": "fp16",
    "Mistral-Base": "fp16",
    "Deepseek-Qwen": "int8",
}

# ---------------------------------------------------------------------------
# §3.3 / §3.4 headline claims used as shape assertions in the benches.
# ---------------------------------------------------------------------------
CLAIMS = {
    # INT8 vs FP16 latency penalty for small models (Phi-2, Llama3): ~ +62%.
    "int8_small_model_slowdown": 0.62,
    # INT8 RAM saving vs FP16 for small models: ~ -46%.
    "int8_small_model_ram_saving": 0.46,
    # Mistral INT8 within 2% of FP16 latency.
    "int8_mistral_latency_band": 0.02,
    # GPU utilization: INT8 ~60%, INT4 ~100%.
    "int8_gpu_util": 0.60,
    "int4_gpu_util": 1.00,
    # Power mode A: power -28%, latency +26% (Llama).
    "pm_a_power_drop": 0.28,
    "pm_a_latency_increase": 0.26,
    # Power mode B: power -51% vs MAXN, energy worse than MAXN.
    "pm_b_power_drop": 0.51,
    # Power mode H: latency +370%, energy +72%, power -52%.
    "pm_h_latency_increase": 3.70,
    "pm_h_energy_increase": 0.72,
    "pm_h_power_drop": 0.52,
}
