"""Calibrated constants shipped with the library.

Every value here is either (a) fitted by :mod:`repro.calibration.fitting`
against the paper's appendix tables (run ``examples/recalibrate.py`` to
regenerate), or (b) an anchored measurement from the paper that cannot
be derived offline (absolute FP32 perplexities of paper-scale models).
Provenance is documented per constant.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.kernels import EngineCostParams
from repro.quant.overhead import QuantKernelModel

# ---------------------------------------------------------------------------
# Engine cost parameters, fitted by bounded least squares on the latency
# columns of paper Tables 4 and 6 (batch-size sweep on WikiText2, sequence-
# length sweep on LongBench; Orin AGX 64GB).  Fit quality: rms log-error
# 0.16, median absolute relative error 11%; the largest residuals sit on
# the paper's own non-monotonic Deepseek-Qwen rows (its Table 4 reports
# bs=16 slower than bs=32).  Regenerate with examples/recalibrate.py.
# ---------------------------------------------------------------------------
CALIBRATED_COST_PARAMS = EngineCostParams(
    overlap_p=2.0,
    kernel_floor_s=5.0e-6,      # hit the physical lower bound
    host_step_s=18.8e-3,        # HF generate loop on the ARM cores
    host_per_seq_s=1.0e-5,
    bw_scale=1.28,              # bounded at 100% of the 204.8 GB/s peak
    kv_traffic_scale=3.17,      # KV path moves ~3x its logical bytes
    int8_kv_penalty=2.31,       # bitsandbytes dtype-conversion copies
    gemm_sat_tokens=29.0,       # GEMMs reach ~80% peak by ~128 tokens
    flops_scale=1.61,           # bounded at 100% of FP16 peak
    quant=QuantKernelModel(int8_cycles_per_param=37.7),
)

# ---------------------------------------------------------------------------
# Per-model phenomenological memory overheads (GB), covering runtime
# behaviour the mechanistic allocator model does not capture (bitsandbytes
# INT8 holds per-layer dequantization and outlier buffers that grow with
# batch size).  Applied as: extra_gb = coeff * (batch_size**0.4 - 1).
# Fitted from the RAM columns of Table 4 after subtracting weights, KV and
# workspace.  The coefficient scales with quantized parameter count.
# ---------------------------------------------------------------------------
INT8_WORKLOAD_OVERHEAD_GB_PER_BPARAM = 0.040
INT4_WORKLOAD_OVERHEAD_GB_PER_BPARAM = 0.015

#: Fixed runtime workspace (cuBLAS handles, autotuning buffers, logits
#: scratch), from the batch-size-1 incremental footprints of Table 4.
RUNTIME_WORKSPACE_GB = 0.45

#: Per-model trims (empty = fully mechanistic).  Reserved for fit output.
MODEL_CALIBRATION: Dict[str, Dict[str, float]] = {}

# ---------------------------------------------------------------------------
# Perplexity anchors (paper Table 3, FP32/FP16 column; for Deepseek-Qwen the
# anchor precision is INT8 because nothing larger fits the board).  These are
# measurements of the real models and cannot be reproduced offline.
# ---------------------------------------------------------------------------
PPL_ANCHORS: Dict[str, Dict[str, float]] = {
    "wikitext2": {
        "MS-Phi2": 9.12,
        "Llama3": 5.91,
        "Mistral-Base": 4.99,
        "Deepseek-Qwen": 6.36,  # INT8 anchor
    },
    "longbench": {
        "MS-Phi2": 7.35,
        "Llama3": 5.77,
        "Mistral-Base": 4.95,
        "Deepseek-Qwen": 6.42,  # INT8 anchor
    },
}

#: Which precision each anchor was measured at.
PPL_ANCHOR_PRECISION: Dict[str, str] = {
    "MS-Phi2": "fp32",
    "Llama3": "fp32",
    "Mistral-Base": "fp16",
    "Deepseek-Qwen": "int8",
}

# ---------------------------------------------------------------------------
# Quantization->perplexity sensitivity: delta_ln_ppl = s_model * err**P.
# P is shared; s_model is fitted per model from Table 3's INT4 row with the
# measured errors of repro.quant.error (regenerate with
# examples/recalibrate.py).  The INT8 row is then a prediction.
#
# Provenance: refit 2026-08-06 by fit_ppl_sensitivity(seed=0) after
# measure_quant_error switched its per-model RNG stream from the salted
# builtin hash() to crc32 — the old frozen values were sampled under one
# particular PYTHONHASHSEED and could never be reproduced in another
# process.  The crc32 stream is process-independent, so these values are
# exactly what the fitter returns today (rounded to 4 significant digits,
# well inside the test's 5% drift tolerance).
# ---------------------------------------------------------------------------
PPL_ERROR_EXPONENT = 0.75
PPL_SENSITIVITY: Dict[str, float] = {
    "MS-Phi2": 0.2596,
    "Llama3": 0.2903,
    "Mistral-Base": 0.1476,
    "Deepseek-Qwen": 0.1279,
}
