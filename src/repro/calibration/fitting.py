"""Least-squares calibration of the engine against the paper's tables.

``fit_cost_params`` tunes the handful of free constants in
:class:`~repro.engine.kernels.EngineCostParams` so the simulated latency
matches the appendix latency columns (Tables 4, 6) in relative terms.
``fit_ppl_sensitivity`` anchors the quantization->perplexity model on
Table 3's INT4 column.

Both run offline in seconds (``examples/recalibrate.py``) and their
output is frozen into :mod:`repro.calibration.constants`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.calibration import paperdata
from repro.engine.kernels import EngineCostParams, StepTimer
from repro.errors import CalibrationError
from repro.models.zoo import PAPER_MODELS
from repro.quant.dtypes import Precision
from repro.quant.error import measure_quant_error


def _latency_targets() -> List[Tuple[str, int, int, int, float]]:
    """(model, bs, input_tokens, output_tokens, latency_s) tuples."""
    out: List[Tuple[str, int, int, int, float]] = []
    for model, rows in paperdata.TABLE4_BATCH_WIKITEXT.items():
        for bs, (_ram, lat, _tp) in rows.items():
            if lat is not None:
                out.append((model, bs, 32, 64, lat))
    for model, rows in paperdata.TABLE6_SEQLEN_LONGBENCH.items():
        for sl, (_ram, lat, _tp) in rows.items():
            if lat is None:
                continue
            inp, outp = paperdata.SEQLEN_SPLIT[sl]
            out.append((model, 32, inp, outp, lat))
    return out


def predict_latency(
    params: EngineCostParams,
    model_name: str,
    batch_size: int,
    input_tokens: int,
    output_tokens: int,
    device_factory=None,
    stride: int = 1,
) -> float:
    """Closed-form batch latency (no DES) for fitting speed.

    Sums the analytic prefill cost and per-step decode costs — identical
    math to the executor, minus allocator effects.  ``stride`` > 1
    samples every n-th decode step and scales (costs are smooth in
    context length, so the error is negligible; used by the fitter).
    """
    from repro.hardware.jetson import orin_agx_64gb
    from repro.memsys.kvcache import KVCacheSpec

    device = (device_factory or orin_agx_64gb)()
    arch = PAPER_MODELS[model_name]
    precision = Precision.parse(paperdata.SWEEP_PRECISION[model_name])
    timer = StepTimer(arch, device, precision, params)
    spec: KVCacheSpec = arch.kv_cache_spec()

    total = timer.prefill(batch_size, input_tokens).seconds
    steps = range(0, output_tokens, stride)
    scale = output_tokens / len(steps)
    decode = 0.0
    for step in steps:
        context = input_tokens + step
        concat = spec.bytes_total(batch_size, context) + spec.bytes_total(
            batch_size, context + 1
        )
        decode += timer.decode_step(batch_size, context, concat_bytes=concat).seconds
    return total + decode * scale


def fit_cost_params(
    base: EngineCostParams | None = None,
    targets: Sequence[Tuple[str, int, int, int, float]] | None = None,
    verbose: bool = False,
) -> EngineCostParams:
    """Fit the engine's free constants to the paper's latency tables.

    Free parameters: kernel floor, host overheads, bandwidth trims and
    the INT8 dequant cycle count.  Residuals are log-ratios, so every
    configuration (40 ms or 1600 s) carries equal weight.
    """
    base = base or EngineCostParams()
    targets = list(targets if targets is not None else _latency_targets())
    if not targets:
        raise CalibrationError("no calibration targets supplied")

    # Physically bounded fit: bandwidth and FLOP trims may not push the
    # device past its theoretical peaks.
    names = ("kernel_floor_s", "host_step_s", "host_per_seq_s", "bw_scale",
             "kv_traffic_scale", "int8_kv_penalty", "gemm_sat_tokens",
             "flops_scale")
    lo = np.array([5e-6, 1e-3, 1e-5, 0.70, 0.5, 1.0, 0.1, 0.50, 10.0])
    hi = np.array([90e-6, 30e-3, 2e-3, 1.28, 8.0, 4.0, 256.0, 1.61, 80.0])
    x0 = np.clip(
        np.array([getattr(base, n) for n in names] + [base.quant.int8_cycles_per_param]),
        lo, hi,
    )

    def build(x: np.ndarray) -> EngineCostParams:
        quant = type(base.quant)(
            int8_cycles_per_param=float(x[len(names)]),
            int4_cycles_per_param=base.quant.int4_cycles_per_param,
            act_quant_cycles_per_elem=base.quant.act_quant_cycles_per_elem,
            int8_gemm_speedup=base.quant.int8_gemm_speedup,
        )
        return base.with_(
            **{n: float(v) for n, v in zip(names, x[: len(names)])}, quant=quant
        )

    def residuals(x: np.ndarray) -> np.ndarray:
        params = build(x)
        res = []
        for model, bs, inp, outp, lat in targets:
            pred = predict_latency(params, model, bs, inp, outp, stride=8)
            res.append(math.log(pred / lat))
        return np.array(res)

    sol = least_squares(
        residuals, x0, bounds=(lo, hi), method="trf",
        x_scale=np.maximum(np.abs(x0), lo), max_nfev=200,
    )
    fitted = build(sol.x)
    if verbose:  # pragma: no cover - diagnostic path
        r = residuals(sol.x)
        print(f"fit rms log-error: {float(np.sqrt(np.mean(r**2))):.3f}")
    return fitted


def fit_ppl_sensitivity(
    exponent: float = 0.75, seed: int = 0
) -> Dict[str, float]:
    """Per-model sensitivity anchored on Table 3's INT4 perplexities.

    Solves ``s`` in ``ln(ppl_int4/ppl_anchor) = s * err_int4**exponent``
    per model, averaging the two workloads.  Models whose anchor is INT8
    (Deepseek) use the INT4/INT8 ratio with the error *difference*.
    """
    from repro.calibration.constants import PPL_ANCHOR_PRECISION

    out: Dict[str, float] = {}
    for model in paperdata.MODELS:
        arch = PAPER_MODELS[model]
        e4 = measure_quant_error(arch, Precision.INT4, seed=seed).rel_matmul_error
        e_anchor_prec = Precision.parse(PPL_ANCHOR_PRECISION[model])
        e_anchor = measure_quant_error(arch, e_anchor_prec, seed=seed).rel_matmul_error
        deltas = []
        for ds in ("wikitext2", "longbench"):
            table = paperdata.TABLE3_PERPLEXITY[ds][model]
            p4 = table["int4"]
            p_anchor = table[e_anchor_prec.value]
            if p4 is None or p_anchor is None:
                continue
            num = math.log(p4 / p_anchor)
            den = e4**exponent - e_anchor**exponent
            if den <= 0:
                raise CalibrationError(f"degenerate error gap for {model}")
            deltas.append(num / den)
        if not deltas:
            raise CalibrationError(f"no usable Table 3 rows for {model}")
        out[model] = float(np.mean(deltas))
    return out
