"""The full numpy decoder-only transformer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ModelError
from repro.models.architecture import TransformerArchitecture
from repro.nn.attention import AttentionCache, apply_rope, causal_attention, rope_frequencies
from repro.nn.layers import LayerNorm, Linear, RMSNorm, gelu, silu
from repro.nn.sampling import sample_token
from repro.quant.dtypes import Precision


@dataclass
class _Layer:
    norm1: object
    norm2: Optional[object]
    q: Linear
    k: Linear
    v: Linear
    o: Linear
    mlp_up: Linear
    mlp_gate: Optional[Linear]
    mlp_down: Linear


class NumpyTransformer:
    """A runnable decoder-only transformer instantiated from an
    architecture description.

    Weights are seeded-random (scaled init); the class supports
    KV-cached generation and batched forward passes.  The same object
    can be re-instantiated at a different :class:`Precision` to measure
    quantization effects on real computation.

    Parameters
    ----------
    arch:
        Structural description.  Use small custom architectures for
        CPU-feasible runs; the paper-scale presets would need hundreds
        of GB.
    precision:
        Execution precision of all linear layers.
    seed:
        Weight-initialisation seed (same seed => same FP32 weights at
        every precision, so precision deltas are purely quantization).
    """

    def __init__(
        self,
        arch: TransformerArchitecture,
        precision: Precision = Precision.FP32,
        seed: int = 0,
    ):
        self.arch = arch
        self.precision = precision
        rng = np.random.default_rng(seed)
        h = arch.hidden_size

        def linear(n_out: int, n_in: int, bias: bool) -> Linear:
            w = rng.standard_normal((n_out, n_in)).astype(np.float32)
            w *= np.sqrt(2.0 / (n_in + n_out))
            b = np.zeros(n_out, dtype=np.float32) if bias else None
            return Linear(w, b, precision)

        def norm() -> object:
            if arch.mlp_type == "plain":  # LayerNorm family (Phi-2, Pythia)
                return LayerNorm(np.ones(h, np.float32), np.zeros(h, np.float32))
            return RMSNorm(np.ones(h, np.float32))

        self.embed = (
            rng.standard_normal((arch.vocab_size, h)).astype(np.float32) * 0.02
        )
        self.layers: List[_Layer] = []
        for _ in range(arch.n_layers):
            gate = (
                linear(arch.intermediate_size, h, arch.mlp_bias)
                if arch.mlp_type == "gated"
                else None
            )
            self.layers.append(
                _Layer(
                    norm1=norm(),
                    norm2=None if arch.norms_per_layer == 1 else norm(),
                    q=linear(arch.q_dim, h, arch.attention_bias),
                    k=linear(arch.kv_dim, h, arch.attention_bias),
                    v=linear(arch.kv_dim, h, arch.attention_bias),
                    o=linear(h, arch.q_dim, arch.attention_bias),
                    mlp_up=linear(arch.intermediate_size, h, arch.mlp_bias),
                    mlp_gate=gate,
                    mlp_down=linear(h, arch.intermediate_size, arch.mlp_bias),
                )
            )
        self.final_norm = norm()
        if arch.tied_embeddings:
            self.lm_head = Linear(self.embed, None, precision)
        else:
            self.lm_head = linear(arch.vocab_size, h, False)

        rotary_dim = int(arch.head_dim * arch.partial_rotary_factor)
        rotary_dim -= rotary_dim % 2
        self._rotary_dim = max(2, rotary_dim)
        self._inv_freq = rope_frequencies(arch.head_dim, self._rotary_dim)

    # -- forward -----------------------------------------------------------
    def _split_heads(self, x: np.ndarray, n_heads: int) -> np.ndarray:
        b, t, _ = x.shape
        return x.reshape(b, t, n_heads, self.arch.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self, tokens: np.ndarray, cache: Optional[AttentionCache] = None
    ) -> np.ndarray:
        """Logits for ``tokens`` (batch, seq); uses/extends ``cache``."""
        t_ids = np.asarray(tokens)
        if t_ids.ndim != 2:
            raise ModelError(f"tokens must be (batch, seq), got shape {t_ids.shape}")
        if (t_ids < 0).any() or (t_ids >= self.arch.vocab_size).any():
            raise ModelError("token id out of vocabulary range")
        past = cache.seq_len if cache is not None else 0
        b, t = t_ids.shape
        positions = past + np.arange(t)

        x = self.embed[t_ids]  # (b, t, h)
        for i, layer in enumerate(self.layers):
            normed = layer.norm1(x)
            q = self._split_heads(layer.q(normed), self.arch.n_heads)
            k = self._split_heads(layer.k(normed), self.arch.n_kv_heads)
            v = self._split_heads(layer.v(normed), self.arch.n_kv_heads)
            q = apply_rope(q, positions, self._inv_freq, self._rotary_dim)
            k = apply_rope(k, positions, self._inv_freq, self._rotary_dim)
            if cache is not None:
                k, v = cache.update(i, k, v)
            attn = causal_attention(q, k, v, self.arch.gqa_ratio, past_len=past)
            attn = attn.transpose(0, 2, 1, 3).reshape(b, t, self.arch.q_dim)
            attn_out = layer.o(attn)

            if layer.norm2 is None:
                # Parallel block (Phi-2): attention and MLP share the norm.
                mlp_in = normed
            else:
                x = x + attn_out
                mlp_in = layer.norm2(x)
            if layer.mlp_gate is not None:
                hidden = silu(layer.mlp_gate(mlp_in)) * layer.mlp_up(mlp_in)
            else:
                hidden = gelu(layer.mlp_up(mlp_in))
            mlp_out = layer.mlp_down(hidden)
            if layer.norm2 is None:
                x = x + attn_out + mlp_out
            else:
                x = x + mlp_out
        return self.lm_head(self.final_norm(x))

    # -- generation ----------------------------------------------------------
    def generate(
        self,
        prompts: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        top_k: Optional[int] = None,
        top_p: Optional[float] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """KV-cached autoregressive generation.

        ``prompts``: (batch, prompt_len) token ids.  Returns the
        generated ids, (batch, max_new_tokens).
        """
        if max_new_tokens < 1:
            raise ModelError("max_new_tokens must be >= 1")
        rng = np.random.default_rng(seed)
        cache = AttentionCache()
        logits = self.forward(prompts, cache)[:, -1, :]
        out = []
        for _ in range(max_new_tokens):
            nxt = sample_token(logits, rng, temperature, top_k, top_p)
            out.append(nxt)
            logits = self.forward(nxt[:, None], cache)[:, -1, :]
        return np.stack(out, axis=1)
