"""A real, runnable decoder-only transformer in numpy.

This is not a performance model — it actually computes forward passes,
KV-cached generation and token losses, at scales a CPU can handle.  It
exists so the perplexity pipeline, the quantization-error-to-NLL link,
and the end-to-end examples run genuine computation:

- :mod:`repro.nn.layers` — Linear (FP32/FP16/INT8/NF4 execution modes),
  RMSNorm, LayerNorm, MLPs.
- :mod:`repro.nn.attention` — rotary embeddings (with partial-rotary
  support, as Phi-2 uses), grouped-query attention, causal masking,
  numpy KV cache.
- :mod:`repro.nn.transformer` — the full model built from a
  :class:`~repro.models.architecture.TransformerArchitecture`.
- :mod:`repro.nn.sampling` — greedy/temperature/top-k/top-p.
- :mod:`repro.nn.loss` — cross entropy / negative log-likelihood.
"""

from repro.nn.layers import LayerNorm, Linear, RMSNorm
from repro.nn.attention import AttentionCache, rope_frequencies
from repro.nn.transformer import NumpyTransformer
from repro.nn.sampling import sample_token
from repro.nn.loss import cross_entropy_nll

__all__ = [
    "AttentionCache",
    "LayerNorm",
    "Linear",
    "NumpyTransformer",
    "RMSNorm",
    "cross_entropy_nll",
    "rope_frequencies",
    "sample_token",
]
