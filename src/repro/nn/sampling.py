"""Token sampling strategies for generation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def sample_token(
    logits: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    temperature: float = 0.0,
    top_k: Optional[int] = None,
    top_p: Optional[float] = None,
) -> np.ndarray:
    """Pick one token id per row of ``logits`` (batch, vocab).

    ``temperature == 0`` means greedy.  top-k and top-p filters compose
    (k first, then nucleus), as in HF ``generate``.
    """
    z = np.asarray(logits, dtype=np.float32)
    if z.ndim != 2:
        raise ModelError(f"logits must be (batch, vocab), got shape {z.shape}")
    if temperature < 0:
        raise ModelError("temperature must be >= 0")
    if temperature == 0.0:
        return z.argmax(axis=-1)
    if rng is None:
        raise ModelError("stochastic sampling requires an rng")

    z = z / temperature
    if top_k is not None:
        if top_k < 1:
            raise ModelError("top_k must be >= 1")
        kth = np.partition(z, -top_k, axis=-1)[:, -top_k][:, None]
        z = np.where(z < kth, -np.inf, z)
    if top_p is not None:
        if not (0.0 < top_p <= 1.0):
            raise ModelError("top_p must be in (0, 1]")
        probs = _softmax(z)
        order = np.argsort(-probs, axis=-1)
        sorted_p = np.take_along_axis(probs, order, axis=-1)
        csum = np.cumsum(sorted_p, axis=-1)
        # Keep tokens until cumulative prob exceeds top_p (always >= 1 token).
        cut = csum - sorted_p >= top_p
        mask = np.zeros_like(z, dtype=bool)
        np.put_along_axis(mask, order, cut, axis=-1)
        z = np.where(mask, -np.inf, z)

    probs = _softmax(z)
    c = probs.cumsum(axis=-1)
    u = rng.random((z.shape[0], 1))
    return (c < u).sum(axis=-1).clip(0, z.shape[-1] - 1)
