"""Rotary embeddings, grouped-query causal attention, numpy KV cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError


def rope_frequencies(head_dim: int, rotary_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for the first ``rotary_dim`` dims of a head."""
    if rotary_dim % 2:
        raise ModelError(f"rotary_dim must be even, got {rotary_dim}")
    if rotary_dim > head_dim:
        raise ModelError("rotary_dim cannot exceed head_dim")
    return 1.0 / (base ** (np.arange(0, rotary_dim, 2, dtype=np.float64) / rotary_dim))


def apply_rope(
    x: np.ndarray, positions: np.ndarray, inv_freq: np.ndarray, rotary_dim: int
) -> np.ndarray:
    """Rotate the first ``rotary_dim`` dims of ``x`` by position.

    ``x`` has shape (batch, heads, seq, head_dim); ``positions`` (seq,).
    Supports partial rotary (Phi-2 rotates only 40% of each head).
    """
    angles = positions[:, None].astype(np.float64) * inv_freq[None, :]
    cos = np.cos(angles).astype(np.float32)  # (seq, rotary_dim/2)
    sin = np.sin(angles).astype(np.float32)
    rot, rest = x[..., :rotary_dim], x[..., rotary_dim:]
    x1, x2 = rot[..., 0::2], rot[..., 1::2]
    out = np.empty_like(rot)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return np.concatenate([out, rest], axis=-1) if rest.size else out


@dataclass
class AttentionCache:
    """Per-layer K/V tensors, grown by concatenation (DynamicCache-style)."""

    keys: List[Optional[np.ndarray]] = field(default_factory=list)
    values: List[Optional[np.ndarray]] = field(default_factory=list)

    def ensure_layers(self, n_layers: int) -> None:
        while len(self.keys) < n_layers:
            self.keys.append(None)
            self.values.append(None)

    def update(
        self, layer: int, k: np.ndarray, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Append new K/V for ``layer``; return the full cached tensors."""
        self.ensure_layers(layer + 1)
        if self.keys[layer] is None:
            self.keys[layer], self.values[layer] = k, v
        else:
            self.keys[layer] = np.concatenate([self.keys[layer], k], axis=2)
            self.values[layer] = np.concatenate([self.values[layer], v], axis=2)
        return self.keys[layer], self.values[layer]

    @property
    def seq_len(self) -> int:
        if not self.keys or self.keys[0] is None:
            return 0
        return self.keys[0].shape[2]


def causal_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    n_query_groups: int,
    past_len: int = 0,
) -> np.ndarray:
    """Scaled dot-product attention with causal mask and GQA.

    Shapes: q (b, Hq, Tq, d); k, v (b, Hkv, Tk, d) with
    ``Hq = Hkv * n_query_groups``.  ``past_len`` is how many of the Tk
    key positions precede the first query position.
    """
    b, hq, tq, d = q.shape
    _, hkv, tk, _ = k.shape
    if hq != hkv * n_query_groups:
        raise ModelError(
            f"GQA mismatch: {hq} query heads vs {hkv} kv heads x {n_query_groups}"
        )
    if past_len + tq != tk:
        raise ModelError(
            f"causal geometry mismatch: past {past_len} + queries {tq} != keys {tk}"
        )
    if n_query_groups > 1:
        k = np.repeat(k, n_query_groups, axis=1)
        v = np.repeat(v, n_query_groups, axis=1)

    scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(d)  # (b, Hq, Tq, Tk)
    # Causal mask: query i (absolute pos past_len+i) sees keys <= its pos.
    qpos = past_len + np.arange(tq)[:, None]
    kpos = np.arange(tk)[None, :]
    scores = np.where(kpos <= qpos, scores, -np.inf)

    scores -= scores.max(axis=-1, keepdims=True)
    w = np.exp(scores)
    w /= w.sum(axis=-1, keepdims=True)
    return w @ v
