"""Cross-entropy / negative log-likelihood for perplexity evaluation."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError


def cross_entropy_nll(
    logits: np.ndarray, targets: np.ndarray, ignore_index: int = -100
) -> Tuple[float, int]:
    """Summed NLL of ``targets`` under ``logits`` and the token count.

    ``logits``: (..., vocab); ``targets``: matching leading shape.
    Positions equal to ``ignore_index`` are excluded — the sliding-window
    perplexity evaluator masks the overlapped prefix this way, exactly
    like the HF reference implementation.
    """
    z = np.asarray(logits, dtype=np.float64)
    t = np.asarray(targets)
    if z.shape[:-1] != t.shape:
        raise ModelError(
            f"logits leading shape {z.shape[:-1]} != targets shape {t.shape}"
        )
    flat_z = z.reshape(-1, z.shape[-1])
    flat_t = t.reshape(-1)
    keep = flat_t != ignore_index
    if not keep.any():
        return 0.0, 0
    zk = flat_z[keep]
    tk = flat_t[keep]
    if (tk < 0).any() or (tk >= zk.shape[-1]).any():
        raise ModelError("target token id out of vocabulary range")
    zmax = zk.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(zk - zmax).sum(axis=-1)) + zmax[:, 0]
    nll = logsumexp - zk[np.arange(zk.shape[0]), tk]
    return float(nll.sum()), int(keep.sum())
