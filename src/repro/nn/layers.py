"""Linear layers (with quantized execution modes) and normalisations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.quant.blockwise import blockwise_dequantize, blockwise_quantize
from repro.quant.dtypes import Precision
from repro.quant.llm_int8 import LLMInt8Linear


class Linear:
    """``y = x @ W.T + b`` with a per-layer execution precision.

    - FP32: reference.
    - FP16: weights and activations round-tripped through float16.
    - INT8: the real LLM.int8() mixed-precision product.
    - INT4: weights NF4-quantized at load (dequantize-once is numerically
      identical to dequantize-per-tile).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP32,
    ):
        w = np.asarray(weight, dtype=np.float32)
        if w.ndim != 2:
            raise ModelError(f"Linear weight must be 2-D, got shape {w.shape}")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape != (w.shape[0],):
                raise ModelError(
                    f"bias shape {bias.shape} does not match out features {w.shape[0]}"
                )
        self.precision = precision
        self.bias = bias
        self.out_features, self.in_features = w.shape
        self._int8: Optional[LLMInt8Linear] = None
        if precision is Precision.INT8:
            self._int8 = LLMInt8Linear(w)
            self._w = w  # retained only for `exact` comparisons
        elif precision is Precision.INT4:
            self._w = blockwise_dequantize(blockwise_quantize(w, scheme="nf4"))
        elif precision is Precision.FP16:
            self._w = w.astype(np.float16).astype(np.float32)
        else:
            self._w = w

    def __call__(self, x: np.ndarray) -> np.ndarray:
        a = np.asarray(x, dtype=np.float32)
        shape = a.shape
        a2 = a.reshape(-1, shape[-1])
        if self._int8 is not None:
            y = self._int8.forward(a2)
        elif self.precision is Precision.FP16:
            y = (a2.astype(np.float16) @ self._w.T.astype(np.float16)).astype(np.float32)
        else:
            y = a2 @ self._w.T
        if self.bias is not None:
            y = y + self.bias
        return y.reshape(*shape[:-1], self.out_features)

    @property
    def n_params(self) -> int:
        n = self.out_features * self.in_features
        if self.bias is not None:
            n += self.out_features
        return n


class RMSNorm:
    """Root-mean-square normalisation (Llama/Mistral/Qwen family)."""

    def __init__(self, weight: np.ndarray, eps: float = 1e-5):
        self.weight = np.asarray(weight, dtype=np.float32)
        if self.weight.ndim != 1:
            raise ModelError("RMSNorm weight must be 1-D")
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        a = np.asarray(x, dtype=np.float32)
        rms = np.sqrt(np.mean(a * a, axis=-1, keepdims=True) + self.eps)
        return (a / rms) * self.weight


class LayerNorm:
    """Classic layer normalisation with bias (Phi-2/Pythia family)."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5):
        self.weight = np.asarray(weight, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)
        if self.weight.shape != self.bias.shape or self.weight.ndim != 1:
            raise ModelError("LayerNorm weight/bias must be matching 1-D arrays")
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        a = np.asarray(x, dtype=np.float32)
        mu = a.mean(axis=-1, keepdims=True)
        var = a.var(axis=-1, keepdims=True)
        return (a - mu) / np.sqrt(var + self.eps) * self.weight + self.bias


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximation GELU (as Phi-2 uses)."""
    a = np.asarray(x, dtype=np.float32)
    return 0.5 * a * (1.0 + np.tanh(0.7978845608 * (a + 0.044715 * a**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish (the Llama-family gate activation)."""
    a = np.asarray(x, dtype=np.float32)
    return a / (1.0 + np.exp(-a))
