"""Model presets: the paper's four LLMs plus related-work comparators.

Dimensions are taken from the public HuggingFace configs of each model.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ModelError
from repro.models.architecture import TransformerArchitecture


def phi2() -> TransformerArchitecture:
    """Microsoft Phi-2, 2.7B.  LayerNorm + biased linears, plain MLP,
    partial rotary, MHA, legacy eager attention path."""
    return TransformerArchitecture(
        name="MS-Phi2",
        hf_id="microsoft/phi-2",
        vocab_size=51200,
        hidden_size=2560,
        n_layers=32,
        n_heads=32,
        n_kv_heads=32,
        head_dim=80,
        intermediate_size=10240,
        mlp_type="plain",
        tied_embeddings=False,
        attention_bias=True,
        mlp_bias=True,
        attention_impl="eager",
        partial_rotary_factor=0.4,
        norms_per_layer=1,  # parallel attention/MLP block shares one LN
        max_position_embeddings=2048,
    )


def llama31_8b() -> TransformerArchitecture:
    """Meta Llama-3.1-8B.  GQA (8 KV heads), SwiGLU, RMSNorm, SDPA."""
    return TransformerArchitecture(
        name="Llama3",
        hf_id="meta-llama/Llama-3.1-8B",
        vocab_size=128256,
        hidden_size=4096,
        n_layers=32,
        n_heads=32,
        n_kv_heads=8,
        head_dim=128,
        intermediate_size=14336,
        mlp_type="gated",
        tied_embeddings=False,
        attention_impl="sdpa",
        max_position_embeddings=131072,
    )


def mistral_small_24b() -> TransformerArchitecture:
    """Mistral-Small-24B-Base-2501.  GQA, SwiGLU, SDPA."""
    return TransformerArchitecture(
        name="Mistral-Base",
        hf_id="mistralai/Mistral-Small-24B-Base-2501",
        vocab_size=131072,
        hidden_size=5120,
        n_layers=40,
        n_heads=32,
        n_kv_heads=8,
        head_dim=128,
        intermediate_size=32768,
        mlp_type="gated",
        tied_embeddings=False,
        attention_impl="sdpa",
        max_position_embeddings=32768,
    )


def deepseek_r1_qwen_32b() -> TransformerArchitecture:
    """DeepSeek-R1-Distill-Qwen-32B (Qwen2.5-32B backbone).  QKV biases."""
    return TransformerArchitecture(
        name="Deepseek-Qwen",
        hf_id="deepseek-ai/DeepSeek-R1-Distill-Qwen-32B",
        vocab_size=152064,
        hidden_size=5120,
        n_layers=64,
        n_heads=40,
        n_kv_heads=8,
        head_dim=128,
        intermediate_size=27648,
        mlp_type="gated",
        tied_embeddings=False,
        attention_bias=True,
        attention_impl="sdpa",
        max_position_embeddings=131072,
    )


def pythia_410m() -> TransformerArchitecture:
    """EleutherAI Pythia-410M (Seymour et al. comparator, ref [6])."""
    return TransformerArchitecture(
        name="Pythia-410M",
        hf_id="EleutherAI/pythia-410m",
        vocab_size=50304,
        hidden_size=1024,
        n_layers=24,
        n_heads=16,
        n_kv_heads=16,
        head_dim=64,
        intermediate_size=4096,
        mlp_type="plain",
        tied_embeddings=False,
        attention_impl="eager",
        max_position_embeddings=2048,
    )


def pythia_14b() -> TransformerArchitecture:
    """EleutherAI Pythia-1.4B (the largest model in ref [6])."""
    return TransformerArchitecture(
        name="Pythia-1.4B",
        hf_id="EleutherAI/pythia-1.4b",
        vocab_size=50304,
        hidden_size=2048,
        n_layers=24,
        n_heads=16,
        n_kv_heads=16,
        head_dim=128,
        intermediate_size=8192,
        mlp_type="plain",
        tied_embeddings=False,
        attention_impl="eager",
        max_position_embeddings=2048,
    )


#: The paper's Table 1 models, in paper order.
PAPER_MODELS: Dict[str, TransformerArchitecture] = {
    m.name: m
    for m in (phi2(), llama31_8b(), mistral_small_24b(), deepseek_r1_qwen_32b())
}

_ALL = {
    **{m.name.lower(): m for m in PAPER_MODELS.values()},
    "pythia-410m": pythia_410m(),
    "pythia-1.4b": pythia_14b(),
    # Convenience aliases.
    "phi2": phi2(),
    "phi-2": phi2(),
    "llama3.1-8b": llama31_8b(),
    "llama": llama31_8b(),
    "mistral-small-24b": mistral_small_24b(),
    "mistral": mistral_small_24b(),
    "deepseek-r1-qwen-32b": deepseek_r1_qwen_32b(),
    "deepq": deepseek_r1_qwen_32b(),
}


def get_model(name: str) -> TransformerArchitecture:
    """Look up a model preset by name or alias (case-insensitive)."""
    arch = _ALL.get(name.strip().lower())
    if arch is None:
        raise ModelError(
            f"unknown model {name!r}; known: {', '.join(sorted(set(_ALL)))}"
        )
    return arch


def list_models() -> List[str]:
    """Canonical names of all presets."""
    seen = {}
    for arch in _ALL.values():
        seen.setdefault(arch.name, None)
    return list(seen)
