"""Weight memory per precision — reproduces the paper's Table 1.

bitsandbytes quantizes only ``nn.Linear`` weights; embeddings, the LM
head, norms and biases remain in 16-bit.  Per-parameter storage for the
quantized linears:

- INT8 (LLM.int8()): 1 byte + per-row FP16 scale statistics ≈ 1.005 B.
- INT4 (NF4): 0.5 byte + one FP16 absmax per 64-weight block + nested
  double-quantization constants ≈ 0.52 B.

Table 1 in the paper reports decimal gigabytes; so do we.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.models.architecture import TransformerArchitecture
from repro.quant.dtypes import PRECISION_ORDER, Precision

#: Storage bytes per quantized-linear parameter.
LINEAR_BYTES: Dict[Precision, float] = {
    Precision.FP32: 4.0,
    Precision.FP16: 2.0,
    Precision.INT8: 1.005,
    Precision.INT4: 0.52,
}

#: Storage bytes for the unquantized remainder (embeddings, head, norms).
NON_LINEAR_BYTES: Dict[Precision, float] = {
    Precision.FP32: 4.0,
    Precision.FP16: 2.0,
    Precision.INT8: 2.0,
    Precision.INT4: 2.0,
}


def weight_bytes(arch: TransformerArchitecture, precision: Precision) -> int:
    """Total bytes to hold the model's weights at ``precision``."""
    pb = arch.param_breakdown()
    linear = pb.linear * LINEAR_BYTES[precision]
    rest = pb.non_linear * NON_LINEAR_BYTES[precision]
    return int(round(linear + rest))


def weight_gb(arch: TransformerArchitecture, precision: Precision) -> float:
    """Weights in decimal GB (the paper's Table 1 unit)."""
    return weight_bytes(arch, precision) / 1e9


def footprint_table(
    models: Iterable[TransformerArchitecture],
    precisions: Iterable[Precision] = PRECISION_ORDER,
) -> List[Dict[str, object]]:
    """Table-1 rows: one dict per model with params and per-precision GB."""
    rows: List[Dict[str, object]] = []
    precisions = tuple(precisions)
    for arch in models:
        row: Dict[str, object] = {
            "model": arch.name,
            "hf_id": arch.hf_id,
            "params_b": round(arch.n_params_billions, 1),
        }
        for prec in precisions:
            row[f"{prec.value}_gb"] = round(weight_gb(arch, prec), 1)
        rows.append(row)
    return rows
