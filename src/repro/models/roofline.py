"""Roofline analysis: arithmetic intensity vs device balance point.

The paper repeatedly *asserts* that autoregressive decode is
memory-bound ([11], §3.2); this module quantifies it.  For any
(model, device, precision, batch, context) point it reports the
arithmetic intensity (FLOPs per DRAM byte), the device's balance point
(FLOP/s / bytes/s), the bound classification and the attainable
throughput — the numbers behind every latency trend in the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

from repro.errors import ModelError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.flops import decode_step_counts, prefill_counts
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision

Bound = Literal["memory", "compute"]


@dataclass(frozen=True)
class RooflinePoint:
    """One phase's position on the device roofline."""

    phase: str
    batch_size: int
    context: int
    flops: float
    dram_bytes: float
    arithmetic_intensity: float
    device_balance: float
    bound: Bound
    attainable_flops: float
    #: Attainable tokens/s assuming the phase saturates its bottleneck.
    attainable_tokens_per_s: float

    @property
    def intensity_ratio(self) -> float:
        """Intensity / balance; < 1 means memory-bound."""
        return self.arithmetic_intensity / self.device_balance


def _point(
    phase: str,
    arch: TransformerArchitecture,
    device: EdgeDevice,
    precision: Precision,
    batch_size: int,
    context: int,
    counts,
    tokens: int,
) -> RooflinePoint:
    dram = (
        counts.weight_bytes_read
        + counts.kv_bytes_read
        + counts.kv_bytes_written
        + counts.kv_expand_bytes
        + counts.activation_bytes
    )
    if dram <= 0:
        raise ModelError("degenerate roofline point: no DRAM traffic")
    intensity = counts.flops / dram
    peak_flops = device.gpu.effective_flops(precision)
    peak_bw = device.memory.streaming_bandwidth()
    balance = peak_flops / peak_bw
    bound: Bound = "memory" if intensity < balance else "compute"
    attainable = min(peak_flops, intensity * peak_bw)
    seconds = counts.flops / attainable
    return RooflinePoint(
        phase=phase,
        batch_size=batch_size,
        context=context,
        flops=counts.flops,
        dram_bytes=dram,
        arithmetic_intensity=intensity,
        device_balance=balance,
        bound=bound,
        attainable_flops=attainable,
        attainable_tokens_per_s=tokens / seconds,
    )


def decode_roofline(
    arch: TransformerArchitecture,
    device: EdgeDevice,
    precision: Precision,
    batch_size: int,
    context: int,
) -> RooflinePoint:
    """Roofline position of one decode iteration."""
    counts = decode_step_counts(
        arch, batch_size, context, weight_bytes(arch, precision)
    )
    return _point("decode", arch, device, precision, batch_size, context,
                  counts, tokens=batch_size)


def prefill_roofline(
    arch: TransformerArchitecture,
    device: EdgeDevice,
    precision: Precision,
    batch_size: int,
    prompt_tokens: int,
) -> RooflinePoint:
    """Roofline position of the prompt-ingest pass."""
    counts = prefill_counts(
        arch, batch_size, prompt_tokens, weight_bytes(arch, precision)
    )
    return _point("prefill", arch, device, precision, batch_size,
                  prompt_tokens, counts, tokens=batch_size * prompt_tokens)


def batch_size_to_saturate(
    arch: TransformerArchitecture,
    device: EdgeDevice,
    precision: Precision,
    context: int = 64,
    max_batch: int = 4096,
) -> int:
    """Smallest batch size at which decode becomes compute-bound.

    This is the concurrency the paper's batching experiments climb
    toward — beyond it, extra batch buys latency, not throughput.
    Returns ``max_batch`` if the device never flips (huge-bandwidth
    parts like the A100 stay memory-bound far longer).
    """
    bs = 1
    while bs < max_batch:
        if decode_roofline(arch, device, precision, bs, context).bound == "compute":
            return bs
        bs *= 2
    return max_batch


def roofline_sweep(
    arch: TransformerArchitecture,
    device: EdgeDevice,
    precision: Precision,
    batch_sizes=(1, 2, 4, 8, 16, 32, 64, 128),
    context: int = 64,
) -> List[RooflinePoint]:
    """Decode roofline across the paper's batch sizes."""
    return [
        decode_roofline(arch, device, precision, bs, context)
        for bs in batch_sizes
    ]
