"""Analytical FLOPs and DRAM-byte counts per inference phase.

The standard decomposition: a forward pass over ``n`` tokens costs
``2 * n * P_matmul`` FLOPs in the dense projections plus the attention
context term ``4 * n * n_layers * n_heads * head_dim * t`` against a
context of ``t`` tokens (scores + weighted sum, counting multiply-adds
as 2 FLOPs).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ModelError
from repro.models.architecture import TransformerArchitecture


@dataclass(frozen=True)
class PhaseCounts:
    """Work for one engine step (a prefill, or one decode iteration).

    Attributes
    ----------
    flops:
        Dense math (projections, MLP, LM head, attention context).
    weight_bytes_read:
        Weight traffic: each weight is streamed once per step.
    kv_bytes_read:
        Reads of cached K/V during attention.
    kv_bytes_written:
        New K/V entries written.
    kv_expand_bytes:
        GQA expansion traffic: HF ``repeat_kv`` materialises K/V
        replicated across the query-group dimension (``torch.expand`` +
        ``contiguous``), writing and re-reading ``gqa_ratio`` copies of
        the cache every decode step.  This — not the raw cache size — is
        what makes long-context decode collapse on bandwidth-limited
        devices.  Zero for MHA models (Phi-2) and for query counts where
        the runtime can skip the copy.
    activation_bytes:
        Activation traffic (read+write across layer boundaries).
    """

    flops: float
    weight_bytes_read: float
    kv_bytes_read: float
    kv_bytes_written: float
    kv_expand_bytes: float
    activation_bytes: float


def _matmul_params(arch: TransformerArchitecture) -> int:
    """Parameters participating in per-token matmuls (incl. LM head)."""
    pb = arch.param_breakdown()
    return pb.linear + pb.lm_head if not arch.tied_embeddings else pb.linear + pb.embedding


def _attention_flops(arch: TransformerArchitecture, n_query: int, context: int) -> float:
    """Score + weighted-sum FLOPs for ``n_query`` tokens over ``context``."""
    return 4.0 * n_query * arch.n_layers * arch.n_heads * arch.head_dim * context


def _activation_bytes(arch: TransformerArchitecture, n_tokens: int,
                      dtype_bytes: int = 2) -> float:
    """Inter-layer activation traffic: read + write of the hidden stream
    plus the MLP intermediate, per layer."""
    per_token = (4 * arch.hidden_size + 2 * arch.intermediate_size) * dtype_bytes
    return float(n_tokens * arch.n_layers * per_token)


@lru_cache(maxsize=65536)
def prefill_counts(
    arch: TransformerArchitecture,
    batch_size: int,
    prompt_tokens: int,
    weight_bytes_total: float,
    kv_dtype_bytes: int = 2,
) -> PhaseCounts:
    """Work to ingest the prompt (one big parallel forward pass).

    Memoized (pure function of hashable arguments): repeated runs of the
    same configuration — the measurement protocol replays every batch
    ``warmup + n_runs`` times — hit the cache instead of recounting.
    """
    if batch_size < 1 or prompt_tokens < 1:
        raise ModelError("prefill needs batch_size >= 1 and prompt_tokens >= 1")
    n = batch_size * prompt_tokens
    # Causal attention over the prompt: average context length is t/2.
    attn = _attention_flops(arch, n, prompt_tokens) / 2.0
    flops = 2.0 * n * _matmul_params(arch) + attn
    kv_spec = arch.kv_cache_spec(kv_dtype_bytes)
    kv_written = float(kv_spec.bytes_total(batch_size, prompt_tokens))
    expand = 0.0
    if arch.gqa_ratio > 1:
        expand = 2.0 * (arch.gqa_ratio - 1) * kv_written
    return PhaseCounts(
        flops=flops,
        weight_bytes_read=float(weight_bytes_total),
        kv_bytes_read=0.0,
        kv_bytes_written=kv_written,
        kv_expand_bytes=expand,
        activation_bytes=_activation_bytes(arch, n),
    )


@lru_cache(maxsize=262144)
def decode_step_counts(
    arch: TransformerArchitecture,
    batch_size: int,
    context_len: int,
    weight_bytes_total: float,
    kv_dtype_bytes: int = 2,
) -> PhaseCounts:
    """Work for one autoregressive decode iteration (one new token/seq).

    Memoized like :func:`prefill_counts`; decode visits every context
    length once per batch, so replayed batches and power-mode sweeps
    (same counts, different clocks) are all cache hits.
    """
    if batch_size < 1 or context_len < 1:
        raise ModelError("decode needs batch_size >= 1 and context_len >= 1")
    n = batch_size  # one query token per sequence
    flops = 2.0 * n * _matmul_params(arch) + _attention_flops(arch, n, context_len)
    kv_spec = arch.kv_cache_spec(kv_dtype_bytes)
    kv_read = float(kv_spec.bytes_total(batch_size, context_len))
    kv_written = float(kv_spec.bytes_total(batch_size, 1))
    expand = 0.0
    if arch.gqa_ratio > 1:
        # Write gqa_ratio copies, attention then reads the expanded tensor.
        expand = 2.0 * (arch.gqa_ratio - 1) * kv_read
    return PhaseCounts(
        flops=flops,
        weight_bytes_read=float(weight_bytes_total),
        kv_bytes_read=kv_read,
        kv_bytes_written=kv_written,
        kv_expand_bytes=expand,
        activation_bytes=_activation_bytes(arch, n),
    )
