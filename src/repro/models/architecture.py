"""Structural description of a decoder-only transformer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.errors import ModelError
from repro.memsys.kvcache import KVCacheSpec

MlpType = Literal["gated", "plain"]
AttentionImpl = Literal["eager", "sdpa"]


@dataclass(frozen=True)
class ParamBreakdown:
    """Parameter counts split by role (drives per-precision footprints).

    ``linear`` parameters are the ones bitsandbytes quantizes
    (``nn.Linear`` weights in attention and MLP blocks); ``embedding``,
    ``lm_head``, ``norm`` and ``bias`` parameters stay in 16/32-bit.
    """

    embedding: int
    lm_head: int
    linear: int
    norm: int
    bias: int

    @property
    def total(self) -> int:
        return self.embedding + self.lm_head + self.linear + self.norm + self.bias

    @property
    def non_linear(self) -> int:
        """Everything bitsandbytes leaves unquantized."""
        return self.total - self.linear


@dataclass(frozen=True)
class TransformerArchitecture:
    """A decoder-only transformer's shape.

    Attributes mirror HF config fields.  ``attention_impl`` records which
    attention code path the HF implementation of the model used at the
    paper's JetPack/transformers versions: Phi-2 ran the legacy eager
    path (materialised attention scores, fp32 softmax upcast) while the
    Llama/Mistral/Qwen families dispatched to SDPA.
    """

    name: str
    hf_id: str
    vocab_size: int
    hidden_size: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    intermediate_size: int
    mlp_type: MlpType = "gated"
    tied_embeddings: bool = False
    attention_bias: bool = False
    mlp_bias: bool = False
    attention_impl: AttentionImpl = "sdpa"
    partial_rotary_factor: float = 1.0
    norms_per_layer: int = 2
    max_position_embeddings: int = 4096

    def __post_init__(self) -> None:
        if min(self.vocab_size, self.hidden_size, self.n_layers, self.n_heads,
               self.n_kv_heads, self.head_dim, self.intermediate_size) < 1:
            raise ModelError(f"{self.name}: architecture dimensions must be >= 1")
        if self.n_heads % self.n_kv_heads != 0:
            raise ModelError(
                f"{self.name}: n_heads ({self.n_heads}) must be a multiple of "
                f"n_kv_heads ({self.n_kv_heads})"
            )
        if not (0.0 < self.partial_rotary_factor <= 1.0):
            raise ModelError(f"{self.name}: partial_rotary_factor must be in (0, 1]")

    # -- derived shapes ------------------------------------------------------
    @property
    def q_dim(self) -> int:
        return self.n_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim

    @property
    def gqa_ratio(self) -> int:
        """Query heads per KV head (1 = MHA)."""
        return self.n_heads // self.n_kv_heads

    def kv_cache_spec(self, dtype_bytes: int = 2) -> KVCacheSpec:
        """KV-cache geometry for this model."""
        return KVCacheSpec(
            n_layers=self.n_layers,
            kv_heads=self.n_kv_heads,
            head_dim=self.head_dim,
            dtype_bytes=dtype_bytes,
        )

    # -- parameter accounting --------------------------------------------------
    def param_breakdown(self) -> ParamBreakdown:
        """Exact parameter counts by role."""
        h = self.hidden_size
        embedding = self.vocab_size * h
        lm_head = 0 if self.tied_embeddings else self.vocab_size * h

        attn_linear = h * self.q_dim + 2 * h * self.kv_dim + self.q_dim * h
        if self.mlp_type == "gated":
            mlp_linear = 3 * h * self.intermediate_size
        else:
            mlp_linear = 2 * h * self.intermediate_size
        linear = self.n_layers * (attn_linear + mlp_linear)

        # Norm weights (+ biases for LayerNorm models are counted as bias).
        norm = (self.n_layers * self.norms_per_layer + 1) * h

        bias = 0
        if self.attention_bias:
            bias += self.n_layers * (self.q_dim + 2 * self.kv_dim + h)
        if self.mlp_bias:
            bias += self.n_layers * (self.intermediate_size + h)
        if not self.tied_embeddings and (self.attention_bias or self.mlp_bias):
            # Models with biased linears (Phi-2) also bias the LM head.
            bias += self.vocab_size
        return ParamBreakdown(
            embedding=embedding, lm_head=lm_head, linear=linear, norm=norm, bias=bias
        )

    @property
    def n_params(self) -> int:
        """Total parameter count."""
        return self.param_breakdown().total

    @property
    def n_params_billions(self) -> float:
        """Total parameters in units of 1e9 (as quoted in papers)."""
        return self.n_params / 1e9

    # -- per-step work ----------------------------------------------------------
    @property
    def kernels_per_layer(self) -> int:
        """Approximate kernel launches per layer per forward step.

        QKV + output projections, MLP matmuls, norms, rotary, attention,
        residual adds; gated MLPs launch one more matmul and a fused
        activation-multiply.
        """
        base = 4 + (3 if self.mlp_type == "gated" else 2)  # projections
        return base + 6  # norms, rope, attention core, softmax, residuals

    @property
    def kernels_per_step(self) -> int:
        """Kernel launches for a full forward pass (decode step)."""
        return self.n_layers * self.kernels_per_layer + 3  # final norm, lm_head, sample
