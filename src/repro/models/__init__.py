"""LLM architecture descriptions and analytical counts.

- :mod:`repro.models.architecture` — :class:`TransformerArchitecture`,
  a complete structural description (layers, heads, GQA, MLP type,
  attention implementation) with exact parameter-count decomposition.
- :mod:`repro.models.zoo` — the paper's four models (Phi-2,
  Llama-3.1-8B, Mistral-Small-24B, DeepSeek-R1-Distill-Qwen-32B) plus
  Pythia comparators from the related work.
- :mod:`repro.models.flops` — FLOPs and DRAM-byte analytics per
  prefill/decode phase.
- :mod:`repro.models.footprint` — weight memory per precision
  (reproduces the paper's Table 1).
"""

from repro.models.architecture import ParamBreakdown, TransformerArchitecture
from repro.models.flops import PhaseCounts, decode_step_counts, prefill_counts
from repro.models.footprint import weight_bytes, footprint_table
from repro.models.zoo import (
    PAPER_MODELS,
    deepseek_r1_qwen_32b,
    get_model,
    list_models,
    llama31_8b,
    mistral_small_24b,
    phi2,
)

__all__ = [
    "PAPER_MODELS",
    "ParamBreakdown",
    "PhaseCounts",
    "TransformerArchitecture",
    "decode_step_counts",
    "deepseek_r1_qwen_32b",
    "footprint_table",
    "get_model",
    "list_models",
    "llama31_8b",
    "mistral_small_24b",
    "phi2",
    "prefill_counts",
    "weight_bytes",
]
