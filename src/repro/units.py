"""Unit helpers and conversions used throughout the library.

All internal quantities use SI base units: bytes, seconds, hertz, watts,
joules.  These helpers exist so call sites read like the paper's text
(``GB(64)``, ``MHZ(1301)``) instead of sprinkling powers of ten/two.

The paper (and nvidia-smi/jtop) report memory in *decimal-ish* "GB" that are
actually GiB in most tools; we standardise on binary GiB for memory because
that is what ``jtop``/``tegrastats`` display and what the appendix tables
record.
"""

from __future__ import annotations

KIB = 2**10
MIB = 2**20
GIB = 2**30

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

MS = 1e-3
US = 1e-6
NS = 1e-9


def gib(n: float) -> int:
    """Gibibytes to bytes (rounded to an integer byte count)."""
    return int(round(n * GIB))


def mib(n: float) -> int:
    """Mebibytes to bytes."""
    return int(round(n * MIB))


def kib(n: float) -> int:
    """Kibibytes to bytes."""
    return int(round(n * KIB))


def to_gib(nbytes: float) -> float:
    """Bytes to gibibytes as a float (for reporting)."""
    return nbytes / GIB


def to_mib(nbytes: float) -> float:
    """Bytes to mebibytes as a float (for reporting)."""
    return nbytes / MIB


def mhz(f: float) -> float:
    """Megahertz to hertz."""
    return f * MHZ


def ghz(f: float) -> float:
    """Gigahertz to hertz."""
    return f * GHZ


def to_mhz(hz: float) -> float:
    """Hertz to megahertz."""
    return hz / MHZ


def gb_per_s(x: float) -> float:
    """Decimal GB/s to bytes/s (bandwidths are conventionally decimal)."""
    return x * 1e9


def to_gb_per_s(bytes_per_s: float) -> float:
    """Bytes/s to decimal GB/s."""
    return bytes_per_s / 1e9


def tflops(x: float) -> float:
    """TFLOP/s to FLOP/s."""
    return x * 1e12


def to_tflops(flops: float) -> float:
    """FLOP/s to TFLOP/s."""
    return flops / 1e12


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``'5.60 GiB'``."""
    n = float(nbytes)
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``'12.85 s'`` or ``'3.7 ms'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"
