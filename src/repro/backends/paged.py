"""vLLM-style runtime: paged KV blocks, continuous-batching admission.

The runtime loads the same safetensors checkpoint as the HF stack and
runs on the same PyTorch kernels (the :class:`StepTimer` roofline is
shared, with a small strided-gather penalty on the KV read path), but
its memory discipline is PagedAttention over the existing
:class:`repro.memsys.paged.PagedKVCache` block manager:

- the free device memory left after weights and workspace is reserved
  up front as one block pool;
- sequences are admitted when their *prompt* fits in currently-free
  blocks — not their whole-lifetime KV footprint — so admission is
  optimistic and the pool can exhaust mid-decode (a real vLLM
  preemption; surfaced as the batch's OOM here, and as youngest-victim
  eviction in the cluster node);
- cache growth never copies: decode pays zero concat traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import RuntimeBackend
from repro.backends.hf import load_checkpoint_weights, torch_workspace_bytes
from repro.backends.registry import register_backend
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepTimer
from repro.errors import ConfigError, OutOfMemoryError
from repro.memsys.paged import PagedKVCache
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision


class _PagedBatchKV:
    """Adapter driving a :class:`PagedKVCache` with the executor's
    contiguous-cache growth protocol (``prefill`` / ``append_token`` /
    ``concat_traffic_bytes`` / ``release``).

    The pool is reserved at construction from whatever the allocator has
    left (times ``pool_utilization``, vLLM's ``gpu_memory_utilization``
    analogue); every sequence of the static batch becomes one block
    table.
    """

    def __init__(self, spec, allocator, batch_size: int, block_tokens: int,
                 pool_utilization: float):
        free = allocator.capacity - allocator.reserved_bytes
        pool = int(free * pool_utilization)
        bytes_per_block = (
            spec.bytes_per_token_per_layer * spec.n_layers * block_tokens
        )
        if pool < bytes_per_block:
            raise OutOfMemoryError(
                requested_bytes=bytes_per_block,
                available_bytes=max(pool, 0),
                context="reserving paged KV pool",
            )
        self.cache = PagedKVCache(spec, allocator, pool,
                                  block_tokens=block_tokens)
        self.batch_size = batch_size
        self.seq_len = 0

    def prefill(self, n_tokens: int) -> None:
        for s in range(self.batch_size):
            self.cache.add_sequence(s, n_tokens)
        self.seq_len = n_tokens

    def append_token(self) -> None:
        for s in range(self.batch_size):
            self.cache.append_token(s)
        self.seq_len += 1

    def concat_traffic_bytes(self) -> int:
        return 0

    def release(self) -> None:
        for s in self.cache.live_sequences:
            self.cache.release_sequence(s)
        self.cache.release_pool()


class PagedBatchExecutor(BatchExecutor):
    """The shared prefill/decode loop over a paged block pool."""

    def __init__(self, timer, allocator, block_tokens: int,
                 pool_utilization: float, workspace_bytes: int = 0,
                 fast_forward: bool = True):
        super().__init__(timer, allocator, kv_mode="paged",
                         eager_score_buffers=False,
                         workspace_bytes=workspace_bytes,
                         fast_forward=fast_forward)
        self.block_tokens = block_tokens
        self.pool_utilization = pool_utilization

    def _make_kv(self, batch_size: int, gen):
        return _PagedBatchKV(
            self.timer.arch.kv_cache_spec(),
            self.allocator,
            batch_size=batch_size,
            block_tokens=self.block_tokens,
            pool_utilization=self.pool_utilization,
        )


@register_backend
@dataclass(frozen=True)
class PagedBackend(RuntimeBackend):
    """PagedAttention serving with admission by free blocks."""

    name = "paged"
    description = ("vLLM-style: paged KV block pool, continuous batching, "
                   "admission by free blocks")

    admits_by_free_blocks = True

    #: Token slots per KV block (vLLM default).
    block_tokens: int = 16
    #: Fraction of leftover device memory reserved as the block pool.
    pool_utilization: float = 0.90
    #: Strided block-gather penalty on the KV read path.
    kv_read_penalty: float = 1.05

    def __post_init__(self) -> None:
        if self.block_tokens < 1:
            raise ConfigError("block_tokens must be >= 1")
        if not 0.0 < self.pool_utilization <= 1.0:
            raise ConfigError("pool_utilization must be in (0, 1]")
        if self.kv_read_penalty < 1.0:
            raise ConfigError("kv_read_penalty must be >= 1")

    def weight_bytes(self, arch, precision: Precision) -> int:
        return weight_bytes(arch, precision)

    def load_weights(self, allocator, arch, precision: Precision) -> None:
        load_checkpoint_weights(allocator, arch, precision,
                                self.weight_bytes(arch, precision))

    def make_timer(self, arch, device, precision: Precision, params=None):
        from repro.calibration.constants import CALIBRATED_COST_PARAMS

        params = params or CALIBRATED_COST_PARAMS
        return StepTimer(arch, device, precision, params.with_(
            kv_traffic_scale=params.kv_traffic_scale * self.kv_read_penalty))

    def workspace_bytes(self, arch, precision: Precision,
                        batch_size: int) -> int:
        return torch_workspace_bytes(arch, precision, batch_size)

    def make_executor(self, timer, allocator, arch, precision: Precision,
                      batch_size: int, fast_forward: bool = True):
        return PagedBatchExecutor(
            timer,
            allocator,
            block_tokens=self.block_tokens,
            pool_utilization=self.pool_utilization,
            workspace_bytes=self.workspace_bytes(arch, precision, batch_size),
            fast_forward=fast_forward,
        )

    # -- block-granular admission -------------------------------------------
    def _block_bytes(self, bytes_per_token: int) -> int:
        return bytes_per_token * self.block_tokens

    def _rounded(self, tokens: int, bytes_per_token: int) -> int:
        blocks = -(-tokens // self.block_tokens)
        return blocks * self._block_bytes(bytes_per_token)

    def request_kv_reservation(self, input_tokens: int, output_tokens: int,
                               bytes_per_token: int) -> int:
        # Optimistic: only the prompt's blocks gate admission.
        return self._rounded(input_tokens, bytes_per_token)

    def live_kv_bytes(self, input_tokens: int, generated: int,
                      output_tokens: int, bytes_per_token: int) -> int:
        return self._rounded(input_tokens + generated, bytes_per_token)
