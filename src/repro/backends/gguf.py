"""llama.cpp-style runtime: GGUF weights, static KV, CPU/GPU layer split.

Cost-model shape, calibrated qualitatively against the on-device
llama.cpp characterizations in related work ("Sometimes Painful but
Certainly Promising" — Abstreiter et al.; "Sustainable LLM Inference
for Edge AI" — Husom et al.):

- weights are a single mmap'd GGUF file with exact k-quant footprints
  (:func:`repro.quant.gguf.gguf_weight_bytes`); together with the
  fixed graph-planned compute buffer the *total* serving footprint
  stays below the HF stack's (no cuBLAS/caching-allocator slack).
  Weights are streamed without separate dequant kernels —
  dequantization happens in-register inside the fused matmul kernels,
  modelled as a small math-rate penalty rather than the HF stack's
  dequant/act-quant time terms;
- ``n_gpu_layers`` splits the layer stack: offloaded layers run on the
  iGPU roofline, the rest on the CPU (ggml threads at a fraction of
  streaming DRAM bandwidth), and the two parts are *serial* per step —
  exactly the -ngl behaviour llama.cpp exposes;
- the host loop is a tight C++ sampler: per-step and per-sequence host
  costs are an order of magnitude below HF ``generate``'s Python
  dispatch, which is what makes the runtime single-sequence-fast;
- the KV cache is allocated up front at the full context (static), so
  decode pays no concat traffic and memory stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import RuntimeBackend
from repro.backends.registry import register_backend
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepCost, StepTimer
from repro.errors import ConfigError
from repro.models.flops import PhaseCounts
from repro.quant.dtypes import Precision
from repro.quant.gguf import gguf_type_for, gguf_weight_bytes


@dataclass(frozen=True)
class GGUFCostParams:
    """Calibratable constants specific to the llama.cpp execution model."""

    #: Host-side seconds per decode step at max CPU clock (C++ loop).
    host_step_s: float = 0.35e-3
    #: Additional host seconds per sequence per step (sampling).
    host_per_seq_s: float = 0.05e-3
    #: FLOPs one CPU core sustains per clock on ggml's quantized GEMV
    #: (peak NEON dot-product is ~16; memory stalls and dequant shuffles
    #: hold real kernels to about a quarter of that).
    cpu_flops_per_core_hz: float = 4.0
    #: Fraction of streaming DRAM bandwidth the ggml CPU threads reach.
    cpu_stream_fraction: float = 0.55
    #: Minimum seconds per launched GPU kernel (fused graph: fewer,
    #: cheaper launches than the HF stack's 42 us floor).
    kernel_floor_s: float = 30e-6
    #: Fraction of the HF per-step kernel count the fused ggml graph
    #: actually launches.
    kernel_fusion: float = 0.6
    #: Math-rate multiplier while dequantizing k-quants in-register.
    kquant_math_penalty: float = 0.92
    #: Fixed compute-buffer workspace (GB): llama.cpp pre-plans its
    #: graph allocator, no cuBLAS/caching-allocator slack.
    workspace_gb: float = 0.40

    def __post_init__(self) -> None:
        for name in ("host_step_s", "host_per_seq_s", "cpu_flops_per_core_hz",
                     "cpu_stream_fraction", "kernel_floor_s", "kernel_fusion",
                     "kquant_math_penalty", "workspace_gb"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.cpu_stream_fraction > 1.0:
            raise ConfigError("cpu_stream_fraction must be <= 1")


class GGUFStepTimer(StepTimer):
    """Step costs under the llama.cpp execution model.

    Reuses the shared memoization and FLOP/byte counting (weight traffic
    is swapped for the GGUF footprint via ``self.weight_bytes``) but
    recombines the counts with the serial GPU-then-CPU layer split.
    """

    def __init__(self, arch, device, precision, params, cost: GGUFCostParams,
                 n_gpu_layers: int):
        super().__init__(arch, device, precision, params)
        self.weight_bytes = gguf_weight_bytes(arch, precision)
        self.cost = cost
        if n_gpu_layers < 0 or n_gpu_layers > arch.n_layers:
            n_gpu_layers = arch.n_layers
        self.n_gpu_layers = n_gpu_layers

    def _combine(self, counts: PhaseCounts, n_tokens: int,
                 concat_bytes: float, is_prefill: bool) -> StepCost:
        p = self.params
        c = self.cost
        dev = self.device
        gpu = dev.gpu
        gpu_frac = self.n_gpu_layers / self.arch.n_layers

        # Traffic: weights once (k-quant footprint), KV gather/write,
        # activations.  Static cache => concat_bytes is always 0 here.
        stream_bytes = (
            counts.weight_bytes_read
            + counts.activation_bytes
            + counts.kv_bytes_written
            + concat_bytes
            + (counts.kv_bytes_read + counts.kv_expand_bytes)
            * p.kv_traffic_scale
        )
        stream_bw = dev.memory.streaming_bandwidth() * p.bw_scale

        # GPU part: roofline over the offloaded layer fraction.
        t_mem_gpu = stream_bytes * gpu_frac / stream_bw
        sat = n_tokens / (n_tokens + p.gemm_sat_tokens)
        math_prec = (Precision.FP16 if self.precision.is_quantized
                     else self.precision)
        kq = (c.kquant_math_penalty if self.precision.is_quantized else 1.0)
        flops_rate = gpu.effective_flops(math_prec) * p.flops_scale * sat * kq
        t_comp_gpu = counts.flops * gpu_frac / flops_rate

        # CPU part: ggml threads stream at a fraction of DRAM bandwidth
        # and retire SIMD dot products on every online core.
        cpu_frac = 1.0 - gpu_frac
        t_mem_cpu = stream_bytes * cpu_frac / (stream_bw * c.cpu_stream_fraction)
        cpu_rate = (dev.cpu.online_cores * dev.cpu.freq_hz
                    * c.cpu_flops_per_core_hz)
        t_comp_cpu = counts.flops * cpu_frac / cpu_rate

        t_gpu_roof = (t_mem_gpu**p.overlap_p + t_comp_gpu**p.overlap_p) \
            ** (1.0 / p.overlap_p)
        # ggml interleaves loads and math tightly on CPU: roofline max.
        t_cpu = max(t_mem_cpu, t_comp_cpu)

        # Launch floor only for the offloaded part of the fused graph.
        floor_scale = gpu.freq_ratio * dev.memory.freq_ratio**0.5
        n_kernels = self.arch.kernels_per_step * c.kernel_fusion * gpu_frac
        if is_prefill:
            n_kernels += self.n_gpu_layers * c.kernel_fusion
        t_floor = n_kernels * c.kernel_floor_s / floor_scale
        t_gpu = t_gpu_roof + t_floor

        t_host = (c.host_step_s
                  + c.host_per_seq_s * self._host_seqs(n_tokens, is_prefill)) \
            / dev.cpu.freq_ratio
        seconds = t_gpu + t_cpu + t_host

        gpu_busy = t_gpu / seconds
        denom = t_mem_gpu + t_comp_gpu
        gpu_compute = gpu_busy * (t_comp_gpu / denom if denom > 0 else 0.0)
        bytes_moved = stream_bytes
        peak_bw_now = dev.memory.peak_bandwidth * dev.memory.effective_ratio
        mem_bw_frac = min(1.0, bytes_moved / (peak_bw_now * seconds))
        # ggml saturates every online core while CPU layers run; outside
        # that window one thread drives the graph.
        cpu_cores = (1.0
                     + (dev.cpu.online_cores - 1.0) * (t_cpu / seconds)
                     + 0.5 * (t_host / seconds))
        return StepCost(
            seconds=seconds,
            t_mem=t_mem_gpu + t_mem_cpu,
            t_comp=t_comp_gpu + t_comp_cpu,
            t_kernel_floor=t_floor,
            t_host=t_host,
            bytes_moved=bytes_moved,
            gpu_compute_frac=gpu_compute,
            gpu_busy_frac=gpu_busy,
            mem_bw_frac=mem_bw_frac,
            cpu_cores_active=min(cpu_cores, float(dev.cpu.online_cores)),
        )


@register_backend
@dataclass(frozen=True)
class GGUFBackend(RuntimeBackend):
    """llama.cpp-style serving: mmap'd GGUF weights, static KV cache."""

    name = "gguf"
    description = ("llama.cpp-style: mmap'd GGUF k-quant weights, "
                   "CPU/GPU layer split (n_gpu_layers), static KV")

    #: Layers offloaded to the GPU; -1 (default) offloads all of them.
    n_gpu_layers: int = -1
    cost: GGUFCostParams = field(default_factory=GGUFCostParams)

    def weight_bytes(self, arch, precision: Precision) -> int:
        return gguf_weight_bytes(arch, precision)

    def load_weights(self, allocator, arch, precision: Precision) -> None:
        # One mmap of the whole GGUF file (llama.cpp maps, not copies).
        allocator.alloc(self.weight_bytes(arch, precision),
                        tag="weights.gguf-mmap")

    def make_timer(self, arch, device, precision: Precision, params=None):
        from repro.calibration.constants import CALIBRATED_COST_PARAMS

        return GGUFStepTimer(arch, device, precision,
                             params or CALIBRATED_COST_PARAMS,
                             self.cost, self.n_gpu_layers)

    def workspace_bytes(self, arch, precision: Precision,
                        batch_size: int) -> int:
        # Graph-planned compute buffer: fixed, batch-independent.
        return int(self.cost.workspace_gb * 1e9)

    def make_executor(self, timer, allocator, arch, precision: Precision,
                      batch_size: int, fast_forward: bool = True):
        return BatchExecutor(
            timer,
            allocator,
            kv_mode="static",
            eager_score_buffers=False,
            workspace_bytes=self.workspace_bytes(arch, precision, batch_size),
            fast_forward=fast_forward,
        )

    def quant_error(self, arch, precision: Precision):
        """Measured dequant error of the GGUF dtype serving ``precision``."""
        from repro.quant.gguf import gguf_rel_error

        return gguf_rel_error(arch, gguf_type_for(precision).name)
