"""Runtime-backend registry, mirroring the device/model zoos.

``get_backend("gguf", n_gpu_layers=16)`` instantiates a configured
:class:`~repro.backends.base.RuntimeBackend`; unknown names raise the
typed :class:`~repro.errors.ConfigError` listing what is available —
the same shape as :func:`repro.cluster.router.get_router`.

Third-party backends register with the decorator::

    @register_backend
    class MyBackend(RuntimeBackend):
        name = "my-runtime"
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError

#: Bump when the *semantics* of any backend's cost/memory model change
#: in a way its configuration payload cannot see (the backend-axis
#: counterpart of :data:`repro.core.cache.COST_MODEL_VERSION`).  Folded
#: into every experiment cache key, so a bump invalidates all cached
#: results across every runtime.
BACKEND_MODEL_VERSION = "2026.08-backends-1"

_BACKENDS: Dict[str, Type] = {}
_builtin_loaded = False


def register_backend(cls):
    """Class decorator adding a :class:`RuntimeBackend` to the registry."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigError(
            f"backend class {cls.__name__} needs a non-empty string "
            f"`name` attribute")
    if name in _BACKENDS and _BACKENDS[name] is not cls:
        raise ConfigError(f"backend name {name!r} is already registered")
    _BACKENDS[name] = cls
    return cls


def _ensure_builtin() -> None:
    """Import the built-in backends exactly once (registration side
    effect); lazy so `repro.backends.registry` stays import-cycle-free
    for :mod:`repro.core.cache`."""
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True
    from repro.backends import gguf, hf, paged  # noqa: F401


def list_backends() -> List[str]:
    """Registered runtime names, sorted."""
    _ensure_builtin()
    return sorted(_BACKENDS)


def get_backend(name: str, **kwargs):
    """Instantiate a runtime backend by name.

    Raises :class:`~repro.errors.ConfigError` (never ``KeyError`` /
    ``AttributeError``) on unknown or non-string names, listing the
    valid backends in the message.
    """
    _ensure_builtin()
    if not isinstance(name, str):
        raise ConfigError(
            f"runtime backend must be a string, got {type(name).__name__}; "
            f"known: {', '.join(list_backends())}"
        )
    cls = _BACKENDS.get(name.strip().lower())
    if cls is None:
        raise ConfigError(
            f"unknown runtime backend {name!r}; "
            f"known: {', '.join(list_backends())}"
        )
    return cls(**kwargs)
