"""The paper's runtime: HuggingFace Transformers + PyTorch + bitsandbytes.

This backend is *extracted* from the pre-refactor ``ServingEngine``
internals — per-layer checkpoint loading, the calibrated runtime
workspace, :class:`~repro.engine.kernels.StepTimer` and the
dynamic-KV :class:`~repro.engine.executor.BatchExecutor` — so it is
bit-identical to the engine before backends existed (asserted by
``tests/backends/test_hf_parity.py`` across the precision×power-mode
grid).  Every calibration constant therefore still traces to the source
paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import RuntimeBackend
from repro.backends.registry import register_backend
from repro.engine.executor import BatchExecutor
from repro.engine.kernels import StepTimer
from repro.errors import ConfigError
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision


def load_checkpoint_weights(allocator, arch, precision: Precision,
                            total: int) -> None:
    """Allocate ``total`` weight bytes per layer, as a checkpoint load
    does (shared with the vLLM-style backend, which loads the same
    safetensors shards)."""
    per_layer = total // (arch.n_layers + 2)
    remainder = total - per_layer * (arch.n_layers + 2)
    for i in range(arch.n_layers + 2):
        n = per_layer + (remainder if i == 0 else 0)
        allocator.alloc(n, tag=f"weights.{i}")


def torch_workspace_bytes(arch, precision: Precision, batch_size: int) -> int:
    """PyTorch runtime workspace: CUDA context + cuBLAS scratch, plus the
    bitsandbytes per-parameter overhead that grows sublinearly with
    batch (calibrated against the paper's appendix memory tables)."""
    from repro.calibration.constants import (
        INT4_WORKLOAD_OVERHEAD_GB_PER_BPARAM,
        INT8_WORKLOAD_OVERHEAD_GB_PER_BPARAM,
        RUNTIME_WORKSPACE_GB,
    )

    extra_gb = 0.0
    if precision is Precision.INT8:
        coeff = INT8_WORKLOAD_OVERHEAD_GB_PER_BPARAM
    elif precision is Precision.INT4:
        coeff = INT4_WORKLOAD_OVERHEAD_GB_PER_BPARAM
    else:
        coeff = 0.0
    if coeff:
        extra_gb = coeff * arch.n_params_billions * (batch_size**0.4 - 1.0)
    return int((RUNTIME_WORKSPACE_GB + extra_gb) * 1e9)


@register_backend
@dataclass(frozen=True)
class HFTransformersBackend(RuntimeBackend):
    """HF ``generate`` loop with a growing DynamicCache (the default)."""

    name = "hf-transformers"
    description = ("HuggingFace Transformers + PyTorch + bitsandbytes "
                   "(the paper's measured stack)")

    #: ``"dynamic"`` (DynamicCache concat churn, the paper's setup) or
    #: ``"static"`` (pre-allocated cache; ablation).
    kv_mode: str = "dynamic"

    def __post_init__(self) -> None:
        if self.kv_mode not in ("dynamic", "static"):
            raise ConfigError(f"unknown kv_mode {self.kv_mode!r}")

    def weight_bytes(self, arch, precision: Precision) -> int:
        return weight_bytes(arch, precision)

    def load_weights(self, allocator, arch, precision: Precision) -> None:
        load_checkpoint_weights(allocator, arch, precision,
                                self.weight_bytes(arch, precision))

    def make_timer(self, arch, device, precision: Precision, params=None):
        return StepTimer(arch, device, precision, params)

    def workspace_bytes(self, arch, precision: Precision,
                        batch_size: int) -> int:
        return torch_workspace_bytes(arch, precision, batch_size)

    def make_executor(self, timer, allocator, arch, precision: Precision,
                      batch_size: int, fast_forward: bool = True):
        return BatchExecutor(
            timer,
            allocator,
            kv_mode=self.kv_mode,
            workspace_bytes=self.workspace_bytes(arch, precision, batch_size),
            fast_forward=fast_forward,
        )

    def decode_concat_bytes(self, live_kv_bytes):
        # DynamicCache growth: read + rewrite the whole cache per step.
        return 2 * live_kv_bytes
