"""Pluggable inference-runtime backends.

The runtime is a first-class, spec-selectable axis of every experiment::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec.for_model("phi2", runtime="gguf")
    print(run_experiment(spec).as_row())

Three backends ship built in (``repro backends`` lists them):

- ``hf-transformers`` — the paper's measured stack, extracted from the
  pre-refactor engine and bit-identical to it;
- ``gguf`` — llama.cpp-style (GGUF k-quant weights, ``n_gpu_layers``
  CPU/GPU split, static KV, C++ host loop);
- ``paged`` — vLLM-style (paged KV block pool, admission by free
  blocks, zero concat traffic).

Concrete backend classes are imported lazily (PEP 562) so this package
stays importable from low-level modules without cycles; use
:func:`get_backend`/:func:`list_backends` for normal access.
"""

from repro.backends.base import RuntimeBackend, resolve_backend
from repro.backends.registry import (
    BACKEND_MODEL_VERSION,
    get_backend,
    list_backends,
    register_backend,
)

__all__ = [
    "BACKEND_MODEL_VERSION",
    "GGUFBackend",
    "GGUFCostParams",
    "HFTransformersBackend",
    "PagedBackend",
    "RuntimeBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
]

_LAZY = {
    "HFTransformersBackend": "repro.backends.hf",
    "GGUFBackend": "repro.backends.gguf",
    "GGUFCostParams": "repro.backends.gguf",
    "PagedBackend": "repro.backends.paged",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
