"""The :class:`RuntimeBackend` abstraction.

A backend bundles everything about an inference stack that is *not* the
hardware or the model: how weights are laid out in memory, which KV
policy the cache follows, what the batching discipline admits, and the
per-phase kernel-cost hooks that feed the existing
:class:`~repro.engine.kernels.StepTimer` roofline machinery.

:class:`~repro.engine.runtime.ServingEngine` delegates to a backend for
every runtime-specific decision; :class:`~repro.cluster.node.ClusterNode`
uses the same hooks for its continuous-batching admission control, so a
fleet can mix runtimes per node.

Backends are frozen dataclasses: their configuration is part of the
experiment's content address (:meth:`config_payload` is hashed into the
result-cache key alongside
:data:`~repro.backends.registry.BACKEND_MODEL_VERSION`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class RuntimeBackend:
    """Base class for inference-runtime backends.

    Subclasses override the hooks below; the defaults describe the
    most common behaviour (full-request KV reservation, no growth
    traffic) so a minimal backend only needs weight layout and a timer.
    """

    #: Registry name (class attribute on subclasses).
    name = "base"
    #: One-line description for ``repro backends``.
    description = ""
    #: True when the runtime admits work by currently-free KV blocks
    #: rather than the request's whole-lifetime KV footprint (and may
    #: therefore have to preempt when the pool later runs dry).
    admits_by_free_blocks = False

    # -- weight layout -----------------------------------------------------
    def weight_bytes(self, arch, precision: Precision) -> int:
        """Bytes the loaded weights occupy under this runtime."""
        raise NotImplementedError

    def load_weights(self, allocator, arch, precision: Precision) -> None:
        """Allocate the weights the way this runtime's loader does."""
        raise NotImplementedError

    # -- kernel cost --------------------------------------------------------
    def make_timer(self, arch, device, precision: Precision, params=None):
        """Step-cost model for (model, device, precision) on this runtime.

        Must return a :class:`~repro.engine.kernels.StepTimer` (or
        subclass): the roofline/utilization machinery and the memo
        discipline are shared across runtimes.
        """
        raise NotImplementedError

    # -- memory + batching ---------------------------------------------------
    def workspace_bytes(self, arch, precision: Precision,
                        batch_size: int) -> int:
        """Runtime scratch held for the duration of a run."""
        raise NotImplementedError

    def make_executor(self, timer, allocator, arch, precision: Precision,
                      batch_size: int, fast_forward: bool = True):
        """Executor for one batch: an object whose ``run(env, request,
        state, obs=..., track=...)`` generator yields sim timeouts and
        returns a :class:`~repro.engine.request.BatchResult`."""
        raise NotImplementedError

    # -- cluster admission hooks --------------------------------------------
    def request_kv_reservation(self, input_tokens: int, output_tokens: int,
                               bytes_per_token: int) -> int:
        """KV bytes admission control charges an arriving request.

        Default: the whole-lifetime footprint (HF/static runtimes must
        guarantee the full sequence fits before starting it).
        """
        return (input_tokens + output_tokens) * bytes_per_token

    def live_kv_bytes(self, input_tokens: int, generated: int,
                      output_tokens: int, bytes_per_token: int) -> int:
        """KV bytes a running request holds right now.

        Default: equal to the admission reservation — runtimes that
        reserve up front never grow past it.
        """
        return self.request_kv_reservation(input_tokens, output_tokens,
                                           bytes_per_token)

    def decode_concat_bytes(self, live_kv_bytes: float) -> float:
        """Extra DRAM traffic one decode step pays to grow the cache.

        Default: none (pre-allocated / paged caches write in place).
        """
        return 0.0

    # -- validation + identity ----------------------------------------------
    def validate_precision(self, precision: Precision) -> None:
        """Raise :class:`~repro.errors.ConfigError` if unsupported."""

    def config_payload(self) -> dict:
        """JSON-serialisable configuration for content addressing."""
        payload = {"name": self.name}
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if dataclasses.is_dataclass(v):
                v = dataclasses.asdict(v)
            payload[f.name] = v
        return payload

    def with_(self, **kwargs) -> "RuntimeBackend":
        """Copy with configuration overrides."""
        return dataclasses.replace(self, **kwargs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def resolve_backend(backend: "Optional[RuntimeBackend | str]",
                    default: str = "hf-transformers") -> RuntimeBackend:
    """Coerce a name-or-instance argument to a backend instance."""
    from repro.backends.registry import get_backend

    if backend is None:
        return get_backend(default)
    if isinstance(backend, RuntimeBackend):
        return backend
    return get_backend(backend)
