"""Reporting: tables, ASCII figures, CSV/JSON export, paper regeneration.

- :mod:`repro.reporting.tables` — markdown/aligned-text tables from
  lists of dict rows.
- :mod:`repro.reporting.figures` — terminal-renderable line and bar
  charts (the repo has no display; every paper figure is regenerated as
  an ASCII panel plus its underlying data).
- :mod:`repro.reporting.export` — CSV/JSON writers.
- :mod:`repro.reporting.compare` — paper-vs-measured comparison tables
  with per-cell relative deviation (feeds EXPERIMENTS.md).
- :mod:`repro.reporting.breakdown` — per-phase latency attribution from
  the observability layer's spans.
- :mod:`repro.reporting.backends` — cross-runtime comparison tables
  (tok/s, TTFT, energy/token per backend at a fixed cell).
- :mod:`repro.reporting.kvtier` — KV-lifecycle policy comparison
  tables (goodput/TTFT vs. policy with sacrifice-baseline deltas).
- :mod:`repro.reporting.fairness` — fair-scheduler comparison tables
  (token-weighted Jain / min good share with FCFS-baseline deltas).
- :mod:`repro.reporting.comparison` — the shared baseline-first
  comparison recipe the four tables above are built on.
- :mod:`repro.reporting.frontier` — the sustainability frontier
  (J/token and gCO₂/token vs. quality proxy, LLM-only baseline).
- :mod:`repro.reporting.plan` — capacity-plan candidate tables
  (nodes/watts/J-per-token deltas against the chosen configuration).
"""

from repro.reporting.tables import format_table, markdown_table
from repro.reporting.figures import ascii_bars, ascii_lines
from repro.reporting.export import write_csv, write_json
from repro.reporting.compare import compare_rows, deviation_summary
from repro.reporting.breakdown import phase_breakdown
from repro.reporting.backends import runtime_comparison
from repro.reporting.comparison import baseline_comparison
from repro.reporting.frontier import carbon_frontier
from repro.reporting.kvtier import kv_policy_comparison
from repro.reporting.fairness import fairness_comparison
from repro.reporting.plan import plan_table

__all__ = [
    "ascii_bars",
    "ascii_lines",
    "baseline_comparison",
    "carbon_frontier",
    "compare_rows",
    "deviation_summary",
    "fairness_comparison",
    "format_table",
    "kv_policy_comparison",
    "markdown_table",
    "phase_breakdown",
    "plan_table",
    "runtime_comparison",
    "write_csv",
    "write_json",
]
