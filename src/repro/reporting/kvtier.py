"""KV-lifecycle policy comparison tables.

Lays :class:`~repro.cluster.slo.ClusterReport` rows from runs that
differ only in their KV policy side by side — goodput, TTFT, lost
tokens, swap traffic, prefix hits — with deltas against the
``sacrifice`` baseline when it is present, so the table answers the
question the kvtier subsystem exists for: what did preserving (or
sharing) KV buy at this memory-pressure point?
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.slo import ClusterReport
from repro.reporting.comparison import baseline_comparison

#: The baseline policy deltas are computed against (today's behaviour).
BASELINE_POLICY = "sacrifice"


def kv_policy_comparison(
    runs: Sequence[Tuple[str, ClusterReport]],
) -> List[dict]:
    """Side-by-side policy rows from ``(policy_label, report)`` pairs.

    Rows keep the input order.  ``goodput_x`` and ``ttft_saved_s`` are
    relative to the first run whose label starts with
    :data:`BASELINE_POLICY`; blank when no baseline run is present.
    """
    def build_row(run: Tuple[str, ClusterReport]) -> dict:
        label, rep = run
        return {
            "kv_policy": label,
            "completed": rep.completed,
            "goodput_rps": round(rep.goodput_rps, 4),
            "p50_ttft_s": round(rep.p50_ttft_s, 3),
            "p99_ttft_s": round(rep.p99_ttft_s, 3),
            "lost_tokens": rep.lost_tokens,
            "swap_outs": rep.swap_outs,
            "sacrifices": rep.sacrifices,
            "swapped_gb": round(rep.swapped_gb, 3),
            "prefix_hit_rate": round(rep.prefix_hit_rate, 3),
            "j_per_token": round(rep.j_per_token, 4),
        }

    def build_deltas(run: Tuple[str, ClusterReport],
                     base_run: Optional[Tuple[str, ClusterReport]]) -> dict:
        rep = run[1]
        base = base_run[1] if base_run is not None else None
        goodput_x: object = ""
        ttft_saved: object = ""
        if base is not None and base.goodput_rps > 0:
            goodput_x = round(rep.goodput_rps / base.goodput_rps, 2)
            ttft_saved = round(base.p50_ttft_s - rep.p50_ttft_s, 3)
        return {"goodput_x": goodput_x, "ttft_saved_s": ttft_saved}

    return baseline_comparison(
        list(runs),
        lambda run: run[0].split("-")[0] == BASELINE_POLICY,
        build_row, build_deltas)
