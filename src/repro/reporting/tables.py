"""Plain-text and markdown tables from dict rows."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


def _cell(value: Any) -> str:
    if value is None:
        return "OOM"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        # Two decimals reads best, but sub-cent values (g/token,
        # $/kWh) would truncate to 0.00 — keep their digits.
        if value and abs(value) < 0.005:
            return f"{value:.6f}"
        return f"{value:.2f}"
    return str(value)


def _columns(rows: Sequence[Dict[str, Any]],
             columns: Optional[Sequence[str]]) -> List[str]:
    if not rows:
        raise ReproError("cannot format an empty table")
    if columns is not None:
        return list(columns)
    cols: List[str] = []
    for row in rows:
        for k in row:
            if k not in cols:
                cols.append(k)
    return cols


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Aligned monospace table (what the benches print)."""
    cols = _columns(rows, columns)
    grid = [[_cell(r.get(c)) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(g[i]) for g in grid)) for i, c in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for g in grid:
        lines.append("  ".join(v.rjust(w) for v, w in zip(g, widths)))
    return "\n".join(lines)


def markdown_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """GitHub-flavoured markdown table."""
    cols = _columns(rows, columns)
    out = ["| " + " | ".join(cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(_cell(r.get(c)) for c in cols) + " |")
    return "\n".join(out)
