"""Fair-scheduler comparison tables.

Lays :class:`~repro.cluster.slo.ClusterReport` rows from runs that
differ only in their queue discipline side by side — token-weighted
Jain, goodput, wasted and throttled tokens, per-tenant good shares —
with deltas against the ``fcfs`` baseline when it is present, so the
table answers the question the fairness subsystem exists for: what did
fair queueing buy the polite tenants, and what did it cost the flood?
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.slo import ClusterReport
from repro.reporting.comparison import baseline_comparison

#: The baseline discipline deltas are computed against (today's order).
BASELINE_SCHEDULER = "fcfs"


def fairness_comparison(
    runs: Sequence[Tuple[str, ClusterReport]],
) -> List[dict]:
    """Side-by-side scheduler rows from ``(scheduler, report)`` pairs.

    Rows keep the input order.  ``jain_tokens_gain`` and
    ``min_share_gain`` (the worst-off tenant's SLO-good share, the
    max-min fairness view) are relative to the first run labelled
    :data:`BASELINE_SCHEDULER`; blank when no baseline run is present.
    """
    def min_share(rep: ClusterReport) -> float:
        shares = [t.slo_good_share for t in rep.tenants]
        return min(shares) if shares else 0.0

    def build_row(run: Tuple[str, ClusterReport]) -> dict:
        label, rep = run
        return {
            "scheduler": label,
            "completed": rep.completed,
            "throttled": rep.throttled,
            "jain": round(rep.jains_index, 3),
            "jain_tokens": round(rep.jain_tokens, 3),
            "min_good_share": round(min_share(rep), 3),
            "goodput_rps": round(rep.goodput_rps, 4),
            "p99_ttft_s": round(rep.p99_ttft_s, 3),
            "wasted_tokens": rep.wasted_tokens,
            "throttled_tokens": rep.throttled_tokens,
            "j_per_token": round(rep.j_per_token, 4),
        }

    def build_deltas(run: Tuple[str, ClusterReport],
                     base_run: Optional[Tuple[str, ClusterReport]]) -> dict:
        rep = run[1]
        base = base_run[1] if base_run is not None else None
        jain_gain: object = ""
        share_gain: object = ""
        if base is not None:
            jain_gain = round(rep.jain_tokens - base.jain_tokens, 3)
            share_gain = round(min_share(rep) - min_share(base), 3)
        return {"jain_tokens_gain": jain_gain, "min_share_gain": share_gain}

    return baseline_comparison(
        list(runs),
        lambda run: run[0] == BASELINE_SCHEDULER,
        build_row, build_deltas)
