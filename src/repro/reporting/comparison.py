"""The shared baseline-first comparison-table builder.

Every comparison table in this package follows the same recipe: pick
the first entry matching a baseline predicate, emit one row per entry
in input order, and append delta columns computed against that
baseline (blank strings when it is absent or unusable).  The recipe
used to be re-implemented in :mod:`repro.reporting.backends`,
:mod:`repro.reporting.kvtier` and :mod:`repro.reporting.fairness`;
:func:`baseline_comparison` is the single copy they — and
:mod:`repro.reporting.plan` — now build on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, TypeVar

E = TypeVar("E")


def baseline_comparison(
    entries: Sequence[E],
    is_baseline: Callable[[E], bool],
    build_row: Callable[[E], Dict],
    build_deltas: Callable[[E, Optional[E]], Dict],
) -> List[Dict]:
    """One row per entry, with deltas against the first baseline entry.

    ``build_row`` produces the entry's own columns; ``build_deltas``
    receives ``(entry, baseline-or-None)`` and returns the delta
    columns, which are merged after the row columns so they land at
    the end of every row.  Row order follows the input order — the
    baseline is *found* by predicate, never moved.
    """
    base: Optional[E] = next((e for e in entries if is_baseline(e)), None)
    rows: List[Dict] = []
    for e in entries:
        row = build_row(e)
        row.update(build_deltas(e, base))
        rows.append(row)
    return rows
