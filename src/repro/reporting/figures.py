"""ASCII charts for regenerating the paper's figures in a terminal."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

_MARKS = "ox+*#@%&"


def ascii_lines(
    series: Dict[str, Sequence[Optional[float]]],
    x_labels: Sequence[str],
    title: str = "",
    height: int = 12,
    width: int = 64,
    log_y: bool = False,
) -> str:
    """Multi-series line/scatter panel.

    ``series`` maps name -> y values (None = missing/OOM, skipped);
    all series share ``x_labels``.
    """
    import math

    if not series:
        raise ReproError("no series to plot")
    n = len(x_labels)
    for name, ys in series.items():
        if len(ys) != n:
            raise ReproError(f"series {name!r} length {len(ys)} != {n} x labels")
    vals = [y for ys in series.values() for y in ys if y is not None]
    if not vals:
        raise ReproError("all values are missing")

    def tr(v: float) -> float:
        return math.log10(v) if log_y else v

    lo = min(tr(v) for v in vals if not log_y or v > 0)
    hi = max(tr(v) for v in vals if not log_y or v > 0)
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    xs = [int(i * (width - 1) / max(1, n - 1)) for i in range(n)]
    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for i, y in enumerate(ys):
            if y is None or (log_y and y <= 0):
                continue
            row = height - 1 - int((tr(y) - lo) / span * (height - 1))
            grid[row][xs[i]] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top = 10**hi if log_y else hi
    bot = 10**lo if log_y else lo
    lines.append(f"{top:10.6g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bot:10.6g} +" + "".join(grid[-1]))
    # x axis labels, spread under their positions.
    axis = [" "] * (width + 12)
    for i, lbl in enumerate(x_labels):
        pos = xs[i] + 12
        for j, ch in enumerate(str(lbl)):
            if pos + j < len(axis):
                axis[pos + j] = ch
    lines.append("".join(axis))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend + ("   (log y)" if log_y else ""))
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, Optional[float]],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart; None renders as an OOM marker."""
    if not values:
        raise ReproError("no bars to plot")
    present = [v for v in values.values() if v is not None]
    top = max(present) if present else 1.0
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, v in values.items():
        if v is None:
            lines.append(f"{name.ljust(label_w)} | OOM")
            continue
        n = int(round(v / top * width)) if top > 0 else 0
        lines.append(f"{name.ljust(label_w)} | {'#' * n} {v:.4g}{unit}")
    return "\n".join(lines)
