"""CSV and JSON result writers."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Sequence

from repro.errors import ReproError


def write_csv(path: str | Path, rows: Sequence[Dict[str, Any]]) -> Path:
    """Write dict rows to CSV (columns = union of keys, first-seen order)."""
    if not rows:
        raise ReproError("cannot export an empty result set")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    cols: list = []
    for r in rows:
        for k in r:
            if k not in cols:
                cols.append(k)
    with out.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols)
        writer.writeheader()
        for r in rows:
            writer.writerow(r)
    return out


def write_json(path: str | Path, payload: Any) -> Path:
    """Write any JSON-serialisable payload, pretty-printed."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False, default=str)
        fh.write("\n")
    return out
