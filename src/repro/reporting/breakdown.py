"""Span-based per-phase latency breakdown.

Folds an :class:`~repro.obs.Observer`'s closed spans into one row per
(span name, category): how many spans, how much simulated time they
cover, and the share of the total covered time.  This is the TTFT-vs-
decode attribution view the observability layer exists for — e.g. after
a cluster run it shows directly how much of the request wall time was
queue wait versus prefill versus decode, and how much chaos (fault
episodes) overlapped the serving work.

Spans on different tracks overlap in wall time (four nodes decoding at
once cover 4x the clock), so ``share`` is a share of *span-seconds*,
not of the makespan.
"""

from __future__ import annotations

from typing import List

from repro.obs.span import Observer


def phase_breakdown(obs: Observer) -> List[dict]:
    """One row per (phase name, category), largest total time first.

    Ties (including zero-duration phases) break by name so the table is
    deterministic.  Instants contribute a count-only row with zero time.
    """
    totals = {}
    for s in obs.spans:
        key = (s.name, s.cat)
        n, t = totals.get(key, (0, 0.0))
        totals[key] = (n + 1, t + s.duration_s)
    for i in obs.instants:
        key = (i.name, i.cat)
        n, t = totals.get(key, (0, 0.0))
        totals[key] = (n + 1, t)
    covered = sum(t for _, t in totals.values())
    rows = []
    for (name, cat), (n, t) in sorted(
            totals.items(), key=lambda kv: (-kv[1][1], kv[0])):
        rows.append({
            "phase": name,
            "cat": cat,
            "count": n,
            "total_s": round(t, 3),
            "mean_s": round(t / n, 4) if n else 0.0,
            "share": round(t / covered, 3) if covered > 0 else 0.0,
        })
    return rows
