"""The sustainability frontier: J/token and gCO₂/token vs. quality.

Lays :class:`~repro.cluster.slo.ClusterReport` rows from runs that
differ only in their sustainability levers (cascade operating point,
routing policy, deferral) side by side — energy per token, carbon per
token, escalation count, quality proxy — with deltas against the
LLM-only baseline when it is present, so the table answers the question
the cascade exists for: how many joules and grams did serving small
buy, and how much quality proxy did it cost?
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.slo import ClusterReport
from repro.reporting.comparison import baseline_comparison

#: The baseline label deltas are computed against (no cascade, the big
#: model serves everything).
BASELINE_LABEL = "llm-only"

#: One frontier operating point: label, its report and its
#: quality-proxy regression vs. LLM-only serving (percent, 0 for the
#: baseline itself).
FrontierRun = Tuple[str, ClusterReport, float]


def carbon_frontier(runs: Sequence[FrontierRun]) -> List[dict]:
    """Side-by-side frontier rows from ``(label, report, Δquality%)``.

    Rows keep the input order.  ``j_saved_pct`` and ``g_saved_pct`` are
    relative to the first run whose label starts with
    :data:`BASELINE_LABEL`; blank when no baseline run is present.
    """
    def build_row(run: FrontierRun) -> dict:
        label, rep, quality_delta = run
        return {
            "operating_point": label,
            "completed": rep.completed,
            "escalations": rep.escalations,
            "goodput_rps": round(rep.goodput_rps, 4),
            "j_per_token": round(rep.j_per_token, 4),
            "carbon_g": round(rep.carbon_g, 4),
            "g_per_token": round(rep.g_per_token, 6),
            "energy_cost_usd": round(rep.energy_cost_usd, 6),
            "quality_delta_pct": round(quality_delta, 3),
        }

    def build_deltas(run: FrontierRun,
                     base_run: Optional[FrontierRun]) -> dict:
        rep = run[1]
        base = base_run[1] if base_run is not None else None
        j_saved: object = ""
        g_saved: object = ""
        if base is not None and base.j_per_token > 0:
            j_saved = round(
                (1.0 - rep.j_per_token / base.j_per_token) * 100.0, 2)
        if base is not None and base.g_per_token > 0:
            g_saved = round(
                (1.0 - rep.g_per_token / base.g_per_token) * 100.0, 2)
        return {"j_saved_pct": j_saved, "g_saved_pct": g_saved}

    return baseline_comparison(
        list(runs),
        lambda run: run[0].split("@")[0] == BASELINE_LABEL,
        build_row, build_deltas)
