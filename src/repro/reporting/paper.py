"""Programmatic regeneration of every paper artifact.

``regenerate("table4")`` returns the rows behind any table/figure of
the paper, using the same sweeps the benchmark suite runs.  The
benchmark files add assertions and persistence on top; this facade is
for notebooks and downstream tooling.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError


def _table1(n_runs: int) -> List[dict]:
    from repro.models import PAPER_MODELS, footprint_table

    return footprint_table(PAPER_MODELS.values())


def _table2(n_runs: int) -> List[dict]:
    from repro.power import PAPER_POWER_MODES

    return [m.as_row() for m in PAPER_POWER_MODES.values()]


def _table3(n_runs: int) -> List[dict]:
    from repro.hardware import get_device
    from repro.perplexity import perplexity_table

    return perplexity_table(get_device("jetson-orin-agx-64gb"))


def _batch_rows(workload: str, n_runs: int) -> List[dict]:
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import batch_size_sweep

    rows: List[dict] = []
    for model in ("phi2", "llama", "mistral", "deepq"):
        spec = ExperimentSpec.for_model(model, workload=workload,
                                        n_runs=n_runs)
        rows.extend(r.as_row() for r in batch_size_sweep(spec))
    return rows


def _seqlen_rows(workload: str, n_runs: int) -> List[dict]:
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import seq_len_sweep

    rows: List[dict] = []
    for model in ("phi2", "llama", "mistral", "deepq"):
        spec = ExperimentSpec.for_model(model, workload=workload,
                                        n_runs=n_runs)
        rows.extend(r.as_row() for r in seq_len_sweep(spec))
    return rows


def _quant_rows(n_runs: int) -> List[dict]:
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import quantization_sweep

    rows: List[dict] = []
    for model in ("phi2", "llama", "mistral", "deepq"):
        spec = ExperimentSpec.for_model(model, n_runs=n_runs)
        rows.extend(r.as_row() for r in quantization_sweep(spec))
    return rows


def _powermode_rows(n_runs: int) -> List[dict]:
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import power_mode_sweep

    rows: List[dict] = []
    for model in ("phi2", "llama", "mistral", "deepq"):
        spec = ExperimentSpec.for_model(model, n_runs=n_runs)
        rows.extend(r.as_row() for r in power_mode_sweep(spec))
    return rows


def _power_energy_rows(n_runs: int) -> List[dict]:
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import batch_quant_power_sweep

    rows: List[dict] = []
    for model in ("phi2", "llama", "mistral", "deepq"):
        spec = ExperimentSpec.for_model(model, n_runs=n_runs)
        for prec, results in batch_quant_power_sweep(spec).items():
            for r in results:
                row = r.as_row()
                row["precision"] = prec.value
                rows.append(row)
    return rows


_REGISTRY: Dict[str, Callable[[int], List[dict]]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": lambda n: _batch_rows("wikitext2", n),
    "table5": lambda n: _batch_rows("longbench", n),
    "table6": lambda n: _seqlen_rows("longbench", n),
    "table7": lambda n: _seqlen_rows("wikitext2", n),
    "fig1": lambda n: _batch_rows("wikitext2", n),
    "fig2": lambda n: _seqlen_rows("longbench", n),
    "fig3": _quant_rows,
    "fig4": _power_energy_rows,
    "fig5": _powermode_rows,
    "fig6": lambda n: _batch_rows("wikitext2", n),
    "fig7": lambda n: _batch_rows("longbench", n),
    "fig8": lambda n: _seqlen_rows("longbench", n),
    "fig9": lambda n: _seqlen_rows("wikitext2", n),
    "fig10": _power_energy_rows,
    "fig11": _quant_rows,
}


def artifacts() -> List[str]:
    """Every regenerable artifact id."""
    return sorted(_REGISTRY)


def regenerate(artifact: str, n_runs: int = 1) -> List[dict]:
    """Rows behind one paper table/figure (see :func:`artifacts`)."""
    builder = _REGISTRY.get(artifact.strip().lower())
    if builder is None:
        raise ExperimentError(
            f"unknown artifact {artifact!r}; choose from {', '.join(artifacts())}"
        )
    if n_runs < 1:
        raise ExperimentError("n_runs must be >= 1")
    return builder(n_runs)
