"""Cross-backend comparison tables.

Groups :class:`~repro.engine.runtime.RunResult` rows by experimental
cell — (model, device, precision, power mode, batch, sequence length) —
and lays the runtimes of each cell side by side: throughput, TTFT,
energy per token, memory, and the speedup over the ``hf-transformers``
baseline when that runtime is present in the cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.runtime import RunResult
from repro.reporting.comparison import baseline_comparison

#: The baseline runtime speedups are computed against.
BASELINE_RUNTIME = "hf-transformers"


def _cell_of(r: RunResult) -> Tuple:
    return (r.model, r.device, r.precision.value, r.power_mode,
            r.batch_size, r.gen.total_tokens)


def _ttft_s(r: RunResult) -> float:
    """Mean time-to-first-token: prefill time of the non-OOM batches
    (the static-batch protocol's TTFT)."""
    ok = [b for b in r.batches if not b.oom]
    if not ok:
        return 0.0
    return sum(b.prefill_s for b in ok) / len(ok)


def _energy_j_per_token(r: RunResult) -> float:
    tokens = r.batch_size * r.gen.output_tokens * max(
        1, sum(1 for b in r.batches if not b.oom))
    return r.energy_j / tokens if tokens else 0.0


def runtime_comparison(results: Sequence[RunResult]) -> List[dict]:
    """Side-by-side backend rows, one per (cell, runtime).

    Rows keep the input's cell order, with runtimes sorted inside each
    cell (baseline first).  ``speedup_x`` is throughput relative to the
    cell's ``hf-transformers`` row, blank when the baseline is missing
    or either side OOMed.
    """
    cells: Dict[Tuple, List[RunResult]] = {}
    order: List[Tuple] = []
    for r in results:
        key = _cell_of(r)
        if key not in cells:
            cells[key] = []
            order.append(key)
        cells[key].append(r)

    def build_row(r: RunResult) -> dict:
        return {
            "model": r.model,
            "device": r.device,
            "precision": r.precision.value,
            "power_mode": r.power_mode,
            "batch_size": r.batch_size,
            "seq_len": r.gen.total_tokens,
            "runtime": r.runtime,
            "oom": r.oom,
            "throughput_tok_s": round(r.throughput_tok_s, 2),
            "ttft_s": round(_ttft_s(r), 3),
            "energy_j_per_tok": round(_energy_j_per_token(r), 3),
            "ram_gb": round(r.total_gb, 2),
        }

    def build_deltas(r: RunResult, base: Optional[RunResult]) -> dict:
        speedup: object = ""
        if base is not None and not r.oom and base.throughput_tok_s > 0:
            speedup = round(r.throughput_tok_s / base.throughput_tok_s, 2)
        return {"speedup_x": speedup}

    rows: List[dict] = []
    for key in order:
        group = sorted(
            cells[key],
            key=lambda r: (r.runtime != BASELINE_RUNTIME, r.runtime))
        rows.extend(baseline_comparison(
            group,
            lambda r: r.runtime == BASELINE_RUNTIME and not r.oom,
            build_row, build_deltas))
    return rows
