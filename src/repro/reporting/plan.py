"""Capacity-plan comparison tables.

Lays the rows of a :class:`~repro.plan.spec.PlanReport` side by side
with deltas against the *chosen* configuration — the feasible row with
the fewest nodes (fleet watts breaking ties) — so the table answers
the question ``repro plan`` exists for: what does each alternative
cost, in nodes, watts and joules per token, relative to the
recommendation?  Built on the same
:func:`~repro.reporting.comparison.baseline_comparison` recipe as the
runtime/kvtier/fairness tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.reporting.comparison import baseline_comparison


def plan_table(report) -> List[Dict]:
    """Side-by-side candidate rows from a ``PlanReport``.

    Rows keep the report's order.  ``chosen`` marks the recommended
    row; ``extra_nodes``, ``watts_x`` and ``jpt_x`` are relative to it,
    blank when no candidate met the SLO (or, for the energy ratio,
    when either side is unbounded).
    """
    chosen = report.chosen

    def build_row(r: Dict) -> Dict:
        row = dict(r)
        row["chosen"] = chosen is not None and r is chosen
        return row

    def build_deltas(r: Dict, base: Optional[Dict]) -> Dict:
        extra: object = ""
        watts_x: object = ""
        jpt_x: object = ""
        if base is not None and r["slo_ok"]:
            extra = r["nodes"] - base["nodes"]
            if base["watts"] > 0:
                watts_x = round(r["watts"] / base["watts"], 2)
            if (isinstance(r["j_per_token"], float)
                    and isinstance(base["j_per_token"], float)
                    and base["j_per_token"] > 0):
                jpt_x = round(r["j_per_token"] / base["j_per_token"], 2)
        return {"extra_nodes": extra, "watts_x": watts_x, "jpt_x": jpt_x}

    return baseline_comparison(
        report.rows,
        lambda r: chosen is not None and r is chosen,
        build_row, build_deltas)
