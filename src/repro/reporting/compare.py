"""Paper-vs-measured comparison tables (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


def compare_rows(
    paper: Sequence[Dict[str, Any]],
    ours: Sequence[Dict[str, Any]],
    key_cols: Sequence[str],
    value_cols: Sequence[str],
) -> List[Dict[str, Any]]:
    """Join two row sets on ``key_cols`` and diff each value column.

    Output rows carry ``<col>_paper``, ``<col>_ours`` and ``<col>_dev``
    (relative deviation, ours/paper - 1), with None where either side is
    OOM; a ``match`` column flags OOM-agreement mismatches.
    """
    if not paper or not ours:
        raise ReproError("both row sets must be non-empty")

    def key(r: Dict[str, Any]) -> tuple:
        return tuple(r.get(k) for k in key_cols)

    ours_by_key = {key(r): r for r in ours}
    out: List[Dict[str, Any]] = []
    for p in paper:
        k = key(p)
        o = ours_by_key.get(k)
        if o is None:
            continue
        row: Dict[str, Any] = {c: p[c] for c in key_cols}
        agree = True
        for c in value_cols:
            pv: Optional[float] = p.get(c)
            ov: Optional[float] = o.get(c)
            row[f"{c}_paper"] = pv
            row[f"{c}_ours"] = ov
            if pv is None or ov is None:
                row[f"{c}_dev"] = None
                agree = agree and (pv is None) == (ov is None)
            else:
                row[f"{c}_dev"] = round(ov / pv - 1.0, 3) if pv else None
        row["match"] = agree
        out.append(row)
    return out


def deviation_summary(
    compared: Sequence[Dict[str, Any]], value_cols: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Per-column deviation stats: mean/median/max absolute deviation."""
    import numpy as np

    if not compared:
        raise ReproError("nothing to summarise")
    out: Dict[str, Dict[str, float]] = {}
    for c in value_cols:
        devs = [
            abs(r[f"{c}_dev"]) for r in compared if r.get(f"{c}_dev") is not None
        ]
        if not devs:
            continue
        out[c] = {
            "mean_abs_dev": round(float(np.mean(devs)), 3),
            "median_abs_dev": round(float(np.median(devs)), 3),
            "max_abs_dev": round(float(np.max(devs)), 3),
            "n": len(devs),
        }
    return out
