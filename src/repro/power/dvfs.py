"""Dynamic voltage and frequency scaling curves.

CMOS dynamic power is ``P = C * f * V(f)^2``.  Voltage rises roughly
linearly with frequency between a floor (near-threshold) and the maximum
operating voltage, which is why halving the clock cuts power by much more
than half — the effect the paper's power modes A/B exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DvfsCurve:
    """Linear-in-frequency voltage model between a floor and a peak.

    ``v(f) = v_min + (v_max - v_min) * (f - f_min) / (f_max - f_min)``
    clamped to ``[v_min, v_max]``.

    Attributes
    ----------
    f_min_hz / f_max_hz:
        Frequency range of the domain.
    v_min / v_max:
        Rail voltage at the range endpoints (volts).
    """

    f_min_hz: float
    f_max_hz: float
    v_min: float = 0.62
    v_max: float = 1.05

    def __post_init__(self) -> None:
        if self.f_min_hz <= 0 or self.f_max_hz <= self.f_min_hz:
            raise ConfigError("DVFS curve needs 0 < f_min < f_max")
        if self.v_min <= 0 or self.v_max < self.v_min:
            raise ConfigError("DVFS curve needs 0 < v_min <= v_max")

    def voltage(self, freq_hz: float) -> float:
        """Rail voltage at ``freq_hz`` (clamped to the curve's range)."""
        if freq_hz <= self.f_min_hz:
            return self.v_min
        if freq_hz >= self.f_max_hz:
            return self.v_max
        frac = (freq_hz - self.f_min_hz) / (self.f_max_hz - self.f_min_hz)
        return self.v_min + (self.v_max - self.v_min) * frac

    def dynamic_power_ratio(self, freq_hz: float) -> float:
        """``f * V(f)^2`` normalised to its value at ``f_max``.

        This is the factor by which a domain's *dynamic* power shrinks
        when clocked down, independent of the absolute capacitance.
        """
        top = self.f_max_hz * self.voltage(self.f_max_hz) ** 2
        return (freq_hz * self.voltage(freq_hz) ** 2) / top
