"""Power-mode definitions (nvpmodel analogue).

The paper evaluates MAXN plus eight custom modes (its Table 2), each
varying exactly one resource dimension relative to MAXN:

====  =========  =========  =========  ==========
Mode  GPU (MHz)  CPU (GHz)  CPU cores  Mem (MHz)
====  =========  =========  =========  ==========
MAXN  1301       2.2        12         3200
A     800        2.2        12         3200
B     400        2.2        12         3200
C     1301       1.7        12         3200
D     1301       1.2        12         3200
E     1301       2.2        8          3200
F     1301       2.2        4          3200
G     1301       2.2        12         2133
H     1301       2.2        12         665
====  =========  =========  =========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import PowerModeError
from repro.hardware.device import EdgeDevice
from repro.units import ghz, mhz


@dataclass(frozen=True)
class PowerMode:
    """One nvpmodel-style operating point."""

    name: str
    gpu_freq_hz: float
    cpu_freq_hz: float
    cpu_online_cores: int
    mem_freq_hz: float

    def __post_init__(self) -> None:
        if min(self.gpu_freq_hz, self.cpu_freq_hz, self.mem_freq_hz) <= 0:
            raise PowerModeError(f"power mode {self.name!r} has a non-positive frequency")
        if self.cpu_online_cores < 1:
            raise PowerModeError(f"power mode {self.name!r} must keep >= 1 CPU core")

    def as_row(self) -> Dict[str, float]:
        """Row for the Table-2 style report (MHz/GHz units as in the paper)."""
        return {
            "mode": self.name,
            "gpu_freq_mhz": round(self.gpu_freq_hz / 1e6),
            "cpu_freq_ghz": round(self.cpu_freq_hz / 1e9, 1),
            "cpu_cores_online": self.cpu_online_cores,
            "mem_freq_mhz": round(self.mem_freq_hz / 1e6),
        }


def _mode(name: str, gpu_mhz: float, cpu_ghz: float, cores: int, mem_mhz: float) -> PowerMode:
    return PowerMode(
        name=name,
        gpu_freq_hz=mhz(gpu_mhz),
        cpu_freq_hz=ghz(cpu_ghz),
        cpu_online_cores=cores,
        mem_freq_hz=mhz(mem_mhz),
    )


#: The paper's Table 2, in paper order.
PAPER_POWER_MODES: Dict[str, PowerMode] = {
    m.name: m
    for m in (
        _mode("MAXN", 1301, 2.2, 12, 3199),
        _mode("A", 800, 2.2, 12, 3199),
        _mode("B", 400, 2.2, 12, 3199),
        _mode("C", 1301, 1.7, 12, 3199),
        _mode("D", 1301, 1.2, 12, 3199),
        _mode("E", 1301, 2.2, 8, 3199),
        _mode("F", 1301, 2.2, 4, 3199),
        _mode("G", 1301, 2.2, 12, 2133),
        _mode("H", 1301, 2.2, 12, 665),
    )
}


def get_power_mode(name: str) -> PowerMode:
    """Look up one of the paper's modes by name (case-insensitive)."""
    mode = PAPER_POWER_MODES.get(name.strip().upper())
    if mode is None:
        known = ", ".join(PAPER_POWER_MODES)
        raise PowerModeError(f"unknown power mode {name!r}; known: {known}")
    return mode


def list_power_modes() -> List[str]:
    """Names of the paper's nvpmodel-style modes, MAXN first."""
    return list(PAPER_POWER_MODES)


def device_at_mode(device, mode: str = None) -> EdgeDevice:
    """A fresh device instance pinned at a named operating point.

    ``device`` may be a preset name or an :class:`EdgeDevice` (mutated
    in place when an instance is passed — same contract as node
    construction).  This is the operating-point lookup the analytic
    planner uses: one call yields the exact clock/core state the
    :class:`~repro.engine.kernels.StepTimer` will read.
    """
    from repro.hardware.device import get_device

    dev = get_device(device) if isinstance(device, str) else device
    if mode is not None:
        apply_power_mode(dev, get_power_mode(mode))
    return dev


def apply_power_mode(device: EdgeDevice, mode: PowerMode) -> None:
    """Set the device's operating point to ``mode``.

    Raises :class:`PowerModeError` if the mode asks for something the
    device cannot do (frequency out of range, too many cores).
    """
    from repro.errors import ConfigError

    try:
        device.gpu.set_freq(mode.gpu_freq_hz)
        device.cpu.set_freq(mode.cpu_freq_hz)
        device.cpu.set_online_cores(mode.cpu_online_cores)
        device.memory.set_freq(mode.mem_freq_hz)
    except ConfigError as exc:
        raise PowerModeError(
            f"device {device.name!r} cannot apply power mode {mode.name!r}: {exc}"
        ) from exc


# -- nvpmodel-conf-style round trip ----------------------------------------

def render_nvpmodel_conf(modes: Iterable[PowerMode]) -> str:
    """Serialise modes in a minimal nvpmodel.conf-like format."""
    lines: List[str] = []
    for i, m in enumerate(modes):
        lines.append(f"< POWER_MODEL ID={i} NAME={m.name} >")
        lines.append(f"CPU_ONLINE CORES {m.cpu_online_cores}")
        lines.append(f"CPU_FREQ MAX {int(m.cpu_freq_hz / 1e3)}")  # kHz, as sysfs
        lines.append(f"GPU_FREQ MAX {int(m.gpu_freq_hz)}")
        lines.append(f"EMC_FREQ MAX {int(m.mem_freq_hz)}")
        lines.append("")
    return "\n".join(lines)


def parse_nvpmodel_conf(text: str) -> List[PowerMode]:
    """Parse the format produced by :func:`render_nvpmodel_conf`."""
    modes: List[PowerMode] = []
    current: Dict[str, float] = {}
    name = ""

    def flush() -> None:
        nonlocal current, name
        if not name:
            return
        missing = {"cores", "cpu_khz", "gpu_hz", "emc_hz"} - set(current)
        if missing:
            raise PowerModeError(f"mode {name!r} missing fields: {sorted(missing)}")
        modes.append(
            PowerMode(
                name=name,
                gpu_freq_hz=current["gpu_hz"],
                cpu_freq_hz=current["cpu_khz"] * 1e3,
                cpu_online_cores=int(current["cores"]),
                mem_freq_hz=current["emc_hz"],
            )
        )
        current = {}
        name = ""

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("<"):
            flush()
            for token in line.strip("<> ").split():
                if token.startswith("NAME="):
                    name = token.split("=", 1)[1]
            if not name:
                raise PowerModeError(f"mode header without NAME: {line!r}")
            continue
        if not name:
            raise PowerModeError(f"nvpmodel data line outside a mode block: {line!r}")
        parts = line.split()
        if len(parts) != 3:
            raise PowerModeError(f"malformed nvpmodel line: {line!r}")
        key, _sub, value = parts
        try:
            num = float(value)
        except ValueError:
            raise PowerModeError(f"non-numeric value in line: {line!r}") from None
        if key == "CPU_ONLINE":
            current["cores"] = num
        elif key == "CPU_FREQ":
            current["cpu_khz"] = num
        elif key == "GPU_FREQ":
            current["gpu_hz"] = num
        elif key == "EMC_FREQ":
            current["emc_hz"] = num
        else:
            raise PowerModeError(f"unknown nvpmodel key {key!r}")
    flush()
    return modes
