"""Instantaneous board power from device state and component utilization.

The model is the standard CMOS decomposition: a fixed idle floor plus,
per clock domain, ``C * f * V(f)^2`` scaled by how hard the domain is
actually working.  The GPU term distinguishes *compute-limited* execution
(ALUs toggling, maximum dynamic power) from *memory-stalled* execution
(kernels resident but waiting on DRAM, much lower dynamic power) — this
distinction is what lets the model reproduce the paper's observations
that (a) memory-throttled mode H cuts power 52% even with the GPU clock
untouched, and (b) INT8, which only keeps ~60% of the GPU busy, draws
much less power than FP16/INT4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.power.dvfs import DvfsCurve


def _clamp01(x: float) -> float:
    return 0.0 if x < 0.0 else (1.0 if x > 1.0 else x)


@dataclass(frozen=True)
class ComponentUtilization:
    """Utilization snapshot produced by the inference engine for a phase.

    Attributes
    ----------
    gpu_compute:
        Fraction of wall time the GPU is executing compute-limited work.
    gpu_busy:
        Fraction of wall time any kernel is resident (>= gpu_compute).
    mem_bw:
        Achieved DRAM bandwidth / peak bandwidth *at the current clock*.
    cpu_cores_active:
        Average number of busy CPU cores (may be fractional).
    """

    gpu_compute: float = 0.0
    gpu_busy: float = 0.0
    mem_bw: float = 0.0
    cpu_cores_active: float = 0.0

    def __post_init__(self) -> None:
        if self.gpu_busy + 1e-9 < self.gpu_compute:
            raise ConfigError("gpu_busy must be >= gpu_compute")
        if self.cpu_cores_active < 0:
            raise ConfigError("cpu_cores_active must be >= 0")

    @staticmethod
    def idle() -> "ComponentUtilization":
        return ComponentUtilization()

    @staticmethod
    def from_step_cost(cost) -> "ComponentUtilization":
        """The utilization snapshot a :class:`~repro.engine.kernels.StepCost`
        implies — the single mapping both the cluster nodes and the
        analytic planner attribute step power through."""
        return ComponentUtilization(
            gpu_compute=cost.gpu_compute_frac,
            gpu_busy=cost.gpu_busy_frac,
            mem_bw=cost.mem_bw_frac,
            cpu_cores_active=cost.cpu_cores_active,
        )


@dataclass
class PowerModel:
    """Maps an :class:`EdgeDevice` operating point + utilization to watts.

    Coefficients are the *dynamic* power at max clock and 100% utilization
    of the respective domain; they are calibrated per device family (see
    :mod:`repro.calibration`).
    """

    #: GPU dynamic power when fully compute-bound at max clock (W).
    gpu_compute_w: float = 45.0
    #: GPU dynamic power when busy but stalled on memory at max clock (W).
    gpu_stall_w: float = 3.0
    #: Dynamic power of one active CPU core at max clock (W).
    cpu_core_w: float = 1.5
    #: DRAM dynamic power at 100% bandwidth utilization, max clock (W).
    mem_w: float = 8.0
    #: Static power adder per online CPU core (leakage + L2 clocking, W).
    cpu_core_static_w: float = 0.18
    gpu_dvfs: DvfsCurve = field(
        default_factory=lambda: DvfsCurve(f_min_hz=114.75e6, f_max_hz=1301e6)
    )
    cpu_dvfs: DvfsCurve = field(
        default_factory=lambda: DvfsCurve(f_min_hz=115.2e6, f_max_hz=2201.4e6)
    )
    mem_dvfs: DvfsCurve = field(
        default_factory=lambda: DvfsCurve(
            f_min_hz=204e6, f_max_hz=3199e6, v_min=0.55, v_max=0.85
        )
    )

    def breakdown(
        self, device: EdgeDevice, util: ComponentUtilization
    ) -> Dict[str, float]:
        """Per-component watts for the given state; keys sum to total."""
        gpu_scale = self.gpu_dvfs.dynamic_power_ratio(device.gpu.freq_hz)
        cpu_scale = self.cpu_dvfs.dynamic_power_ratio(device.cpu.freq_hz)
        mem_scale = self.mem_dvfs.dynamic_power_ratio(device.memory.freq_hz)

        compute = _clamp01(util.gpu_compute)
        stalled = _clamp01(util.gpu_busy) - compute
        gpu_w = gpu_scale * (self.gpu_compute_w * compute + self.gpu_stall_w * stalled)

        cores = min(util.cpu_cores_active, float(device.cpu.online_cores))
        cpu_w = cpu_scale * self.cpu_core_w * cores
        cpu_static = self.cpu_core_static_w * device.cpu.online_cores

        mem_w = mem_scale * self.mem_w * _clamp01(util.mem_bw)

        return {
            "idle": device.idle_power_w,
            "cpu_static": cpu_static,
            "gpu": gpu_w,
            "cpu": cpu_w,
            "mem": mem_w,
        }

    def power_w(self, device: EdgeDevice, util: ComponentUtilization) -> float:
        """Total instantaneous board power in watts."""
        return sum(self.breakdown(device, util).values())
