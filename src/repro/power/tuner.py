"""Power-mode search: Pareto-optimal custom operating points.

The paper evaluates nine hand-picked modes out of the "1000s" nvpmodel
supports (§2) and concludes that picking well "can help optimize LLM
serving" (§4).  This tuner does the picking: it sweeps the full
GPU x CPU x memory frequency grid with the calibrated cost and power
models, computes latency/power/energy per candidate, and extracts the
Pareto frontier — plus constrained-argmin helpers ("fastest mode under
30 W", "lowest energy within 1.5x MAXN latency").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.errors import ExperimentError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.power.model import ComponentUtilization, PowerModel
from repro.power.modes import PowerMode
from repro.quant.dtypes import Precision
from repro.units import ghz, mhz

#: Frequency grids, a superset of the paper's Table-2 values.
GPU_FREQS_MHZ = (1301, 1100, 900, 800, 600, 400)
CPU_FREQS_GHZ = (2.2, 1.7, 1.2)
MEM_FREQS_MHZ = (3199, 2133, 1600, 665)


@dataclass(frozen=True)
class TunedPoint:
    """One evaluated operating point."""

    mode: PowerMode
    latency_s: float
    power_w: float
    energy_j: float

    def dominates(self, other: "TunedPoint") -> bool:
        """True if at least as good on all axes and better on one."""
        le = (self.latency_s <= other.latency_s
              and self.power_w <= other.power_w
              and self.energy_j <= other.energy_j)
        lt = (self.latency_s < other.latency_s
              or self.power_w < other.power_w
              or self.energy_j < other.energy_j)
        return le and lt


def evaluate_mode(
    device: EdgeDevice,
    arch: TransformerArchitecture,
    precision: Precision,
    mode: PowerMode,
    batch_size: int = 32,
    input_tokens: int = 32,
    output_tokens: int = 64,
    params: Optional[EngineCostParams] = None,
    power_model: Optional[PowerModel] = None,
) -> TunedPoint:
    """Closed-form latency/power/energy of one batch under ``mode``."""
    from repro.power.modes import apply_power_mode

    power_model = power_model or PowerModel()
    apply_power_mode(device, mode)
    timer = StepTimer(arch, device, precision, params)

    latency = timer.prefill(batch_size, input_tokens).seconds
    mid = input_tokens + output_tokens // 2
    step = timer.decode_step(batch_size, mid)
    latency += step.seconds * output_tokens

    util = ComponentUtilization(
        gpu_compute=step.gpu_compute_frac,
        gpu_busy=step.gpu_busy_frac,
        mem_bw=step.mem_bw_frac,
        cpu_cores_active=step.cpu_cores_active,
    )
    watts = power_model.power_w(device, util)
    return TunedPoint(mode=mode, latency_s=latency, power_w=watts,
                      energy_j=watts * latency)


def sweep_operating_points(
    device: EdgeDevice,
    arch: TransformerArchitecture,
    precision: Precision,
    gpu_freqs_mhz: Sequence[float] = GPU_FREQS_MHZ,
    cpu_freqs_ghz: Sequence[float] = CPU_FREQS_GHZ,
    mem_freqs_mhz: Sequence[float] = MEM_FREQS_MHZ,
    **eval_kwargs,
) -> List[TunedPoint]:
    """Evaluate the full frequency grid (cores stay online: the paper
    shows core count is performance-neutral, so offlining is pure
    static-power savings handled separately)."""
    points: List[TunedPoint] = []
    for g in gpu_freqs_mhz:
        for c in cpu_freqs_ghz:
            for m in mem_freqs_mhz:
                mode = PowerMode(
                    name=f"g{g:.0f}-c{c:.1f}-m{m:.0f}",
                    gpu_freq_hz=mhz(g),
                    cpu_freq_hz=ghz(c),
                    cpu_online_cores=device.cpu.total_cores,
                    mem_freq_hz=mhz(m),
                )
                points.append(
                    evaluate_mode(device, arch, precision, mode, **eval_kwargs)
                )
    device.reset_to_max()
    return points


def pareto_frontier(points: Sequence[TunedPoint]) -> List[TunedPoint]:
    """Non-dominated subset, sorted by latency."""
    if not points:
        raise ExperimentError("no points to filter")
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.latency_s)


def best_under_power_cap(
    points: Sequence[TunedPoint], cap_w: float
) -> Optional[TunedPoint]:
    """Fastest point drawing at most ``cap_w`` watts."""
    ok = [p for p in points if p.power_w <= cap_w]
    return min(ok, key=lambda p: p.latency_s) if ok else None


def best_energy_within_slowdown(
    points: Sequence[TunedPoint], max_slowdown: float,
    baseline: Optional[TunedPoint] = None,
) -> Optional[TunedPoint]:
    """Lowest-energy point within ``max_slowdown``x of the fastest."""
    if max_slowdown < 1.0:
        raise ExperimentError("max_slowdown must be >= 1")
    base = baseline or min(points, key=lambda p: p.latency_s)
    ok = [p for p in points if p.latency_s <= base.latency_s * max_slowdown]
    return min(ok, key=lambda p: p.energy_j) if ok else None
