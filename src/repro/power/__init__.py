"""Power modes, DVFS and the board power model.

- :mod:`repro.power.dvfs` — voltage/frequency operating curves.
- :mod:`repro.power.modes` — :class:`PowerMode` definitions including the
  paper's Table 2 set (MAXN and custom modes A-H), plus an nvpmodel-style
  config parser/emitter.
- :mod:`repro.power.model` — converts device state + component
  utilizations into instantaneous watts (what jtop would display).
"""

from repro.power.dvfs import DvfsCurve
from repro.power.modes import (
    PAPER_POWER_MODES,
    PowerMode,
    apply_power_mode,
    device_at_mode,
    get_power_mode,
    list_power_modes,
    parse_nvpmodel_conf,
    render_nvpmodel_conf,
)
from repro.power.model import ComponentUtilization, PowerModel

__all__ = [
    "ComponentUtilization",
    "DvfsCurve",
    "PAPER_POWER_MODES",
    "PowerMode",
    "PowerModel",
    "apply_power_mode",
    "device_at_mode",
    "get_power_mode",
    "list_power_modes",
    "parse_nvpmodel_conf",
    "render_nvpmodel_conf",
]
