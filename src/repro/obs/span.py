"""Request-scoped, hierarchical spans on the simulation clock.

The :class:`Observer` is the single collection point for the
observability layer: subsystems open/close :class:`SpanRecord` intervals
(queue wait, prefill, decode stretches, fault episodes), drop
:class:`InstantRecord` point events (retries, mode changes) and append
:class:`CounterRecord` series samples (board power), all stamped with
*simulated* time — never the wall clock — so two seeded runs produce
identical telemetry, byte for byte.

Layout follows the Chrome trace-event model the exporter targets:

- ``group`` is the process-level lane (one experiment, one cluster);
- ``track`` is the thread-level lane (``node0``, ``req17``, ``engine``);
- spans on one track nest through an implicit per-track stack, and a
  parent can also be pinned explicitly (e.g. fault instants nested
  under the affected request's span from another track).

Zero cost when disabled: every mutating method starts with one
``enabled`` check and returns a shared no-op handle, so a run with the
:data:`NULL_OBSERVER` allocates nothing and records nothing — the
guarantee the study-harness speed budget relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

Args = Tuple[Tuple[str, Any], ...]

#: Handle returned by recording methods when the observer is disabled.
NO_SPAN = -1

DEFAULT_GROUP = "main"
DEFAULT_TRACK = "main"


def _args_of(data: Dict[str, Any]) -> Args:
    return tuple(sorted(data.items()))


@dataclass(frozen=True)
class SpanRecord:
    """One closed interval of simulated time."""

    span_id: int
    parent_id: Optional[int]
    group: str
    track: str
    name: str
    cat: str
    start_s: float
    end_s: float
    args: Args = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class InstantRecord:
    """One point event."""

    event_id: int
    parent_id: Optional[int]
    group: str
    track: str
    name: str
    cat: str
    time_s: float
    args: Args = ()


@dataclass(frozen=True)
class CounterRecord:
    """One sample of a named series (rendered as a counter track)."""

    group: str
    track: str
    name: str
    time_s: float
    value: float


class _OpenSpan:
    __slots__ = ("span_id", "parent_id", "group", "track", "name", "cat",
                 "start_s", "args")

    def __init__(self, span_id, parent_id, group, track, name, cat,
                 start_s, args):
        self.span_id = span_id
        self.parent_id = parent_id
        self.group = group
        self.track = track
        self.name = name
        self.cat = cat
        self.start_s = start_s
        self.args = args


class _SpanContext:
    """``with obs.span(...):`` support (safe across generator yields)."""

    __slots__ = ("_obs", "_kw", "span_id")

    def __init__(self, obs: "Observer", kw: Dict[str, Any]):
        self._obs = obs
        self._kw = kw
        self.span_id = NO_SPAN

    def __enter__(self) -> "_SpanContext":
        self.span_id = self._obs.begin(**self._kw)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._obs.end(self.span_id)


class _NullSpanContext:
    __slots__ = ()
    span_id = NO_SPAN

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CTX = _NullSpanContext()


class Observer:
    """Collects spans, instants and counter samples for one run (or many).

    Parameters
    ----------
    enabled:
        When False every method is a no-op; use :data:`NULL_OBSERVER`
        instead of constructing disabled observers.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counters: List[CounterRecord] = []
        self.metrics = MetricsRegistry()
        self._ids = count(1)
        self._open: Dict[int, _OpenSpan] = {}
        #: (group, track) -> stack of open span ids (implicit parents).
        self._stacks: Dict[Tuple[str, str], List[int]] = {}
        self._group = DEFAULT_GROUP
        self._env = None

    # -- clock / lanes -----------------------------------------------------
    def bind(self, env) -> None:
        """Read subsequent implicit timestamps from ``env.now``."""
        if self.enabled:
            self._env = env

    def set_group(self, label: str) -> None:
        """Switch the process-level lane for subsequent records."""
        if self.enabled:
            self._group = label

    def _now(self, time_s: Optional[float]) -> float:
        if time_s is not None:
            return float(time_s)
        return float(self._env.now) if self._env is not None else 0.0

    # -- spans -------------------------------------------------------------
    def begin(self, name: str, cat: str = "", track: str = DEFAULT_TRACK,
              parent: Optional[int] = None, time_s: Optional[float] = None,
              **args) -> int:
        """Open a span; returns its id (:data:`NO_SPAN` when disabled)."""
        if not self.enabled:
            return NO_SPAN
        span_id = next(self._ids)
        stack = self._stacks.setdefault((self._group, track), [])
        if parent is None and stack:
            parent = stack[-1]
        if parent == NO_SPAN:
            parent = None
        self._open[span_id] = _OpenSpan(
            span_id, parent, self._group, track, name, cat,
            self._now(time_s), _args_of(args),
        )
        stack.append(span_id)
        return span_id

    def end(self, span_id: int, time_s: Optional[float] = None,
            **args) -> None:
        """Close an open span (no-op for :data:`NO_SPAN` / unknown ids)."""
        if not self.enabled or span_id == NO_SPAN:
            return
        open_span = self._open.pop(span_id, None)
        if open_span is None:
            return
        stack = self._stacks.get((open_span.group, open_span.track))
        if stack and span_id in stack:
            stack.remove(span_id)
        merged = open_span.args + _args_of(args) if args else open_span.args
        self.spans.append(SpanRecord(
            span_id=span_id, parent_id=open_span.parent_id,
            group=open_span.group, track=open_span.track,
            name=open_span.name, cat=open_span.cat,
            start_s=open_span.start_s, end_s=self._now(time_s), args=merged,
        ))

    def complete(self, name: str, start_s: float, end_s: float,
                 cat: str = "", track: str = DEFAULT_TRACK,
                 parent: Optional[int] = None, **args) -> int:
        """Record an already-finished interval (fast-forward stretches)."""
        if not self.enabled:
            return NO_SPAN
        span_id = next(self._ids)
        stack = self._stacks.get((self._group, track))
        if parent is None and stack:
            parent = stack[-1]
        if parent == NO_SPAN:
            parent = None
        self.spans.append(SpanRecord(
            span_id=span_id, parent_id=parent, group=self._group,
            track=track, name=name, cat=cat, start_s=float(start_s),
            end_s=float(end_s), args=_args_of(args),
        ))
        return span_id

    def span(self, name: str, cat: str = "", track: str = DEFAULT_TRACK,
             parent: Optional[int] = None, **args):
        """Context manager form of :meth:`begin` / :meth:`end`."""
        if not self.enabled:
            return _NULL_CTX
        return _SpanContext(self, dict(name=name, cat=cat, track=track,
                                       parent=parent, **args))

    def finish_open(self, time_s: Optional[float] = None) -> int:
        """Close every still-open span (run teardown); returns the count."""
        if not self.enabled or not self._open:
            return 0
        closed = 0
        for span_id in sorted(self._open):
            self.end(span_id, time_s=time_s, unfinished=True)
            closed += 1
        return closed

    # -- point events ------------------------------------------------------
    def instant(self, name: str, cat: str = "", track: str = DEFAULT_TRACK,
                parent: Optional[int] = None, time_s: Optional[float] = None,
                **args) -> int:
        """Record a point event; returns its id."""
        if not self.enabled:
            return NO_SPAN
        event_id = next(self._ids)
        stack = self._stacks.get((self._group, track))
        if parent is None and stack:
            parent = stack[-1]
        if parent == NO_SPAN:
            parent = None
        self.instants.append(InstantRecord(
            event_id=event_id, parent_id=parent, group=self._group,
            track=track, name=name, cat=cat, time_s=self._now(time_s),
            args=_args_of(args),
        ))
        return event_id

    def counter(self, name: str, value: float, track: str = DEFAULT_TRACK,
                time_s: Optional[float] = None) -> None:
        """Append one sample to a counter series."""
        if not self.enabled:
            return
        self.counters.append(CounterRecord(
            group=self._group, track=track, name=name,
            time_s=self._now(time_s), value=float(value),
        ))

    # -- introspection -----------------------------------------------------
    def open_start(self, span_id: int) -> Optional[float]:
        """Start time of a still-open span (None if unknown/closed)."""
        open_span = self._open.get(span_id)
        return None if open_span is None else open_span.start_s

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def spans_named(self, name: str) -> List[SpanRecord]:
        """Closed spans with the given name, in close order."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop all records (open spans included); keep lanes and clock."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self.metrics.clear()
        self._open.clear()
        self._stacks.clear()


#: Shared disabled observer — the default everywhere observability is
#: off.  Never record into it; every method checks ``enabled`` first.
NULL_OBSERVER = Observer(enabled=False)
