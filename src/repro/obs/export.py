"""Exporters: Chrome trace-event JSON, CSV, Prometheus text exposition.

All three are pure functions of the :class:`~repro.obs.span.Observer`
contents — no wall clock, no environment lookups, stable ordering and
stable float rendering — so exporting the same seeded run twice yields
byte-identical files (asserted by ``tests/obs`` and the CI obs-smoke
job).

The Chrome format targets ``chrome://tracing`` / Perfetto: span groups
become processes, tracks become named threads, spans are complete
(``"X"``) events, instants ``"i"`` events and counter series ``"C"``
events; span/parent ids ride along in ``args`` so the request hierarchy
survives the round trip.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import ConfigError
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               _fmt_float)
from repro.obs.span import Observer

PathLike = Union[str, Path]

#: File suffixes routed to Prometheus text exposition by :func:`write_metrics`.
PROMETHEUS_SUFFIXES = (".prom", ".txt")


def _us(t: float) -> float:
    """Seconds -> microseconds, rounded to a stable sub-ns grid."""
    return round(t * 1e6, 3)


class _Lanes:
    """First-seen-order pid/tid assignment for groups and tracks."""

    def __init__(self) -> None:
        self.pids: Dict[str, int] = {}
        self.tids: Dict[Tuple[str, str], int] = {}

    def pid(self, group: str) -> int:
        if group not in self.pids:
            self.pids[group] = len(self.pids) + 1
        return self.pids[group]

    def tid(self, group: str, track: str) -> int:
        key = (group, track)
        if key not in self.tids:
            self.tids[key] = sum(1 for g, _ in self.tids if g == group) + 1
        return self.tids[key]


def to_chrome_trace(obs: Observer) -> dict:
    """The observer's records as a Chrome trace-event object."""
    lanes = _Lanes()
    events: List[dict] = []
    for s in obs.spans:
        args = dict(s.args)
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        events.append({
            "ph": "X", "name": s.name, "cat": s.cat or "default",
            "pid": lanes.pid(s.group), "tid": lanes.tid(s.group, s.track),
            "ts": _us(s.start_s), "dur": _us(s.end_s - s.start_s),
            "args": args,
        })
    for i in obs.instants:
        args = dict(i.args)
        if i.parent_id is not None:
            args["parent_id"] = i.parent_id
        events.append({
            "ph": "i", "s": "t", "name": i.name, "cat": i.cat or "default",
            "pid": lanes.pid(i.group), "tid": lanes.tid(i.group, i.track),
            "ts": _us(i.time_s), "args": args,
        })
    for c in obs.counters:
        events.append({
            "ph": "C", "name": c.name,
            "pid": lanes.pid(c.group), "tid": lanes.tid(c.group, c.track),
            "ts": _us(c.time_s), "args": {c.track: c.value},
        })

    meta: List[dict] = []
    for group, pid in lanes.pids.items():
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "args": {"name": group}})
    for (group, track), tid in lanes.tids.items():
        meta.append({"ph": "M", "name": "thread_name",
                     "pid": lanes.pids[group], "tid": tid,
                     "args": {"name": track}})
    return {"displayTimeUnit": "ms", "traceEvents": meta + events}


def chrome_trace_json(obs: Observer) -> str:
    """Canonical single-line JSON rendering (byte-stable)."""
    return json.dumps(to_chrome_trace(obs), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome_trace(path: PathLike, obs: Observer) -> Path:
    """Write the Perfetto-loadable trace; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(chrome_trace_json(obs))
    return out


# -- spans as CSV -------------------------------------------------------------

SPAN_CSV_HEADER = ["span_id", "parent_id", "group", "track", "name", "cat",
                   "start_s", "end_s", "duration_s", "args"]


def write_spans_csv(path: PathLike, obs: Observer) -> Path:
    """Flat per-span rows (one line per closed span, close order)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(SPAN_CSV_HEADER)
        for s in obs.spans:
            writer.writerow([
                s.span_id, "" if s.parent_id is None else s.parent_id,
                s.group, s.track, s.name, s.cat,
                f"{s.start_s:.9f}", f"{s.end_s:.9f}",
                f"{s.duration_s:.9f}",
                ";".join(f"{k}={v}" for k, v in s.args),
            ])
    return out


# -- metrics ------------------------------------------------------------------

def write_metrics_csv(path: PathLike, registry: MetricsRegistry) -> Path:
    """Snapshot rows as CSV (metric, type, labels, value)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "type", "labels", "value"])
        for row in registry.snapshot_rows():
            writer.writerow([row["metric"], row["type"], row["labels"],
                             _fmt_float(row["value"])])
    return out


def _prom_labels(items) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (one ``# TYPE`` header per metric)."""
    lines: List[str] = []
    typed: Dict[str, str] = {}
    for inst in registry.instruments():
        if inst.name not in typed:
            typed[inst.name] = inst.kind
            lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{inst.name}{_prom_labels(inst.labels)} "
                         f"{_fmt_float(inst.value)}")
        elif isinstance(inst, Histogram):
            for bound, cum in zip(inst.bounds, inst.cumulative()):
                items = inst.labels + (("le", _fmt_float(bound)),)
                lines.append(f"{inst.name}_bucket{_prom_labels(items)} {cum}")
            items = inst.labels + (("le", "+Inf"),)
            lines.append(f"{inst.name}_bucket{_prom_labels(items)} "
                         f"{inst.count}")
            lines.append(f"{inst.name}_sum{_prom_labels(inst.labels)} "
                         f"{_fmt_float(inst.sum)}")
            lines.append(f"{inst.name}_count{_prom_labels(inst.labels)} "
                         f"{inst.count}")
        else:  # pragma: no cover - registry only creates the three kinds
            raise ConfigError(f"unknown instrument type {type(inst)!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: PathLike, registry: MetricsRegistry) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(prometheus_text(registry))
    return out


def write_metrics(path: PathLike, registry: MetricsRegistry) -> Path:
    """Dispatch on suffix: ``.prom``/``.txt`` -> Prometheus, else CSV."""
    if Path(path).suffix in PROMETHEUS_SUFFIXES:
        return write_prometheus(path, registry)
    return write_metrics_csv(path, registry)
