"""Canonical span / event kind names for the observability layer.

Every subsystem that emits telemetry — the single-device engine, the
cluster serving loop, the fault injector, the power sampler — names its
spans and instants from this module instead of scattering ad-hoc kind
strings.  Reporting code (``repro.reporting.breakdown``), the exporters
and the tests all key off the same constants, so a renamed kind is a
one-line change that the whole stack follows.

Names are stable identifiers: they appear verbatim in exported Chrome
traces, Prometheus metric labels and CSV rows.  Treat a rename as a
breaking change to downstream tooling.
"""

from __future__ import annotations

# -- span / instant names -----------------------------------------------------

#: Whole-request lifecycle span (arrival to completion or rejection).
REQUEST = "request"
#: Admission-queue wait (placement/submit to batch admission).
QUEUE = "queue"
#: Prompt processing (the TTFT phase).
PREFILL = "prefill"
#: Token generation.  In fast-forward mode one span covers a whole
#: inter-event stretch of decode steps; step mode emits one per step.
DECODE = "decode"
#: One warm-up or measured batch of the single-device protocol.
BATCH = "batch"
#: A placement round that found no node with capacity.
RETRY = "retry"
#: A request re-placed after losing its node (crash orphan).
REQUEUE = "requeue"
#: A request replayed from scratch after KV-state loss.
REPLAY = "replay"
#: Admission control (or the retry budget) gave up on a request.
REJECT = "reject"
#: A running request evicted from its batch under KV pressure.
EJECT = "eject"
#: An evicted request re-admitted to a running batch.
READMIT = "readmit"
#: An nvpmodel-style operating-point change on a node.
MODE_CHANGE = "mode_change"
#: One autoscaler control action (carries the rung and reason).
AUTOSCALE = "autoscale"
#: A routing decision (carries the chosen node and policy).
ROUTE = "route"
#: KV-cache movement between prefill and decode nodes (disaggregated).
KV_TRANSFER = "kv_transfer"
#: A preempted request's KV written out to the host side (swap tier).
KV_SWAP_OUT = "kv.swap_out"
#: Swapped KV restored to device memory ahead of decode resumption.
KV_SWAP_IN = "kv.swap_in"
#: A prompt prefix served from the shared radix cache (paged backend).
KV_PREFIX_HIT = "kv.prefix_hit"
#: A fair scheduler admitted a request from other than the queue head
#: (carries the scheduler, tenant and the queue-jump distance).
SCHED_SELECT = "sched.select"
#: The per-tenant token throttle turned a request away at injection.
TENANT_THROTTLE = "tenant.throttle"
#: Per-tenant served-token counter series are named
#: ``served_tokens.<tenant>`` (fair-scheduler runs only).
SERVED_TOKENS_PREFIX = "served_tokens."
#: Fault-episode spans are named ``fault.<class>`` (``fault.crash``...).
FAULT_PREFIX = "fault."
#: jtop-style board power counter series (watts over sim time).
POWER_W = "power_w"
#: An SLM-tier request failed the cascade's quality gate; an LLM-tier
#: twin was injected (carries the wasted SLM tokens and the twin id).
CASCADE_ESCALATE = "cascade.escalate"
#: Cumulative per-node carbon counter series (grams CO₂ over sim time,
#: emitted only for nodes bound to a region's carbon trace).
CARBON_G = "carbon_g"

# -- categories ---------------------------------------------------------------

CAT_ENGINE = "engine"
CAT_CLUSTER = "cluster"
CAT_REQUEST = "request"
CAT_FAULT = "fault"
CAT_POWER = "power"
#: Records produced through the deprecated ``Trace.record`` shim.
CAT_LEGACY = "legacy"


def fault_kind(fault_class: str) -> str:
    """Span name of one fault class (``"crash"`` -> ``"fault.crash"``)."""
    return FAULT_PREFIX + fault_class


def served_tokens_kind(tenant: str) -> str:
    """Counter-series name of one tenant's served-token meter."""
    return SERVED_TOKENS_PREFIX + tenant
