"""repro.obs — the observability layer.

Request-scoped spans on the simulation clock
(:mod:`~repro.obs.span`), a deterministic metrics registry
(:mod:`~repro.obs.metrics`), exporters for Chrome trace-event JSON /
CSV / Prometheus text (:mod:`~repro.obs.export`) and the shared kind
constants every subsystem names its telemetry from
(:mod:`~repro.obs.kinds`).

Quick start::

    from repro import (EdgeCluster, FleetSpec, NodeSpec, Observer,
                       poisson_workload)
    from repro.obs import write_chrome_trace, write_metrics

    obs = Observer()
    fleet = FleetSpec.of(["jetson-orin-agx-64gb"], model="llama")
    cluster = EdgeCluster.of(fleet, observer=obs)
    cluster.run(poisson_workload(2.0, 20))
    write_chrome_trace("trace.json", obs)    # load in Perfetto
    write_metrics("metrics.prom", obs.metrics)

Everything is stamped with simulated time only, so exported telemetry
is byte-identical across repeated seeded runs; pass no observer (or
:data:`NULL_OBSERVER`) and the whole layer is a no-op.
"""

from repro.obs import kinds
from repro.obs.export import (
    chrome_trace_json,
    prometheus_text,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
    write_metrics_csv,
    write_prometheus,
    write_spans_csv,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import (
    NO_SPAN,
    NULL_OBSERVER,
    CounterRecord,
    InstantRecord,
    Observer,
    SpanRecord,
)

__all__ = [
    "Counter",
    "CounterRecord",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "NO_SPAN",
    "NULL_OBSERVER",
    "Observer",
    "SpanRecord",
    "chrome_trace_json",
    "kinds",
    "prometheus_text",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "write_metrics_csv",
    "write_prometheus",
    "write_spans_csv",
]
