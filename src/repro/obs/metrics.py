"""A deterministic in-process metrics registry.

Prometheus-shaped instruments — counters, gauges, histograms — keyed by
``(name, sorted labels)`` and kept in first-registration order, so a
snapshot of the same simulated run is identical across processes and
repeats (no wall clock, no hash-order dependence anywhere).

The registry is the aggregation half of :mod:`repro.obs`; the span half
lives in :mod:`repro.obs.span`.  Exporters (:mod:`repro.obs.export`)
turn a snapshot into CSV rows or Prometheus text exposition.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket bounds (seconds-flavoured, log-ish spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   50.0, 100.0, 500.0)


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        self.value += amount

    def rows(self) -> List[dict]:
        return [{"metric": self.name, "type": self.kind,
                 "labels": _fmt_labels(self.labels), "value": self.value}]


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def rows(self) -> List[dict]:
        return [{"metric": self.name, "type": self.kind,
                 "labels": _fmt_labels(self.labels), "value": self.value}]


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the
    implicit ``+Inf`` bucket is :attr:`count`.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        i = bisect_left(self.bounds, value)
        if i < len(self.bounds):
            self.bucket_counts[i] += 1

    def cumulative(self) -> List[int]:
        """Counts <= each bound, Prometheus ``le`` style."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def rows(self) -> List[dict]:
        labels = _fmt_labels(self.labels)
        rows = [
            {"metric": f"{self.name}_bucket", "type": self.kind,
             "labels": _join_labels(labels, f"le={_fmt_float(b)}"),
             "value": float(c)}
            for b, c in zip(self.bounds, self.cumulative())
        ]
        rows.append({"metric": f"{self.name}_bucket", "type": self.kind,
                     "labels": _join_labels(labels, "le=+Inf"),
                     "value": float(self.count)})
        rows.append({"metric": f"{self.name}_sum", "type": self.kind,
                     "labels": labels, "value": self.sum})
        rows.append({"metric": f"{self.name}_count", "type": self.kind,
                     "labels": labels, "value": float(self.count)})
        return rows


def _fmt_labels(labels: LabelItems) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


def _join_labels(labels: str, extra: str) -> str:
    return f"{labels},{extra}" if labels else extra


def _fmt_float(v: float) -> str:
    """Shortest stable rendering (no trailing zeros, no exponent drift)."""
    s = repr(float(v))
    return s[:-2] if s.endswith(".0") else s


class MetricsRegistry:
    """Create-or-get instruments; snapshot them as flat rows.

    >>> reg = MetricsRegistry()
    >>> reg.counter("tokens_total", node="0").inc(64)
    >>> reg.histogram("ttft_s").observe(0.8)
    >>> [r["metric"] for r in reg.snapshot_rows()]
    ['tokens_total', 'ttft_s_bucket', ...]
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kw):
        key = (name, _label_items(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1], **kw)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {inst.kind}")
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        kw = {"buckets": buckets} if buckets is not None else {}
        return self._get(Histogram, name, labels, **kw)

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[object]:
        """All instruments in first-registration order."""
        return list(self._instruments.values())

    def snapshot_rows(self) -> List[dict]:
        """Flat, deterministic rows for tables / CSV export."""
        rows: List[dict] = []
        for inst in self._instruments.values():
            rows.extend(inst.rows())
        return rows

    def clear(self) -> None:
        self._instruments.clear()
