"""Token vocabulary with id<->token maps and special tokens."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TokenizerError


@dataclass
class Vocab:
    """Bidirectional token/id mapping.

    Tokens are byte strings (byte-level BPE); ids are dense ints with
    special tokens first.
    """

    specials: Tuple[str, ...] = ("<pad>", "<bos>", "<eos>", "<unk>")
    _token_to_id: Dict[bytes, int] = field(default_factory=dict)
    _id_to_token: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._id_to_token:
            for s in self.specials:
                self.add(s.encode())

    def add(self, token: bytes) -> int:
        """Add a token if new; return its id."""
        if not isinstance(token, bytes):
            raise TokenizerError(f"tokens must be bytes, got {type(token).__name__}")
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def id_of(self, token: bytes) -> int:
        """Id of ``token``; raises :class:`TokenizerError` if unknown."""
        idx = self._token_to_id.get(token)
        if idx is None:
            raise TokenizerError(f"unknown token {token!r}")
        return idx

    def token_of(self, idx: int) -> bytes:
        """Token with id ``idx``."""
        if not (0 <= idx < len(self._id_to_token)):
            raise TokenizerError(f"token id {idx} out of range")
        return self._id_to_token[idx]

    def __contains__(self, token: bytes) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def bos_id(self) -> int:
        return 1

    @property
    def eos_id(self) -> int:
        return 2

    @property
    def unk_id(self) -> int:
        return 3
