"""Trainable byte-pair-encoding tokenizer.

The paper tokenizes WikiText2/LongBench text with each model's HF
tokenizer.  Offline we train a byte-level BPE on the synthetic corpora;
it exercises the same code paths (token counting, prompt pools, sliding
perplexity windows) with a deterministic vocabulary.
"""

from repro.tokenizer.bpe import BpeTokenizer, train_bpe
from repro.tokenizer.vocab import Vocab

__all__ = ["BpeTokenizer", "Vocab", "train_bpe"]
