"""Byte-level byte-pair encoding, trained greedily on a corpus.

Training repeatedly merges the most frequent adjacent symbol pair within
words (whitespace-delimited chunks keep merges from crossing word
boundaries, GPT-2 style).  Encoding applies merges in rank order.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import TokenizerError
from repro.tokenizer.vocab import Vocab

Pair = Tuple[bytes, bytes]


def _words(text: str) -> List[bytes]:
    """Split text into byte chunks; whitespace is attached to the
    following word (GPT-2 style leading-space convention).  Runs of
    spaces with no following word become lone-space chunks so the
    round-trip is lossless."""
    out: List[bytes] = []
    for i, piece in enumerate(text.split(" ")):
        if i == 0:
            if piece:
                out.append(piece.encode("utf-8", errors="replace"))
            continue
        if piece:
            out.append((" " + piece).encode("utf-8", errors="replace"))
        else:
            out.append(b" ")
    return out


class BpeTokenizer:
    """A trained BPE tokenizer.

    Construct via :func:`train_bpe`; supports ``encode``/``decode`` with
    a lossless byte-level base alphabet.
    """

    def __init__(self, vocab: Vocab, merges: List[Pair]):
        self.vocab = vocab
        self.merges = merges
        self._ranks: Dict[Pair, int] = {pair: i for i, pair in enumerate(merges)}
        self._cache: Dict[bytes, List[bytes]] = {}

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def _apply_merges(self, word: bytes) -> List[bytes]:
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        symbols: List[bytes] = [bytes([b]) for b in word]
        while len(symbols) > 1:
            best_rank = None
            best_i = -1
            for i in range(len(symbols) - 1):
                rank = self._ranks.get((symbols[i], symbols[i + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank, best_i = rank, i
            if best_rank is None:
                break
            symbols[best_i : best_i + 2] = [symbols[best_i] + symbols[best_i + 1]]
        if len(self._cache) < 65536:
            self._cache[word] = symbols
        return symbols

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> List[int]:
        """Tokenize ``text`` to a list of ids."""
        ids: List[int] = [self.vocab.bos_id] if add_bos else []
        for word in _words(text):
            for sym in self._apply_merges(word):
                if sym in self.vocab:
                    ids.append(self.vocab.id_of(sym))
                else:  # pragma: no cover - base alphabet covers everything
                    ids.append(self.vocab.unk_id)
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: Iterable[int]) -> str:
        """Reconstruct text from ids (specials are dropped)."""
        parts: List[bytes] = []
        n_special = len(self.vocab.specials)
        for idx in ids:
            if idx < n_special:
                continue
            parts.append(self.vocab.token_of(idx))
        return b"".join(parts).decode("utf-8", errors="replace")

    def count_tokens(self, text: str) -> int:
        """Token count of ``text`` (the paper's prompt-pool criterion)."""
        return len(self.encode(text))


def train_bpe(corpus: str, vocab_size: int = 1024) -> BpeTokenizer:
    """Train a byte-level BPE on ``corpus`` to roughly ``vocab_size``.

    The final vocabulary holds the 4 specials + 256 byte symbols + the
    learned merges.
    """
    if not corpus:
        raise TokenizerError("cannot train on an empty corpus")
    vocab = Vocab()
    for b in range(256):
        vocab.add(bytes([b]))
    n_base = len(vocab)
    if vocab_size <= n_base:
        raise TokenizerError(
            f"vocab_size must exceed the base alphabet ({n_base}), got {vocab_size}"
        )

    # Word frequency table; each word is a tuple of symbols.
    word_freq: Counter = Counter(_words(corpus))
    words: List[List[bytes]] = [[bytes([b]) for b in w] for w in word_freq]
    freqs: List[int] = list(word_freq.values())

    merges: List[Pair] = []
    n_merges = vocab_size - n_base
    for _ in range(n_merges):
        pair_counts: Counter = Counter()
        for syms, f in zip(words, freqs):
            for i in range(len(syms) - 1):
                pair_counts[(syms[i], syms[i + 1])] += f
        if not pair_counts:
            break
        # Deterministic tie-break: highest count, then lexicographic.
        (a, b), top = max(pair_counts.items(), key=lambda kv: (kv[1], kv[0]))
        if top < 2:
            break
        merges.append((a, b))
        vocab.add(a + b)
        merged = a + b
        for syms in words:
            i = 0
            while i < len(syms) - 1:
                if syms[i] == a and syms[i + 1] == b:
                    syms[i : i + 2] = [merged]
                else:
                    i += 1
    return BpeTokenizer(vocab, merges)
