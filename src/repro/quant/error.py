"""Quantization-error measurement and the perplexity-degradation model.

Pipeline for the paper's Table 3:

1. Draw synthetic weights and activations with the statistics real LLMs
   exhibit — Gaussian bulk plus *systematic outlier feature columns*
   whose prevalence grows with model scale (Dettmers et al. observed the
   phase shift around 6.7B parameters).
2. Quantize them with the real kernels in this package and measure the
   relative matmul error against the FP32 reference.
3. Convert error to a negative-log-likelihood increase with a quadratic
   sensitivity model, ``delta_nll = sensitivity * rel_err**2``, whose
   per-model sensitivity is anchored on one measured point (the paper's
   INT4 column); the INT8 column is then a *prediction* of the pipeline.

Step 3's functional form is validated empirically on the runnable numpy
transformer in ``tests/test_perplexity_quant_link.py``: quantizing a real
model's weights produces an NLL increase quadratic in the weight error.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import QuantizationError
from repro.models.architecture import TransformerArchitecture
from repro.quant.blockwise import blockwise_dequantize, blockwise_quantize
from repro.quant.dtypes import Precision
from repro.quant.llm_int8 import LLMInt8Linear


@dataclass(frozen=True)
class QuantErrorReport:
    """Measured quantization error for one (model, precision) pair."""

    model: str
    precision: Precision
    rel_matmul_error: float
    outlier_fraction: float


def outlier_column_fraction(arch: TransformerArchitecture) -> float:
    """Fraction of activation feature columns that are systematic outliers.

    Grows smoothly with scale, saturating around 0.7% for ~30B models
    (Dettmers et al. report 0.1%-1% with a phase transition near 6.7B).
    """
    b = arch.n_params_billions
    return float(0.007 / (1.0 + np.exp(-(b - 6.7) / 3.0)) + 0.0006)


def synth_activations(
    arch: TransformerArchitecture,
    rng: np.random.Generator,
    n_tokens: int = 256,
) -> np.ndarray:
    """Activations with LLM-like statistics: unit Gaussian bulk plus
    outlier columns at ~12x magnitude (above the 6.0 threshold)."""
    d = arch.hidden_size
    x = rng.standard_normal((n_tokens, d)).astype(np.float32)
    n_out = max(1, int(round(outlier_column_fraction(arch) * d)))
    cols = rng.choice(d, size=n_out, replace=False)
    x[:, cols] *= 12.0
    return x


def synth_weights(
    arch: TransformerArchitecture,
    rng: np.random.Generator,
    n_rows: int = 512,
) -> np.ndarray:
    """A weight slab with per-channel scale heterogeneity.

    Smaller models concentrate the same representational load in fewer
    channels, giving heavier per-channel scale spread — the reason INT8
    hurts small models' perplexity more (paper §3.3, ref [10]).
    """
    d = arch.hidden_size
    base = rng.standard_normal((n_rows, d)).astype(np.float32) * 0.02
    # Log-normal per-column scale spread, wider for smaller models.
    spread = 0.9 / np.sqrt(max(arch.n_params_billions, 0.1))
    col_scale = np.exp(rng.standard_normal(d).astype(np.float32) * spread)
    return base * col_scale


@lru_cache(maxsize=512)
def measure_quant_error(
    arch: TransformerArchitecture,
    precision: Precision,
    seed: int = 0,
    n_tokens: int = 256,
) -> QuantErrorReport:
    """Run the real quantizers on synthetic tensors and report the error.

    Memoized: the measurement is a pure function of its (hashable)
    arguments — the RNG stream is derived from ``seed`` and the model
    name only — and the INT8 path costs seconds per call, so repeated
    table cells (every Table-3 cell re-measures its anchor precision)
    hit the cache instead of re-quantizing.
    """
    # crc32, not hash(): str hash is salted per process (PYTHONHASHSEED),
    # which would make the "frozen constants match a refit" test flaky.
    rng = np.random.default_rng(seed ^ (zlib.crc32(arch.name.encode()) & 0xFFFF))
    frac = outlier_column_fraction(arch)
    if precision is Precision.FP32:
        err = 0.0
    elif precision is Precision.FP16:
        # Round-to-nearest fp16 on weights: relative error ~ 2^-11 / sqrt(3).
        w = synth_weights(arch, rng)
        w16 = w.astype(np.float16).astype(np.float32)
        err = float(np.linalg.norm(w16 - w) / np.linalg.norm(w))
    elif precision is Precision.INT8:
        w = synth_weights(arch, rng)
        x = synth_activations(arch, rng, n_tokens)
        err = LLMInt8Linear(w).relative_error(x)
    elif precision is Precision.INT4:
        w = synth_weights(arch, rng)
        x = synth_activations(arch, rng, n_tokens)
        q = blockwise_quantize(w, scheme="nf4")
        wq = blockwise_dequantize(q)
        ref = x @ w.T
        approx = x @ wq.T
        err = float(np.linalg.norm(approx - ref) / np.linalg.norm(ref))
    else:  # pragma: no cover - exhaustive enum
        raise QuantizationError(f"unsupported precision {precision}")
    return QuantErrorReport(
        model=arch.name,
        precision=precision,
        rel_matmul_error=err,
        outlier_fraction=frac,
    )


def perplexity_delta(
    base_ppl: float, rel_err: float, sensitivity: float
) -> float:
    """Perplexity after quantization with relative matmul error ``rel_err``.

    ``new_ppl = base_ppl * exp(sensitivity * rel_err**2)`` — first
    non-vanishing term of the NLL expansion in the weight perturbation.
    """
    if base_ppl <= 0:
        raise QuantizationError("base perplexity must be positive")
    if rel_err < 0 or sensitivity < 0:
        raise QuantizationError("error and sensitivity must be non-negative")
    return float(base_ppl * np.exp(sensitivity * rel_err**2))
