"""LLM.int8() mixed-precision matrix multiplication (Dettmers et al. 2022).

The scheme that bitsandbytes applies for 8-bit inference — the paper's
reference [10]:

1. Find *outlier feature dimensions*: input columns whose magnitude
   exceeds a threshold (6.0 in the paper).
2. Multiply the outlier columns against the matching weight rows in
   FP16.
3. Quantize everything else vector-wise to INT8 (per-row for A, per
   -column for W), multiply in INT8, and dequantize the INT32
   accumulator with the outer product of the scales.
4. Sum the two partial results.

The numpy implementation here is used for correctness tests, the
quantization-error measurements that drive Table 3, and the runnable
examples; the *cost* of these extra passes on a given GPU is modelled in
:mod:`repro.quant.overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.absmax import absmax_quantize_int8


@dataclass(frozen=True)
class OutlierDecomposition:
    """Column split produced by :func:`llm_int8_decompose`."""

    outlier_cols: np.ndarray  # int indices into the feature dimension
    regular_cols: np.ndarray

    @property
    def outlier_fraction(self) -> float:
        total = self.outlier_cols.size + self.regular_cols.size
        return self.outlier_cols.size / total if total else 0.0


def llm_int8_decompose(x: np.ndarray, threshold: float = 6.0) -> OutlierDecomposition:
    """Split feature columns of activations ``x`` into outliers/regulars.

    A column is an outlier if any activation magnitude in it exceeds
    ``threshold`` — the systematic-outlier criterion of LLM.int8().
    """
    a = np.asarray(x)
    if a.ndim != 2:
        raise QuantizationError(f"expected 2-D activations, got shape {a.shape}")
    if threshold <= 0:
        raise QuantizationError("outlier threshold must be positive")
    mask = (np.abs(a) > threshold).any(axis=0)
    cols = np.arange(a.shape[1])
    return OutlierDecomposition(outlier_cols=cols[mask], regular_cols=cols[~mask])


class LLMInt8Linear:
    """A linear layer executing matmuls the LLM.int8() way.

    Weights are stored column-wise INT8 once at construction; each
    forward pass re-quantizes activations row-wise and performs the
    mixed INT8 + FP16-outlier product.
    """

    def __init__(self, weight: np.ndarray, threshold: float = 6.0):
        w = np.asarray(weight, dtype=np.float32)
        if w.ndim != 2:
            raise QuantizationError(f"expected 2-D weight, got shape {w.shape}")
        self.threshold = float(threshold)
        self.out_features, self.in_features = w.shape
        # Per-input-feature (column of W^T product dimension) scaling:
        # quantize along the shared inner dimension.
        self._w_fp = w  # kept for the outlier path (bnb keeps fp16 copies)
        self._wq, self._w_scales = absmax_quantize_int8(w, axis=1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute ``x @ W.T`` with mixed INT8/FP16 precision."""
        a = np.asarray(x, dtype=np.float32)
        if a.ndim != 2 or a.shape[1] != self.in_features:
            raise QuantizationError(
                f"activation shape {a.shape} incompatible with weight "
                f"({self.out_features}, {self.in_features})"
            )
        dec = llm_int8_decompose(a, self.threshold)

        out = np.zeros((a.shape[0], self.out_features), dtype=np.float32)
        if dec.regular_cols.size:
            a_reg = a[:, dec.regular_cols]
            aq, a_scales = absmax_quantize_int8(a_reg, axis=1)
            wq = self._wq[:, dec.regular_cols]
            # INT32 accumulate, then dequantize with the scale outer product.
            # The accumulation runs as a float64 GEMM: every partial product
            # is an integer with |a*w| <= 127^2 and the inner dimension is
            # far below 2^53 / 127^2, so the float64 sum is exact and equals
            # the INT32 accumulator bit-for-bit — but it hits BLAS instead
            # of numpy's unblocked integer matmul (~100x faster).
            acc = aq.astype(np.float64) @ wq.astype(np.float64).T
            out += acc.astype(np.float32) * a_scales * self._w_scales.T
        if dec.outlier_cols.size:
            out += a[:, dec.outlier_cols] @ self._w_fp[:, dec.outlier_cols].T
        return out

    def exact(self, x: np.ndarray) -> np.ndarray:
        """Unquantized reference product (for error measurements)."""
        return np.asarray(x, dtype=np.float32) @ self._w_fp.T

    def relative_error(self, x: np.ndarray) -> float:
        """Frobenius relative error of the quantized product on ``x``."""
        ref = self.exact(x)
        approx = self.forward(x)
        denom = float(np.linalg.norm(ref))
        return float(np.linalg.norm(approx - ref)) / denom if denom else 0.0
