"""Numeric precisions used for model weights and arithmetic."""

from __future__ import annotations

from enum import Enum

from repro.errors import QuantizationError


class Precision(str, Enum):
    """Weight/compute precision.

    ``bytes_per_param`` includes quantization metadata overhead (scales,
    zero-points) amortised per parameter, matching what ``bitsandbytes``
    actually stores:

    - INT8 (LLM.int8()): 1 byte per weight + per-row FP16 scales and a
      small fraction of outlier columns kept in FP16 — ≈ 1.06 B/param.
    - INT4 (NF4): 0.5 byte per weight + one FP16 (later FP8) absmax per
      64-weight block plus nested quantization constants — ≈ 0.56 B/param.
    """

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"
    INT4 = "int4"

    @property
    def bytes_per_param(self) -> float:
        return _BYTES_PER_PARAM[self]

    @property
    def is_quantized(self) -> bool:
        """True for integer formats that need dequantization at compute time."""
        return self in (Precision.INT8, Precision.INT4)

    @property
    def bits(self) -> int:
        return _BITS[self]

    @classmethod
    def parse(cls, name: str) -> "Precision":
        """Parse a precision from a user-facing string (case-insensitive)."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise QuantizationError(
                f"unknown precision {name!r}; expected one of: {valid}"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


_BYTES_PER_PARAM = {
    Precision.FP32: 4.0,
    Precision.FP16: 2.0,
    Precision.INT8: 1.06,
    Precision.INT4: 0.56,
}

_BITS = {
    Precision.FP32: 32,
    Precision.FP16: 16,
    Precision.INT8: 8,
    Precision.INT4: 4,
}

#: Sweep order used throughout the paper's tables (highest precision first).
PRECISION_ORDER = (Precision.FP32, Precision.FP16, Precision.INT8, Precision.INT4)
