"""Row-wise absmax INT8 quantization (the LLM.int8() base scheme)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import QuantizationError


def absmax_quantize_int8(
    weights: np.ndarray, axis: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize ``weights`` to INT8 with per-vector absmax scaling.

    Each vector along ``axis`` is scaled so its absolute maximum maps to
    127 ("vector-wise quantization" in Dettmers et al.).

    Returns
    -------
    (q, scales):
        ``q`` is int8 with the input's shape; ``scales`` is float32 with
        the reduced shape (keepdims) such that ``q * scales``
        dequantizes.
    """
    w = np.asarray(weights)
    if w.ndim != 2:
        raise QuantizationError(f"expected a 2-D weight matrix, got shape {w.shape}")
    if w.size == 0:
        raise QuantizationError("cannot quantize an empty matrix")
    if axis not in (0, 1):
        raise QuantizationError(f"axis must be 0 or 1, got {axis}")
    # Work in float64: subnormal float32 inputs would underflow the
    # scale computation and poison the division.
    absmax = np.abs(w.astype(np.float64)).max(axis=axis, keepdims=True)
    # A zero vector has scale 0; map it to 1 to avoid division by zero
    # (its quantized values are all zero anyway).
    safe = np.where(absmax == 0.0, 1.0, absmax)
    scales64 = safe / 127.0
    q = np.clip(np.rint(w.astype(np.float64) / scales64), -127, 127).astype(np.int8)
    return q, scales64.astype(np.float32)


def absmax_dequantize_int8(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`absmax_quantize_int8` (float32 result)."""
    if q.dtype != np.int8:
        raise QuantizationError(f"expected int8 input, got {q.dtype}")
    return q.astype(np.float32) * scales
