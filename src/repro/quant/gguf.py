"""GGUF/GGML k-quant weight formats (llama.cpp's on-disk dtypes).

The llama.cpp runtime stores weights in fixed-layout *blocks* rather
than bitsandbytes' row/blockwise scale tensors.  The two formats the
edge-serving literature sweeps most often (Husom et al., "Sustainable
LLM Inference for Edge AI"; Abstreiter et al.) are modelled here with
their exact storage layouts:

- **Q8_0** — blocks of 32 weights: one fp16 scale + 32 int8 codes
  = 34 bytes / 32 weights = 8.5 bits per weight.
- **Q4_K** — super-blocks of 256 weights split into 8 sub-blocks of 32:
  two fp16 super-scales (``d``, ``dmin``) + 12 bytes of 6-bit packed
  sub-block scales/mins + 128 bytes of 4-bit codes = 144 bytes / 256
  weights = 4.5 bits per weight.  Sub-block scales are themselves
  quantized against the super-block scale — the "k" in k-quant.

Both quantizers are implemented for real in numpy so the dequantization
*error* model is measured, not asserted; :func:`gguf_rel_error` mirrors
:func:`repro.quant.error.measure_quant_error` and feeds the same
perplexity-delta machinery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class GGMLQuantType:
    """Storage layout of one GGUF weight dtype.

    ``block_weights`` weights are stored in ``block_bytes`` bytes, so
    ``bits_per_weight`` includes every scale/min amortised exactly.
    """

    name: str
    block_weights: int
    block_bytes: int

    @property
    def bits_per_weight(self) -> float:
        return 8.0 * self.block_bytes / self.block_weights

    @property
    def bytes_per_weight(self) -> float:
        return self.block_bytes / self.block_weights

    def tensor_bytes(self, n_weights: int) -> int:
        """Storage for ``n_weights`` values (block-rounded, as on disk)."""
        n_blocks = -(-n_weights // self.block_weights)
        return n_blocks * self.block_bytes


#: fp16 scale + 32 int8 codes.
Q8_0 = GGMLQuantType("Q8_0", block_weights=32, block_bytes=34)
#: 2 fp16 super-scales + 12B packed 6-bit sub-scales + 128B nibbles.
Q4_K = GGMLQuantType("Q4_K", block_weights=256, block_bytes=144)
#: Unquantized half/full precision tensors (1 "block" per weight).
F16 = GGMLQuantType("F16", block_weights=1, block_bytes=2)
F32 = GGMLQuantType("F32", block_weights=1, block_bytes=4)

GGUF_TYPES: Dict[str, GGMLQuantType] = {
    t.name: t for t in (Q8_0, Q4_K, F16, F32)
}

#: Which GGUF dtype a :class:`Precision` maps onto when a spec asks the
#: gguf runtime for that precision (k-quants stand in for bitsandbytes).
_PRECISION_TO_GGUF: Dict[Precision, GGMLQuantType] = {
    Precision.FP32: F32,
    Precision.FP16: F16,
    Precision.INT8: Q8_0,
    Precision.INT4: Q4_K,
}


def gguf_type_for(precision: Precision) -> GGMLQuantType:
    """The GGUF weight dtype serving a given abstract precision."""
    try:
        return _PRECISION_TO_GGUF[precision]
    except KeyError:  # pragma: no cover - exhaustive enum
        raise QuantizationError(
            f"no GGUF dtype for precision {precision}") from None


# -- real quantizers ---------------------------------------------------------

def _pad_blocks(w: np.ndarray, block: int) -> Tuple[np.ndarray, int]:
    flat = np.asarray(w, dtype=np.float32).reshape(-1)
    if flat.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    pad = (-flat.size) % block
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
    return flat.reshape(-1, block), flat.size - pad


def quantize_q8_0(weights: np.ndarray) -> np.ndarray:
    """Quantize-dequantize through the Q8_0 layout (blocks of 32)."""
    blocks, n = _pad_blocks(weights, Q8_0.block_weights)
    absmax = np.abs(blocks).max(axis=1, keepdims=True)
    d = (absmax / 127.0).astype(np.float16).astype(np.float32)
    scale = np.where(d > 0, d, 1.0)
    q = np.clip(np.round(blocks / scale), -127, 127)
    out = (q * d).reshape(-1)[:n]
    return out.reshape(np.asarray(weights).shape)


def quantize_q4_k(weights: np.ndarray) -> np.ndarray:
    """Quantize-dequantize through the Q4_K layout.

    Affine 4-bit sub-blocks (codes in [0, 15] against a per-sub-block
    scale and min), with the sub-block scales and mins themselves
    quantized to 6 bits against fp16 super-block maxima.
    """
    sub = 32
    blocks, n = _pad_blocks(weights, Q4_K.block_weights)
    subs = blocks.reshape(blocks.shape[0], -1, sub)  # (super, 8, 32)
    wmin = subs.min(axis=2)
    wmax = subs.max(axis=2)
    scales = (wmax - wmin) / 15.0
    mins = -wmin
    # k-quant second level: 6-bit scales/mins against fp16 super maxima.
    d = (scales.max(axis=1, keepdims=True) / 63.0)
    d = d.astype(np.float16).astype(np.float32)
    dmin = (mins.max(axis=1, keepdims=True) / 63.0)
    dmin = dmin.astype(np.float16).astype(np.float32)
    ls = np.clip(np.round(scales / np.where(d > 0, d, 1.0)), 0, 63)
    lm = np.clip(np.round(mins / np.where(dmin > 0, dmin, 1.0)), 0, 63)
    eff_scale = (d * ls)[..., None]
    eff_min = (dmin * lm)[..., None]
    denom = np.where(eff_scale > 0, eff_scale, 1.0)
    q = np.clip(np.round((subs + eff_min) / denom), 0, 15)
    deq = q * eff_scale - eff_min
    out = deq.reshape(-1)[:n]
    return out.reshape(np.asarray(weights).shape)


_QUANTIZERS = {"Q8_0": quantize_q8_0, "Q4_K": quantize_q4_k}


@dataclass(frozen=True)
class GGUFErrorReport:
    """Measured dequantization error of one (model, dtype) pair."""

    model: str
    gguf_type: str
    rel_matmul_error: float


@lru_cache(maxsize=256)
def gguf_rel_error(arch, qtype_name: str, seed: int = 0,
                   n_tokens: int = 256) -> GGUFErrorReport:
    """Matmul-level relative error of a k-quant dtype on LLM-like weights.

    Same protocol as :func:`repro.quant.error.measure_quant_error`:
    synthetic weights/activations with the model's scale statistics, the
    real quantizer, and the relative error of ``x @ w.T``.  Memoized and
    seeded via crc32 of the model name, so it is stable across processes.
    """
    from repro.quant.error import synth_activations, synth_weights

    if qtype_name not in GGUF_TYPES:
        raise QuantizationError(
            f"unknown GGUF dtype {qtype_name!r}; "
            f"known: {', '.join(sorted(GGUF_TYPES))}")
    rng = np.random.default_rng(
        seed ^ (zlib.crc32(arch.name.encode()) & 0xFFFF))
    w = synth_weights(arch, rng)
    if qtype_name == "F32":
        err = 0.0
    elif qtype_name == "F16":
        w16 = w.astype(np.float16).astype(np.float32)
        err = float(np.linalg.norm(w16 - w) / np.linalg.norm(w))
    else:
        x = synth_activations(arch, rng, n_tokens)
        wq = _QUANTIZERS[qtype_name](w)
        ref = x @ w.T
        approx = x @ wq.T
        err = float(np.linalg.norm(approx - ref) / np.linalg.norm(ref))
    return GGUFErrorReport(model=arch.name, gguf_type=qtype_name,
                           rel_matmul_error=err)


def gguf_weight_bytes(arch, precision: Precision) -> int:
    """Model weight bytes in a GGUF file at the dtype for ``precision``.

    llama.cpp quantizes the linear (matmul) tensors to the k-quant
    dtype; embeddings, norms and biases stay fp16 — the same split
    bitsandbytes applies, so footprints are comparable across runtimes.
    """
    qtype = gguf_type_for(precision)
    pb = arch.param_breakdown()
    linear = qtype.tensor_bytes(pb.linear)
    rest = pb.non_linear * 2  # fp16
    return int(linear + rest)
