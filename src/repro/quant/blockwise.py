"""Blockwise 4-bit quantization: uniform INT4 and NF4 (NormalFloat-4).

bitsandbytes 4-bit stores weights in blocks of 64 values, each scaled by
its own absmax.  Uniform INT4 maps the block to the 15-level symmetric
integer grid; NF4 maps to the 16 quantiles of a standard normal — the
information-theoretically optimal codebook for normally distributed
weights (Dettmers et al., QLoRA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

#: The 16 NF4 code points from the QLoRA reference implementation.
NF4_CODEBOOK = np.array(
    [
        -1.0,
        -0.6961928009986877,
        -0.5250730514526367,
        -0.39491748809814453,
        -0.28444138169288635,
        -0.18477343022823334,
        -0.09105003625154495,
        0.0,
        0.07958029955625534,
        0.16093020141124725,
        0.24611230194568634,
        0.33791524171829224,
        0.44070982933044434,
        0.5626170039176941,
        0.7229568362236023,
        1.0,
    ],
    dtype=np.float32,
)

#: Symmetric 4-bit integer grid, normalised to [-1, 1].
INT4_CODEBOOK = (np.arange(-7, 8, dtype=np.float32) / 7.0)


@dataclass(frozen=True)
class BlockwiseQuantized:
    """Result of :func:`blockwise_quantize`.

    ``codes`` holds codebook indices (uint8, one per weight — packing two
    per byte is a storage detail the simulator accounts separately);
    ``absmax`` the per-block scales; ``shape`` the original shape.
    """

    codes: np.ndarray
    absmax: np.ndarray
    shape: tuple
    codebook: np.ndarray
    block_size: int


def blockwise_quantize(
    weights: np.ndarray, block_size: int = 64, scheme: str = "nf4"
) -> BlockwiseQuantized:
    """Quantize to 4 bits with per-block absmax scales.

    Parameters
    ----------
    weights:
        Any-shape float array (flattened internally, like bitsandbytes).
    block_size:
        Values per scale block (64 in bnb 4-bit).
    scheme:
        ``"nf4"`` or ``"int4"``.
    """
    w = np.asarray(weights, dtype=np.float32)
    if w.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    if block_size < 1:
        raise QuantizationError(f"block size must be >= 1, got {block_size}")
    if scheme == "nf4":
        codebook = NF4_CODEBOOK
    elif scheme == "int4":
        codebook = INT4_CODEBOOK
    else:
        raise QuantizationError(f"unknown 4-bit scheme {scheme!r}")

    flat = w.reshape(-1)
    pad = (-flat.size) % block_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
    blocks = flat.reshape(-1, block_size)
    absmax = np.abs(blocks).max(axis=1, keepdims=True)
    safe = np.where(absmax == 0.0, 1.0, absmax)
    normed = blocks / safe
    # Nearest codebook entry per value.
    idx = np.abs(normed[..., None] - codebook[None, None, :]).argmin(axis=-1)
    return BlockwiseQuantized(
        codes=idx.astype(np.uint8),
        absmax=absmax.astype(np.float32),
        shape=w.shape,
        codebook=codebook,
        block_size=block_size,
    )


def blockwise_dequantize(q: BlockwiseQuantized) -> np.ndarray:
    """Reconstruct the float32 tensor from a blockwise quantization."""
    values = q.codebook[q.codes] * q.absmax
    flat = values.reshape(-1)
    n = int(np.prod(q.shape))
    return flat[:n].reshape(q.shape)
