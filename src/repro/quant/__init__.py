"""Quantization: dtypes, real numpy quantizers, error metrics, overheads.

This package implements, from scratch in numpy, the quantization schemes
the paper uses through bitsandbytes:

- :mod:`repro.quant.absmax` — row-wise absmax INT8 quantization.
- :mod:`repro.quant.llm_int8` — LLM.int8() mixed-precision decomposition
  (outlier columns kept in FP16, the rest in vector-wise INT8), after
  Dettmers et al., NeurIPS 2022 (the paper's reference [10]).
- :mod:`repro.quant.blockwise` — blockwise INT4 and NF4 (4-bit NormalFloat)
  quantization with per-block absmax scales.
- :mod:`repro.quant.error` — quantization error metrics and the
  perplexity-degradation model used for paper-scale models.
- :mod:`repro.quant.overhead` — the *kernel cost* model: dequantization
  compute overhead and GPU-utilization caps that make INT8 slower than
  FP16 on edge GPUs (and faster on A100-class parts for big models).
"""

from repro.quant.dtypes import Precision
from repro.quant.absmax import absmax_quantize_int8, absmax_dequantize_int8
from repro.quant.blockwise import (
    NF4_CODEBOOK,
    blockwise_dequantize,
    blockwise_quantize,
)
from repro.quant.llm_int8 import LLMInt8Linear, llm_int8_decompose
from repro.quant.error import (
    QuantErrorReport,
    measure_quant_error,
    perplexity_delta,
)
from repro.quant.overhead import QuantKernelModel

__all__ = [
    "NF4_CODEBOOK",
    "LLMInt8Linear",
    "Precision",
    "QuantErrorReport",
    "QuantKernelModel",
    "absmax_dequantize_int8",
    "absmax_quantize_int8",
    "blockwise_dequantize",
    "blockwise_quantize",
    "llm_int8_decompose",
    "measure_quant_error",
    "perplexity_delta",
]
