"""Kernel-cost model for quantized inference.

Two regimes, selected by the GPU's ``int8_tensor_core_gemm`` capability:

**Fallback path** (the paper's Orin AGX): bitsandbytes dequantizes the
weights and multiplies in FP16.  The dequantization work is proportional
to the number of quantized *weights* and runs on the CUDA cores, so its
cost per decode step is ``linear_params * cycles_per_param / (cores *
freq)``.  This is what makes INT8 62% slower than FP16 for small models
on the edge (paper §3.3), and INT4 slower still.

**Native path** (A100-class): the INT8 GEMM runs on tensor cores at
twice the FP16 rate over half the memory traffic; the remaining overhead
is per-*activation* (quantize inputs row-wise, decompose outliers) and
therefore amortises with model size — reproducing Dettmers et al.'s
observation that quantization speeds up models above ~13B.

GPU-utilization caps per precision feed the power model: the paper
measures INT8 keeping only ≈60% of the GPU busy while INT4 saturates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.errors import QuantizationError
from repro.quant.dtypes import Precision

if TYPE_CHECKING:  # pragma: no cover - avoids a hardware<->quant cycle
    from repro.hardware.gpu import Gpu
    from repro.models.architecture import TransformerArchitecture


@dataclass
class QuantKernelModel:
    """Per-precision kernel cost parameters (calibrated per GPU family).

    Attributes
    ----------
    int8_cycles_per_param / int4_cycles_per_param:
        CUDA-core cycles to dequantize one weight on the fallback path.
    act_quant_cycles_per_elem:
        Cycles per activation element for row-wise quantization +
        outlier decomposition on the native path.
    int8_gemm_speedup:
        Math-rate multiplier of native INT8 tensor-core GEMM over FP16.
    gpu_util:
        Fraction of the GPU kept busy per precision (for the power model).
    """

    int8_cycles_per_param: float = 39.0
    int4_cycles_per_param: float = 58.0
    act_quant_cycles_per_elem: float = 18.0
    int8_gemm_speedup: float = 2.0
    #: Fraction of dequantization time that keeps ALUs busy (vs stalled
    #: on memory latency).  The paper observes INT8 at ~60% GPU with low
    #: power (latency-bound unpacking) while INT4's NF4 codebook math
    #: saturates the GPU and drives power up.
    int8_dequant_alu_fraction: float = 0.20
    int4_dequant_alu_fraction: float = 0.60
    #: Fixed cost per quantized GEMM call on the *native* path: extra
    #: quantize/extract-outlier/dequantize kernel launches around each
    #: igemmlt.  This is why Dettmers et al. measured small models
    #: *slower* with INT8 even on A100-class GPUs, while >13B models —
    #: whose per-GEMM work dwarfs the fixed cost — get faster.
    int8_native_overhead_s_per_gemm: float = 28e-6
    gpu_util: Dict[Precision, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.gpu_util is None:
            self.gpu_util = {
                Precision.FP32: 0.97,
                Precision.FP16: 0.92,
                Precision.INT8: 0.60,
                Precision.INT4: 1.00,
            }
        for v in (self.int8_cycles_per_param, self.int4_cycles_per_param,
                  self.act_quant_cycles_per_elem, self.int8_gemm_speedup):
            if v <= 0:
                raise QuantizationError("kernel cost parameters must be positive")

    # -- capability-dependent helpers ---------------------------------------
    def uses_fallback(self, gpu: "Gpu", precision: Precision) -> bool:
        """True if this precision dequantizes weights on ``gpu``."""
        if precision is Precision.INT4:
            return True  # 4-bit always dequantizes (no int4 GEMM anywhere)
        if precision is Precision.INT8:
            return not gpu.int8_tensor_core_gemm
        return False

    def dequant_seconds(
        self, arch: "TransformerArchitecture", gpu: "Gpu", precision: Precision
    ) -> float:
        """Weight-dequantization time added to every forward step."""
        if not precision.is_quantized or not self.uses_fallback(gpu, precision):
            return 0.0
        cycles = (
            self.int8_cycles_per_param
            if precision is Precision.INT8
            else self.int4_cycles_per_param
        )
        linear = arch.param_breakdown().linear
        return linear * cycles / (gpu.cuda_cores * gpu.freq_hz)

    def activation_overhead_seconds(
        self,
        arch: "TransformerArchitecture",
        gpu: "Gpu",
        precision: Precision,
        n_tokens: int,
    ) -> float:
        """Per-token quantize/decompose cost on the native INT8 path."""
        if precision is not Precision.INT8 or self.uses_fallback(gpu, precision):
            return 0.0
        n_gemms = arch.n_layers * 4 + 1  # 4 quantized GEMMs/layer + LM head
        fixed = n_gemms * self.int8_native_overhead_s_per_gemm / gpu.freq_ratio
        elems = n_tokens * arch.hidden_size * arch.n_layers * 4
        return fixed + elems * self.act_quant_cycles_per_elem / (
            gpu.cuda_cores * gpu.freq_hz
        )

    def math_rate_multiplier(self, gpu: "Gpu", precision: Precision) -> float:
        """Multiplier on FP16 math throughput for the main GEMMs."""
        if precision is Precision.INT8 and not self.uses_fallback(gpu, precision):
            return self.int8_gemm_speedup
        return 1.0

    def weight_traffic_multiplier(self, gpu: "Gpu", precision: Precision) -> float:
        """Weight DRAM traffic per step relative to stored size.

        On the fallback path the kernel streams the quantized weights
        *and* writes + re-reads FP16 tiles; empirically this costs about
        one extra pass over the dequantized size.
        """
        if not precision.is_quantized:
            return 1.0
        if self.uses_fallback(gpu, precision):
            return 1.0  # stream quantized weights; tile churn stays in cache
        return 1.0

    def dequant_alu_fraction(self, precision: Precision) -> float:
        """How much of the dequant time counts as compute for power."""
        if precision is Precision.INT8:
            return self.int8_dequant_alu_fraction
        if precision is Precision.INT4:
            return self.int4_dequant_alu_fraction
        return 0.0

    def gpu_utilization(self, precision: Precision) -> float:
        """Busy fraction for the power model."""
        u = self.gpu_util.get(precision)
        if u is None:
            raise QuantizationError(f"no GPU utilization entry for {precision}")
        return u
