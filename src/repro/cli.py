"""Command-line interface.

Installed as ``repro`` (or run ``python -m repro.cli``).  Subcommands
map onto the paper's experiments:

- ``repro footprint`` — Table 1 (weights per precision).
- ``repro run --model llama --precision fp16 --batch-size 32`` — one
  measured configuration.
- ``repro sweep batch|seqlen|quant|powermode --model llama`` — one of
  the §3 sweeps.
- ``repro perplexity`` — Table 3.
- ``repro profile`` — cProfile the cold simulate path and print a
  deterministic top-N report (stable sort, repo-relative paths).
- ``repro study --jobs -1 --cache`` — the entire paper in one go, with
  process fan-out and the on-disk result cache.
- ``repro cluster`` / ``repro chaos`` — multi-node serving, with and
  without fault injection; both take ``--kv-policy`` to pick the KV
  lifecycle policy (``sacrifice`` vs ``swap[-lifo|-fifo|-lru]``, with
  an optional ``-aggressive`` trigger suffix).
- ``repro kvtier`` — the KV lifecycle sweep: policy × trigger ×
  prefix-share-ratio on one memory-pressured node.
- ``repro sustain`` — the sustainability sweep: carbon-trace scenario ×
  routing policy × SLM-cascade mode × power mode over a geo-distributed
  fleet.
- ``repro devices`` / ``repro models`` / ``repro backends`` — list
  presets and registered inference runtimes.

``run``, ``sweep`` and ``study`` take ``--runtime`` to pick the
inference-runtime backend (``hf-transformers``, ``gguf``, ``paged``);
``repro sweep runtime`` runs one configuration on every backend and
prints the cross-backend comparison table.

``run``, ``sweep``, ``study``, ``cluster`` and ``chaos`` all accept
``--trace-out FILE`` (Chrome trace-event JSON for Perfetto) and
``--metrics-out FILE`` (Prometheus text or CSV); either flag also
prints a span-based per-phase latency breakdown.  Telemetry is
deterministic: same seed, byte-identical files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON "
                             "(load in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the metrics snapshot "
                             "(.prom/.txt: Prometheus text, else CSV)")


def _obs_from_args(args: argparse.Namespace):
    """An enabled Observer iff any observability output was requested."""
    if not (args.trace_out or args.metrics_out):
        return None
    from repro.obs import Observer

    return Observer()


def _finish_obs(args: argparse.Namespace, obs) -> None:
    """Write the requested exports and print the phase breakdown."""
    if obs is None:
        return
    from repro.obs import write_chrome_trace, write_metrics
    from repro.reporting import format_table, phase_breakdown

    rows = phase_breakdown(obs)
    if rows:
        print(format_table(rows, title="phase breakdown (simulated time)"))
    if args.trace_out:
        print(f"wrote {write_chrome_trace(args.trace_out, obs)}")
    if args.metrics_out:
        print(f"wrote {write_metrics(args.metrics_out, obs.metrics)}")


def _cmd_footprint(args: argparse.Namespace) -> int:
    from repro.models import PAPER_MODELS, footprint_table
    from repro.reporting import format_table

    print(format_table(footprint_table(PAPER_MODELS.values()),
                       title="Model weights per precision (GB)"))
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.models import list_models, get_model

    for name in list_models():
        arch = get_model(name)
        print(f"{name:14s} {arch.n_params_billions:5.1f}B  {arch.hf_id}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.backends import get_backend, list_backends

    for name in list_backends():
        b = get_backend(name)
        print(f"{name:16s} {b.description}")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware import device_registry

    for name, factory in sorted(device_registry().items()):
        dev = factory()
        print(f"{name:24s} {dev.memory.capacity_bytes / 2**30:5.0f} GiB  "
              f"{dev.gpu.cuda_cores:5d} CUDA cores  "
              f"{dev.memory.peak_bandwidth / 1e9:6.1f} GB/s")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core import ExperimentSpec, run_experiment
    from repro.core.experiment import default_precision_for
    from repro.engine.request import GenerationSpec
    from repro.quant.dtypes import Precision
    from repro.reporting import format_table

    precision = (Precision.parse(args.precision) if args.precision
                 else default_precision_for(args.model))
    spec = ExperimentSpec(
        model=args.model,
        precision=precision,
        device=args.device,
        batch_size=args.batch_size,
        gen=GenerationSpec(args.input_tokens, args.output_tokens),
        power_mode=args.power_mode,
        n_runs=args.runs,
        runtime=args.runtime,
    )
    obs = _obs_from_args(args)
    result = run_experiment(spec, observer=obs)
    print(format_table([result.as_row()]))
    _finish_obs(args, obs)
    return 2 if result.oom else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.cache import ResultCache, default_cache_dir
    from repro.core.experiment import ExperimentSpec
    from repro.core.sweeps import (
        batch_size_sweep,
        power_mode_sweep,
        quantization_sweep,
        runtime_sweep,
        seq_len_sweep,
    )
    from repro.reporting import format_table, runtime_comparison, write_csv

    sweeps = {
        "batch": batch_size_sweep,
        "seqlen": seq_len_sweep,
        "quant": quantization_sweep,
        "powermode": power_mode_sweep,
        "runtime": runtime_sweep,
    }
    spec = ExperimentSpec.for_model(args.model, device=args.device,
                                    n_runs=args.runs, runtime=args.runtime)
    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    obs = _obs_from_args(args)
    runs = sweeps[args.kind](spec, cache=cache, observer=obs)
    if args.kind == "runtime":
        rows = runtime_comparison(runs)
        print(format_table(rows,
                           title=f"runtime comparison — {runs[0].model}"))
    else:
        rows = [r.as_row() for r in runs]
        print(format_table(rows, title=f"{args.kind} sweep — {runs[0].model}"))
    if args.csv:
        path = write_csv(args.csv, rows)
        print(f"wrote {path}")
    if cache is not None:
        s = cache.stats
        print(f"cache: {s.hits} hits / {s.misses} misses -> {cache.root}")
    _finish_obs(args, obs)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import (
        AutoscalerConfig,
        EdgeCluster,
        FleetSpec,
        NodeSpec,
        PowerModeAutoscaler,
        SLOSpec,
        bursty_workload,
        diurnal_workload,
        multi_tenant_workload,
        poisson_workload,
    )
    from repro.reporting import format_table, write_csv

    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    specs = [NodeSpec(d, max_batch=args.max_batch, kv_policy=args.kv_policy,
                      kv_trigger=args.kv_trigger) for d in devices]
    slo = SLOSpec(ttft_s=args.ttft_slo, tpot_s=args.tpot_slo)
    obs = _obs_from_args(args)
    fleet = FleetSpec.of(specs, model=args.model, precision=args.precision,
                         policy=args.policy)
    cluster = EdgeCluster.of(fleet, slo=slo, observer=obs)
    if args.autoscale:
        cluster.attach_autoscaler(
            PowerModeAutoscaler(cluster.env, cluster.nodes, AutoscalerConfig())
        )

    kw = dict(input_tokens=args.input_tokens, output_tokens=args.output_tokens,
              seed=args.seed)
    if args.trace == "poisson":
        reqs = poisson_workload(args.rate, args.requests, **kw)
    elif args.trace == "bursty":
        reqs = bursty_workload(args.rate, 4.0 * args.rate, args.requests, **kw)
    elif args.trace == "diurnal":
        reqs = diurnal_workload(args.rate, args.requests, **kw)
    else:  # multi-tenant draws shapes from its tenant profiles
        reqs = multi_tenant_workload(args.rate, args.requests, seed=args.seed)

    report = cluster.run(reqs)
    print(format_table([report.as_row()],
                       title=f"cluster serving — {len(devices)} nodes, "
                             f"{args.trace} trace @ {args.rate} req/s"))
    print(format_table(report.node_rows, title="per node"))
    if len(report.tenants) > 1:
        print(format_table([t.as_row() for t in report.tenants],
                           title="per tenant"))
    if args.csv:
        path = write_csv(args.csv, [report.as_row()])
        print(f"wrote {path}")
    _finish_obs(args, obs)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import ChaosSpec, FaultScheduleSpec, run_chaos
    from repro.reporting import format_table, write_csv

    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    spec = ChaosSpec(
        devices=tuple(devices),
        model=args.model,
        precision=args.precision,
        policy=args.policy,
        rate_per_s=args.rate,
        n_requests=args.requests,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
        workload_seed=args.seed,
        kv_policy=args.kv_policy,
        faults=FaultScheduleSpec(
            seed=args.seed,
            horizon_s=args.horizon,
            n_nodes=len(devices),
            crash_rate_per_min=args.crash_rate,
            crash_downtime_s=args.crash_downtime,
            brownout_rate_per_min=args.brownout_rate,
            oom_rate_per_min=args.oom_rate,
            straggler_rate_per_min=args.straggler_rate,
            thermal_rate_per_min=args.thermal_rate,
        ),
        enable_fallback=args.fallback,
    )
    obs = _obs_from_args(args)
    report = run_chaos(spec, observer=obs)
    # Output is a pure function of the spec (no wall clock, no paths),
    # so two invocations with one seed are byte-identical — diffable.
    print(format_table([report.as_row()],
                       title=f"chaos — seed {spec.faults.seed}, "
                             f"{len(devices)} nodes"))
    print(format_table(report.faulted.node_rows, title="per node (faulted)"))
    if args.show_trace:
        print("injected fault trace (+ applied, - skipped):")
        for line in report.trace_lines():
            print(f"  {line}")
    print(f"cache_key={report.cache_key}")
    print(f"schedule={report.schedule_fingerprint}")
    if args.csv:
        path = write_csv(args.csv, [report.as_row()])
        print(f"wrote {path}")
    _finish_obs(args, obs)
    return 0


def _cmd_kvtier(args: argparse.Namespace) -> int:
    from repro.kvtier import KvTierSpec, run_kvtier, sweep_rows_csv

    def _floats(text: str) -> tuple:
        return tuple(float(v) for v in text.split(",") if v.strip())

    spec = KvTierSpec(
        device=args.device,
        model=args.model,
        precision=args.precision,
        power_mode=args.power_mode,
        rate_per_s=args.rate,
        n_requests=args.requests,
        prefix_tokens=args.prefix_tokens,
        unique_tokens=args.unique_tokens,
        output_tokens=args.output_tokens,
        max_batch=args.max_batch,
        kv_budget_frac=args.kv_budget_frac,
        policies=tuple(p.strip() for p in args.policies.split(",")
                       if p.strip()),
        triggers=_floats(args.triggers),
        share_ratios=_floats(args.share_ratios),
        seed=args.seed,
    )
    report = run_kvtier(spec)
    print(report.table())
    print(f"cache_key={spec.cache_key()}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as fh:
            fh.write(sweep_rows_csv(report))
        print(f"wrote {args.csv}")
    return 0


def _cmd_fairness(args: argparse.Namespace) -> int:
    from repro.fairness import (FairnessSpec, fairness_rows_csv,
                                run_fairness)

    def _names(text: str) -> tuple:
        return tuple(v.strip() for v in text.split(",") if v.strip())

    spec = FairnessSpec(
        device=args.device,
        model=args.model,
        precision=args.precision,
        runtimes=_names(args.runtimes),
        kv_policies=_names(args.kv_policies),
        schedulers=_names(args.schedulers),
        mixes=_names(args.mixes),
        power_modes=_names(args.power_modes),
        routing=args.routing,
        rate_per_s=args.rate,
        n_interactions=args.interactions,
        mean_turns=args.mean_turns,
        max_turns=args.max_turns,
        mean_think_time_s=args.think_time,
        max_batch=args.max_batch,
        throttle_rate=args.throttle_rate,
        slo_ttft_s=args.slo_ttft,
        seed=args.seed,
    )
    report = run_fairness(spec)
    print(report.table())
    print(f"cache_key={spec.cache_key()}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as fh:
            fh.write(fairness_rows_csv(report))
        print(f"wrote {args.csv}")
    return 0


def _cmd_sustain(args: argparse.Namespace) -> int:
    from repro.sustain import SustainSpec, run_sustain, sustain_rows_csv

    def _names(text: str) -> tuple:
        return tuple(v.strip() for v in text.split(",") if v.strip())

    spec = SustainSpec(
        devices=_names(args.devices),
        model=args.model,
        precision=args.precision,
        slm_model=args.slm_model,
        slm_precision=args.slm_precision,
        scenarios=_names(args.scenarios),
        routers=_names(args.routers),
        cascades=_names(args.cascades),
        power_modes=_names(args.power_modes),
        gate=args.gate,
        rate_per_s=args.rate,
        n_requests=args.requests,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
        defer_max_s=args.defer_max_s,
        defer_threshold_frac=args.defer_threshold,
        max_batch=args.max_batch,
        seed=args.seed,
    )
    report = run_sustain(spec)
    print(report.table())
    print(f"cache_key={spec.cache_key()}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as fh:
            fh.write(sustain_rows_csv(report))
        print(f"wrote {args.csv}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.plan import (PlanSpec, ValidationSpec, plan, run_validation,
                            validation_rows_csv)
    from repro.reporting import format_table, plan_table

    def _names(text: str) -> tuple:
        return tuple(v.strip() for v in text.split(",") if v.strip())

    if args.validate:
        vspec = ValidationSpec(
            model=args.model, device=args.device,
            precision=_names(args.precisions)[0],
            power_mode=_names(args.power_modes)[0],
            nodes=args.validate_nodes, n_requests=args.validate_requests,
            input_tokens=args.input_tokens,
            output_tokens=args.output_tokens, max_batch=args.max_batch,
            runtimes=_names(args.runtimes), seed=args.seed,
        )
        report = run_validation(vspec)
        print(report.table())
        print(f"within_tolerance={report.within_fraction:.3f} "
              f"(tolerance={vspec.tolerance})")
        print(f"cache_key={vspec.cache_key()}")
        if args.csv:
            with open(args.csv, "w", encoding="utf-8", newline="") as fh:
                fh.write(validation_rows_csv(report))
            print(f"wrote {args.csv}")
        return 0

    spec = PlanSpec(
        model=args.model, device=args.device, rate_per_s=args.rate,
        input_tokens=args.input_tokens, output_tokens=args.output_tokens,
        slo_ttft_s=args.slo_ttft, slo_tpot_s=args.slo_tpot,
        slo_e2e_s=args.slo_e2e, runtimes=_names(args.runtimes),
        precisions=_names(args.precisions),
        power_modes=_names(args.power_modes), max_nodes=args.max_nodes,
        max_batch=args.max_batch, max_utilization=args.max_utilization,
        carbon_gco2_per_kwh=args.carbon_gco2,
    )
    report = plan(spec)
    print(format_table(plan_table(report),
                       title=f"capacity plan: {spec.model} @ "
                             f"{spec.rate_per_s} req/s on {spec.device}"))
    if report.chosen is not None:
        c = report.chosen
        print(f"\nchosen: {c['nodes']}x {spec.device} [{c['runtime']}, "
              f"{c['precision']}, {c['power_mode']}] — "
              f"{c['watts']} W fleet, TTFT {c['ttft_s']} s, "
              f"latency {c['latency_s']} s")
    else:
        print("\nno configuration inside the candidate axes meets the SLO")
    print(f"cache_key={spec.cache_key()}")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    import time

    from repro.core.cache import ResultCache, default_cache_dir
    from repro.core.study import StudySpec, run_full_study
    from repro.reporting import format_table

    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    models = ([m.strip() for m in args.models.split(",") if m.strip()]
              if args.models else None)
    spec = StudySpec.of(
        models,
        n_runs=args.runs,
        include_power_energy=not args.no_power_energy,
        fast_forward=not args.no_fast_forward,
        runtime=args.runtime,
    )
    obs = _obs_from_args(args)

    t0 = time.perf_counter()
    results = run_full_study(
        spec,
        progress=not args.quiet,
        jobs=args.jobs,
        cache=cache,
        observer=obs,
    )
    elapsed = time.perf_counter() - t0

    print(format_table(results.table1_footprints,
                       title="Table 1: weights per precision (GB)"))
    print(format_table(results.table3_perplexity,
                       title="Table 3: perplexity by precision"))
    for model, by_wl in results.batch_sweeps.items():
        for wl, runs in by_wl.items():
            print(format_table([r.as_row() for r in runs],
                               title=f"batch-size sweep — {model} / {wl}"))
    n_configs = sum(
        len(runs)
        for group in (results.batch_sweeps, results.seqlen_sweeps)
        for by_wl in group.values() for runs in by_wl.values()
    ) + sum(len(r) for r in results.quant_sweeps.values()) \
      + sum(len(r) for r in results.power_mode_sweeps.values()) \
      + sum(len(runs) for by_prec in results.power_energy_sweeps.values()
            for runs in by_prec.values())
    line = f"{n_configs} configurations in {elapsed:.2f}s (jobs={args.jobs or 1})"
    if cache is not None:
        s = cache.stats
        line += f"; cache: {s.hits} hits / {s.misses} misses -> {cache.root}"
    print(line)
    _finish_obs(args, obs)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.profile import default_profile_specs, profile_specs

    models = ([m.strip() for m in args.models.split(",") if m.strip()]
              if args.models else None)
    specs = default_profile_specs(models, n_runs=args.runs)
    report = profile_specs(specs, fast_forward=not args.per_token,
                           top=args.top)
    text = report.format()
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_perplexity(args: argparse.Namespace) -> int:
    from repro.hardware import get_device
    from repro.perplexity import perplexity_table
    from repro.reporting import format_table

    rows = perplexity_table(get_device(args.device))
    print(format_table(rows, title="Perplexity by precision (OOM = does not fit)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated reproduction of 'LLM Inferencing on Edge Accelerators'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("footprint", help="Table 1: weights per precision")
    sub.add_parser("models", help="list model presets")
    sub.add_parser("devices", help="list device presets")
    sub.add_parser("backends", help="list registered inference runtimes")

    run = sub.add_parser("run", help="measure one configuration")
    run.add_argument("--model", default="llama")
    run.add_argument("--precision", default=None,
                     help="fp32|fp16|int8|int4 (default: paper's choice)")
    run.add_argument("--device", default="jetson-orin-agx-64gb")
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--input-tokens", type=int, default=32)
    run.add_argument("--output-tokens", type=int, default=64)
    run.add_argument("--power-mode", default="MAXN")
    run.add_argument("--runs", type=int, default=5)
    run.add_argument("--runtime", default="hf-transformers",
                     help="inference runtime backend (see `repro backends`)")
    _add_obs_args(run)

    sweep = sub.add_parser("sweep", help="run one of the paper's sweeps")
    sweep.add_argument("kind", choices=["batch", "seqlen", "quant",
                                        "powermode", "runtime"])
    sweep.add_argument("--model", default="llama")
    sweep.add_argument("--device", default="jetson-orin-agx-64gb")
    sweep.add_argument("--runs", type=int, default=2)
    sweep.add_argument("--runtime", default="hf-transformers",
                       help="inference runtime backend; the `runtime` kind "
                            "sweeps every registered backend instead")
    sweep.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="reuse/populate the on-disk result cache")
    sweep.add_argument("--cache-dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-edge-llm)")
    sweep.add_argument("--csv", default=None, help="also write rows to CSV")
    _add_obs_args(sweep)

    ppl = sub.add_parser("perplexity", help="Table 3: perplexity by precision")
    ppl.add_argument("--device", default="jetson-orin-agx-64gb")

    prof = sub.add_parser(
        "profile",
        help="cProfile the cold simulate path (deterministic top-N report)")
    prof.add_argument("--models", default=None,
                      help="comma-separated model names (default: llama)")
    prof.add_argument("--runs", type=int, default=2,
                      help="measured runs per configuration")
    prof.add_argument("--per-token", action="store_true",
                      help="profile the token-by-token path "
                           "(fast_forward=False)")
    prof.add_argument("--top", type=int, default=25,
                      help="rows to show (sorted by cumulative time)")
    prof.add_argument("--out", default=None,
                      help="also write the report to FILE")

    study = sub.add_parser("study", help="run the paper's full experiment matrix")
    study.add_argument("--models", default=None,
                       help="comma-separated model names (default: all four)")
    study.add_argument("--runs", type=int, default=5,
                       help="measured runs per configuration (paper: 5)")
    study.add_argument("--jobs", type=int, default=None,
                       help="worker processes (-1 = all cores; default serial)")
    study.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="reuse/populate the on-disk result cache")
    study.add_argument("--cache-dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro-edge-llm)")
    study.add_argument("--runtime", default="hf-transformers",
                       help="inference runtime backend for every "
                            "configuration (see `repro backends`)")
    study.add_argument("--no-power-energy", action="store_true",
                       help="skip the §3.3 power/energy batch grids")
    study.add_argument("--no-fast-forward", action="store_true",
                       help="step decode token-by-token (debugging)")
    study.add_argument("--quiet", action="store_true",
                       help="suppress per-sweep progress lines")
    _add_obs_args(study)

    clu = sub.add_parser("cluster",
                         help="multi-device serving: trace -> router -> fleet")
    clu.add_argument("--devices",
                     default="jetson-orin-agx-64gb,jetson-orin-agx-32gb",
                     help="comma-separated device presets (one node each)")
    clu.add_argument("--model", default="llama")
    clu.add_argument("--precision", default="fp16")
    clu.add_argument("--policy", default="jsq",
                     help="round-robin|jsq|least-kv|energy-aware|splitwise")
    clu.add_argument("--trace", default="poisson",
                     choices=["poisson", "bursty", "diurnal", "multi-tenant"])
    clu.add_argument("--rate", type=float, default=2.0,
                     help="mean arrival rate (req/s; bursty: calm rate)")
    clu.add_argument("--requests", type=int, default=100)
    clu.add_argument("--input-tokens", type=int, default=64)
    clu.add_argument("--output-tokens", type=int, default=64)
    clu.add_argument("--max-batch", type=int, default=8)
    clu.add_argument("--ttft-slo", type=float, default=10.0)
    clu.add_argument("--tpot-slo", type=float, default=1.0)
    clu.add_argument("--kv-policy", default="sacrifice",
                     help="KV lifecycle under preemption: sacrifice|"
                          "swap[-lifo|-fifo|-lru][-aggressive]")
    clu.add_argument("--kv-trigger", type=float, default=None,
                     help="override the preemption trigger fraction "
                          "(0 < t <= 1; e.g. 0.85 = aggressive)")
    clu.add_argument("--autoscale", action="store_true",
                     help="enable the power-mode autoscaler")
    clu.add_argument("--seed", type=int, default=0)
    clu.add_argument("--csv", default=None, help="also write the report row")
    _add_obs_args(clu)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injected serving vs fault-free twin (deterministic)")
    chaos.add_argument("--devices",
                       default="jetson-orin-agx-64gb,jetson-orin-agx-32gb",
                       help="comma-separated device presets (one node each)")
    chaos.add_argument("--model", default="llama")
    chaos.add_argument("--precision", default="int8")
    chaos.add_argument("--policy", default="jsq")
    chaos.add_argument("--rate", type=float, default=2.0)
    chaos.add_argument("--requests", type=int, default=80)
    chaos.add_argument("--input-tokens", type=int, default=32)
    chaos.add_argument("--output-tokens", type=int, default=64)
    chaos.add_argument("--seed", type=int, default=0,
                       help="seeds both the workload and the fault schedule")
    chaos.add_argument("--horizon", type=float, default=60.0,
                       help="fault-schedule horizon (s)")
    chaos.add_argument("--crash-rate", type=float, default=1.0,
                       help="crashes per node per minute")
    chaos.add_argument("--crash-downtime", type=float, default=8.0)
    chaos.add_argument("--brownout-rate", type=float, default=0.0)
    chaos.add_argument("--oom-rate", type=float, default=0.0)
    chaos.add_argument("--straggler-rate", type=float, default=0.0)
    chaos.add_argument("--thermal-rate", type=float, default=0.0)
    chaos.add_argument("--kv-policy", default="sacrifice",
                       help="KV lifecycle under preemption: sacrifice|"
                            "swap[-lifo|-fifo|-lru][-aggressive]")
    chaos.add_argument("--fallback", action="store_true",
                       help="enable INT8->INT4 precision fallback")
    chaos.add_argument("--show-trace", action="store_true",
                       help="print the applied-fault transcript")
    chaos.add_argument("--csv", default=None, help="also write the report row")
    _add_obs_args(chaos)

    kvt = sub.add_parser(
        "kvtier",
        help="KV lifecycle sweep: policy x trigger x prefix-share-ratio")
    kvt.add_argument("--device", default="jetson-orin-agx-64gb")
    kvt.add_argument("--model", default="llama3.1-8b")
    kvt.add_argument("--precision", default="fp16")
    kvt.add_argument("--power-mode", default="MAXN")
    kvt.add_argument("--rate", type=float, default=4.0,
                     help="mean arrival rate (req/s)")
    kvt.add_argument("--requests", type=int, default=40)
    kvt.add_argument("--prefix-tokens", type=int, default=128,
                     help="shared system-prompt length (tokens)")
    kvt.add_argument("--unique-tokens", type=int, default=32,
                     help="per-request unique suffix length (tokens)")
    kvt.add_argument("--output-tokens", type=int, default=64)
    kvt.add_argument("--max-batch", type=int, default=8)
    kvt.add_argument("--kv-budget-frac", type=float, default=0.005,
                     help="fraction of the natural KV budget kept "
                          "(< 1 forces preemption)")
    kvt.add_argument("--policies", default="sacrifice,swap-lifo,swap-lru",
                     help="comma-separated KV lifecycle policies")
    kvt.add_argument("--triggers", default="1.0,0.85",
                     help="comma-separated trigger fractions")
    kvt.add_argument("--share-ratios", default="0.0,0.5",
                     help="comma-separated shared-prefix ratios")
    kvt.add_argument("--seed", type=int, default=0)
    kvt.add_argument("--csv", default=None,
                     help="write the sweep rows as canonical CSV")

    fair = sub.add_parser(
        "fairness",
        help="fair-serving sweep: scheduler x tenant-mix x runtime x kv")
    fair.add_argument("--device", default="jetson-orin-agx-64gb")
    fair.add_argument("--model", default="llama3.1-8b")
    fair.add_argument("--precision", default="fp16")
    fair.add_argument("--runtimes", default="hf-transformers",
                      help="comma-separated runtime backends")
    fair.add_argument("--kv-policies", default="sacrifice",
                      help="comma-separated KV lifecycle policies")
    fair.add_argument("--schedulers", default="fcfs,vtc,wsc",
                      help="comma-separated queue disciplines")
    fair.add_argument("--mixes", default="balanced,flood",
                      help="comma-separated tenant mixes "
                           "(balanced|flood|weighted)")
    fair.add_argument("--power-modes", default="MAXN",
                      help="comma-separated nvpmodel operating points "
                           "the grid replays under")
    fair.add_argument("--routing", default="round-robin",
                      help="routing policy for the fleet")
    fair.add_argument("--rate", type=float, default=3.0,
                      help="mean session arrival rate (sessions/s)")
    fair.add_argument("--interactions", type=int, default=24,
                      help="number of multi-turn sessions")
    fair.add_argument("--mean-turns", type=float, default=3.0)
    fair.add_argument("--max-turns", type=int, default=6)
    fair.add_argument("--think-time", type=float, default=1.0,
                      help="mean user think time between turns (s)")
    fair.add_argument("--max-batch", type=int, default=2)
    fair.add_argument("--throttle-rate", type=float, default=0.0,
                      help="per-tenant token budget (tokens/s); 0 = off")
    fair.add_argument("--slo-ttft", type=float, default=30.0,
                      help="TTFT deadline the good-share metric uses (s)")
    fair.add_argument("--seed", type=int, default=0)
    fair.add_argument("--csv", default=None,
                      help="write the sweep rows as canonical CSV")

    sus = sub.add_parser(
        "sustain",
        help="sustainability sweep: trace x router x cascade x power mode")
    sus.add_argument("--devices",
                     default="jetson-orin-agx-64gb,jetson-orin-agx-32gb,"
                             "jetson-xavier-agx-32gb",
                     help="comma-separated device presets; order maps "
                          "round-robin onto each scenario's regions")
    sus.add_argument("--model", default="llama",
                     help="the LLM tier (and the no-cascade fleet model)")
    sus.add_argument("--precision", default="fp16")
    sus.add_argument("--slm-model", default="phi2",
                     help="the cascade's small first-pass model")
    sus.add_argument("--slm-precision", default="int8")
    sus.add_argument("--scenarios", default="uniform,two-region",
                     help="comma-separated carbon-trace scenarios")
    sus.add_argument("--routers", default="energy-aware,carbon-aware",
                     help="comma-separated routing policies")
    sus.add_argument("--cascades", default="off,on",
                     help="comma-separated cascade modes (off|on)")
    sus.add_argument("--power-modes", default="MAXN",
                     help="comma-separated nvpmodel operating points "
                          "(clamped per device on heterogeneous fleets)")
    sus.add_argument("--gate", type=float, default=0.5,
                     help="cascade escalation gate strictness (0 = never)")
    sus.add_argument("--rate", type=float, default=0.5,
                     help="mean arrival rate (req/s)")
    sus.add_argument("--requests", type=int, default=24)
    sus.add_argument("--input-tokens", type=int, default=48)
    sus.add_argument("--output-tokens", type=int, default=96)
    sus.add_argument("--defer-max-s", type=float, default=0.0,
                     help="defer latency-slack arrivals up to this long "
                          "toward cleaner grid hours (0 = off)")
    sus.add_argument("--defer-threshold", type=float, default=0.95,
                     help="defer while intensity exceeds this fraction "
                          "of the trace mean")
    sus.add_argument("--max-batch", type=int, default=8)
    sus.add_argument("--seed", type=int, default=0)
    sus.add_argument("--csv", default=None,
                     help="write the sweep rows as canonical CSV")

    pln = sub.add_parser(
        "plan",
        help="analytic capacity plan: nodes/power-mode/backend for an SLO")
    pln.add_argument("--device", default="jetson-orin-agx-64gb")
    pln.add_argument("--model", default="llama3.1-8b")
    pln.add_argument("--rate", type=float, default=2.0,
                     help="offered arrival rate (req/s)")
    pln.add_argument("--input-tokens", type=int, default=64)
    pln.add_argument("--output-tokens", type=int, default=64)
    pln.add_argument("--slo-ttft", type=float, default=10.0,
                     help="TTFT target (s)")
    pln.add_argument("--slo-tpot", type=float, default=1.0,
                     help="per-token decode target (s)")
    pln.add_argument("--slo-e2e", type=float, default=None,
                     help="end-to-end latency target (s); off by default")
    pln.add_argument("--runtimes", default="hf-transformers,paged,gguf",
                     help="comma-separated candidate runtimes")
    pln.add_argument("--precisions", default="fp16",
                     help="comma-separated candidate precisions")
    pln.add_argument("--power-modes", default="MAXN",
                     help="comma-separated candidate power modes")
    pln.add_argument("--max-nodes", type=int, default=8)
    pln.add_argument("--max-batch", type=int, default=8)
    pln.add_argument("--max-utilization", type=float, default=0.9,
                     help="refuse plans busier than this fraction")
    pln.add_argument("--carbon-gco2", type=float, default=None,
                     help="deployment region grid intensity (g CO2/kWh); "
                          "adds a g_per_token column and ranks winners "
                          "by it after nodes and watts")
    pln.add_argument("--validate", action="store_true",
                     help="cross-validate the fluid model against the "
                          "DES over a workload x router x runtime grid")
    pln.add_argument("--validate-nodes", type=int, default=2,
                     help="fleet size of the validation grid")
    pln.add_argument("--validate-requests", type=int, default=60,
                     help="requests per validation cell")
    pln.add_argument("--seed", type=int, default=0)
    pln.add_argument("--csv", default=None,
                     help="write the validation rows as canonical CSV")

    return parser


_COMMANDS = {
    "footprint": _cmd_footprint,
    "models": _cmd_models,
    "devices": _cmd_devices,
    "backends": _cmd_backends,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "perplexity": _cmd_perplexity,
    "profile": _cmd_profile,
    "study": _cmd_study,
    "cluster": _cmd_cluster,
    "chaos": _cmd_chaos,
    "kvtier": _cmd_kvtier,
    "fairness": _cmd_fairness,
    "sustain": _cmd_sustain,
    "plan": _cmd_plan,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
