"""Synthetic workload corpora and prompt pools.

The paper draws prompts from WikiText2 and LongBench: paragraphs with at
least 256 tokens form a pool; each batch samples prompts from the pool.
Offline we generate statistically controlled stand-ins:

- :mod:`repro.datasets.textgen` — seeded Zipf-vocabulary Markov text.
- :mod:`repro.datasets.wikitext` — WikiText2-like encyclopedic articles
  (headed sections, medium paragraphs).
- :mod:`repro.datasets.longbench` — LongBench-like long documents with
  task/question framing.
- :mod:`repro.datasets.prompts` — pool extraction and batch sampling.
"""

from repro.datasets.textgen import MarkovTextGenerator, ZipfVocabulary
from repro.datasets.wikitext import wikitext2_like_corpus
from repro.datasets.longbench import longbench_like_corpus
from repro.datasets.prompts import PromptPool, Workload, build_workload

__all__ = [
    "MarkovTextGenerator",
    "PromptPool",
    "Workload",
    "ZipfVocabulary",
    "build_workload",
    "longbench_like_corpus",
    "wikitext2_like_corpus",
]
