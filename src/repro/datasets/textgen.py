"""Seeded synthetic natural-ish text: Zipf vocabulary + Markov chains.

Word frequencies follow a Zipf law (exponent ~1.07, as in English);
word-to-word transitions come from a sparse first-order Markov chain, so
the text has realistic local statistics for BPE training and perplexity
windows while being fully deterministic under a seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _synth_word(rng: np.random.Generator) -> str:
    """A pronounceable pseudo-word of 1-4 syllables."""
    n_syll = int(rng.integers(1, 5))
    parts: List[str] = []
    for _ in range(n_syll):
        c = _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
        v = _VOWELS[int(rng.integers(len(_VOWELS)))]
        parts.append(c + v)
    if rng.random() < 0.4:
        parts.append(_CONSONANTS[int(rng.integers(len(_CONSONANTS)))])
    return "".join(parts)


class ZipfVocabulary:
    """A vocabulary of pseudo-words with Zipfian unigram frequencies."""

    def __init__(self, size: int = 4000, exponent: float = 1.07, seed: int = 0):
        if size < 10:
            raise WorkloadError(f"vocabulary needs >= 10 words, got {size}")
        if exponent <= 0:
            raise WorkloadError("Zipf exponent must be positive")
        rng = np.random.default_rng(seed)
        seen = set()
        words: List[str] = []
        while len(words) < size:
            w = _synth_word(rng)
            if w not in seen:
                seen.add(w)
                words.append(w)
        self.words = words
        ranks = np.arange(1, size + 1, dtype=np.float64)
        probs = ranks**-exponent
        self.probs = probs / probs.sum()

    def __len__(self) -> int:
        return len(self.words)


class MarkovTextGenerator:
    """First-order Markov chain over a :class:`ZipfVocabulary`.

    Each word gets ``branching`` candidate successors (sampled by
    unigram probability); transitions interpolate between the chain and
    the unigram distribution to avoid degenerate loops.
    """

    def __init__(
        self,
        vocab: ZipfVocabulary,
        branching: int = 24,
        chain_weight: float = 0.75,
        seed: int = 0,
    ):
        if branching < 2:
            raise WorkloadError("branching must be >= 2")
        if not (0.0 <= chain_weight < 1.0):
            raise WorkloadError("chain_weight must be in [0, 1)")
        self.vocab = vocab
        self.chain_weight = chain_weight
        self.rng = np.random.default_rng(seed)
        n = len(vocab)
        # Successor table: for each word, `branching` successor indices.
        self._succ = self.rng.choice(n, size=(n, branching), p=vocab.probs)

    def _next(self, current: int) -> int:
        if self.rng.random() < self.chain_weight:
            row = self._succ[current]
            return int(row[int(self.rng.integers(len(row)))])
        return int(self.rng.choice(len(self.vocab), p=self.vocab.probs))

    def sentence(self, min_words: int = 6, max_words: int = 24) -> str:
        """One sentence, capitalised, period-terminated."""
        n = int(self.rng.integers(min_words, max_words + 1))
        idx = int(self.rng.choice(len(self.vocab), p=self.vocab.probs))
        out = [self.vocab.words[idx].capitalize()]
        for _ in range(n - 1):
            idx = self._next(idx)
            out.append(self.vocab.words[idx])
        return " ".join(out) + "."

    def paragraph(self, n_sentences: int) -> str:
        """``n_sentences`` sentences joined with spaces."""
        if n_sentences < 1:
            raise WorkloadError("paragraph needs >= 1 sentence")
        return " ".join(self.sentence() for _ in range(n_sentences))
