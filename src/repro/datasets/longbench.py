"""LongBench-like corpus: long multi-paragraph documents with task framing."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.textgen import MarkovTextGenerator, ZipfVocabulary
from repro.errors import WorkloadError

_TASKS = (
    "Summarize the following document.",
    "Answer the question based on the passage below.",
    "Read the report and extract the key findings.",
    "Given the meeting transcript below, list the action items.",
)


def longbench_like_corpus(
    n_documents: int = 24,
    seed: int = 5678,
    vocab_size: int = 4000,
) -> str:
    """Generate a corpus shaped like LongBench inputs.

    Documents are much longer than WikiText paragraphs (dozens of
    sentences per paragraph, many paragraphs per document) and open with
    an instruction line, as LongBench tasks do.  Documents are separated
    by blank lines.
    """
    if n_documents < 1:
        raise WorkloadError("need at least one document")
    rng = np.random.default_rng(seed)
    vocab = ZipfVocabulary(size=vocab_size, seed=seed)
    gen = MarkovTextGenerator(vocab, seed=seed + 1)

    chunks: List[str] = []
    for _ in range(n_documents):
        task = _TASKS[int(rng.integers(len(_TASKS)))]
        paras: List[str] = [task]
        for _ in range(int(rng.integers(4, 9))):
            n_sent = int(rng.integers(10, 30))
            paras.append(gen.paragraph(n_sent))
        chunks.append("\n".join(paras))
        chunks.append("")
    return "\n".join(chunks)
