"""Prompt pools and batch sampling, following the paper's methodology.

"We extract paragraphs with >= 256 tokens as a pool of valid prompts.
For each inference batch, we randomly sample the required number of
prompts." — §2.  For sequence-length experiments, "a diverse subset or
multiples of the 256-token prompts form a single input" and outputs are
limited to the remaining sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.tokenizer.bpe import BpeTokenizer


@dataclass(frozen=True)
class Prompt:
    """One pooled prompt: raw text plus its tokenization."""

    text: str
    token_ids: tuple

    @property
    def n_tokens(self) -> int:
        return len(self.token_ids)


class PromptPool:
    """A pool of prompts meeting a minimum token-count threshold."""

    def __init__(self, prompts: Sequence[Prompt], min_tokens: int):
        if not prompts:
            raise WorkloadError(
                f"prompt pool is empty (no paragraph reached {min_tokens} tokens)"
            )
        self.prompts = list(prompts)
        self.min_tokens = min_tokens

    def __len__(self) -> int:
        return len(self.prompts)

    @classmethod
    def from_corpus(
        cls, corpus: str, tokenizer: BpeTokenizer, min_tokens: int = 256
    ) -> "PromptPool":
        """Extract paragraphs (blank-line separated) with >= ``min_tokens``."""
        if min_tokens < 1:
            raise WorkloadError("min_tokens must be >= 1")
        prompts: List[Prompt] = []
        for para in corpus.split("\n\n"):
            text = " ".join(para.split())
            if not text:
                continue
            ids = tokenizer.encode(text)
            if len(ids) >= min_tokens:
                prompts.append(Prompt(text=text, token_ids=tuple(ids)))
        return cls(prompts, min_tokens)

    def sample_batch(
        self, batch_size: int, input_tokens: int, rng: np.random.Generator
    ) -> List[List[int]]:
        """Sample ``batch_size`` inputs of exactly ``input_tokens`` tokens.

        Prompts are drawn randomly; longer prompts are truncated and
        shorter inputs concatenate multiple pooled prompts (the paper's
        "multiples of the 256-token prompts").
        """
        if batch_size < 1 or input_tokens < 1:
            raise WorkloadError("batch_size and input_tokens must be >= 1")
        batch: List[List[int]] = []
        for _ in range(batch_size):
            ids: List[int] = []
            while len(ids) < input_tokens:
                p = self.prompts[int(rng.integers(len(self.prompts)))]
                ids.extend(p.token_ids)
            batch.append(ids[:input_tokens])
        return batch


@dataclass(frozen=True)
class Workload:
    """A named dataset ready for experiments."""

    name: str
    corpus: str
    tokenizer: BpeTokenizer
    pool: PromptPool

    def sample_batch(
        self, batch_size: int, input_tokens: int, seed: int = 0
    ) -> List[List[int]]:
        """Seeded batch sampling (see :meth:`PromptPool.sample_batch`)."""
        rng = np.random.default_rng(seed)
        return self.pool.sample_batch(batch_size, input_tokens, rng)


def build_workload(
    name: str,
    tokenizer: BpeTokenizer = None,
    min_tokens: int = 256,
    seed: int = 0,
) -> Workload:
    """Construct one of the paper's two workloads by name.

    ``name`` is ``"wikitext2"`` or ``"longbench"``.  If ``tokenizer`` is
    None, a BPE is trained on the generated corpus itself.
    """
    from repro.datasets.longbench import longbench_like_corpus
    from repro.datasets.wikitext import wikitext2_like_corpus
    from repro.tokenizer.bpe import train_bpe

    key = name.strip().lower()
    if key == "wikitext2":
        corpus = wikitext2_like_corpus(seed=1234 + seed)
    elif key == "longbench":
        corpus = longbench_like_corpus(seed=5678 + seed)
    else:
        raise WorkloadError(f"unknown workload {name!r} (wikitext2 | longbench)")
    if tokenizer is None:
        tokenizer = train_bpe(corpus[:200_000], vocab_size=800)
    pool = PromptPool.from_corpus(corpus, tokenizer, min_tokens=min_tokens)
    return Workload(name=key, corpus=corpus, tokenizer=tokenizer, pool=pool)
