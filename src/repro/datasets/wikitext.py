"""WikiText2-like corpus: encyclopedic articles with headed sections."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.textgen import MarkovTextGenerator, ZipfVocabulary
from repro.errors import WorkloadError


def wikitext2_like_corpus(
    n_articles: int = 60,
    seed: int = 1234,
    vocab_size: int = 4000,
) -> str:
    """Generate a corpus shaped like WikiText-2.

    Each article has a ``= Title =`` heading, 2-5 ``= = Section = =``
    blocks, and paragraphs of 4-14 sentences — long enough that many
    exceed the paper's 256-token prompt-pool threshold.  Paragraphs are
    separated by blank lines, as in the original dataset.
    """
    if n_articles < 1:
        raise WorkloadError("need at least one article")
    rng = np.random.default_rng(seed)
    vocab = ZipfVocabulary(size=vocab_size, seed=seed)
    gen = MarkovTextGenerator(vocab, seed=seed + 1)

    chunks: List[str] = []
    for _ in range(n_articles):
        title = gen.sentence(2, 4).rstrip(".").title()
        chunks.append(f"= {title} =")
        chunks.append("")
        for _ in range(int(rng.integers(2, 6))):
            section = gen.sentence(1, 3).rstrip(".").title()
            chunks.append(f"= = {section} = =")
            chunks.append("")
            for _ in range(int(rng.integers(1, 4))):
                n_sent = int(rng.integers(4, 15))
                chunks.append(gen.paragraph(n_sent))
                chunks.append("")
    return "\n".join(chunks)
