"""Carbon-intensity and electricity-price traces on the DES clock.

A :class:`CarbonTrace` is a stepwise series of grid carbon intensity
(g CO₂ per kWh) and electricity price ($ per kWh) over simulated time —
the first-class input the sustainability scenario routes and defers
against.  Steps are uniform (``step_s`` wide) and the series repeats
periodically, so a short compressed "day" covers arbitrarily long runs
exactly like the diurnal workload generator compresses 24 h into
``period_s``.

Generators are deterministic under their ``seed`` (the RNG stream is
keyed with ``zlib.crc32`` of the trace name, never ``hash()``, so the
series is stable across ``PYTHONHASHSEED``), and a CSV loader covers
real grid data (electricityMap-style exports).

Everything here is a frozen dataclass of tuples: traces are hashable,
``dataclasses.asdict``-able, and fold into content-addressed sweep
cache keys via :data:`SUSTAIN_VERSION`.
"""

from __future__ import annotations

import csv
import math
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Fold into every sustain-layer cache key: bump when trace generation,
#: routing scores or cascade gating change meaning.
SUSTAIN_VERSION = 1

#: Joules per kilowatt-hour (the gCO₂/kWh → g/J conversion).
J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CarbonTrace:
    """Stepwise carbon-intensity / price series, periodic in time.

    ``gco2_per_kwh[k]`` and ``usd_per_kwh[k]`` hold over
    ``[k * step_s, (k + 1) * step_s)``; past the last step the series
    wraps around (the day repeats).
    """

    name: str
    step_s: float
    gco2_per_kwh: Tuple[float, ...]
    usd_per_kwh: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("carbon trace needs a name")
        if self.step_s <= 0:
            raise ConfigError("carbon trace step must be positive")
        if not self.gco2_per_kwh:
            raise ConfigError("carbon trace needs at least one step")
        if len(self.usd_per_kwh) != len(self.gco2_per_kwh):
            raise ConfigError(
                "carbon trace intensity and price series must align")
        if any(v < 0 for v in self.gco2_per_kwh):
            raise ConfigError("carbon intensity must be >= 0")
        if any(v < 0 for v in self.usd_per_kwh):
            raise ConfigError("electricity price must be >= 0")

    # -- lookups -----------------------------------------------------------
    @property
    def period_s(self) -> float:
        """One full cycle of the series."""
        return self.step_s * len(self.gco2_per_kwh)

    def _index(self, time_s: float) -> int:
        return int(math.floor(max(0.0, time_s) / self.step_s)) \
            % len(self.gco2_per_kwh)

    def intensity_at(self, time_s: float) -> float:
        """Grid intensity (g CO₂/kWh) in force at ``time_s``."""
        return self.gco2_per_kwh[self._index(time_s)]

    def price_at(self, time_s: float) -> float:
        """Electricity price ($/kWh) in force at ``time_s``."""
        return self.usd_per_kwh[self._index(time_s)]

    def mean_intensity(self) -> float:
        return sum(self.gco2_per_kwh) / len(self.gco2_per_kwh)

    def min_intensity(self) -> float:
        return min(self.gco2_per_kwh)

    def carbon_g(self, joules: float, time_s: float) -> float:
        """Grams of CO₂ for ``joules`` drawn at ``time_s``."""
        return joules / J_PER_KWH * self.intensity_at(time_s)

    def next_below(self, time_s: float, threshold: float,
                   horizon_s: float) -> Optional[float]:
        """Earliest ``t >= time_s`` (within the horizon) whose step has
        intensity ``<= threshold`` — the deferral knob's target time.

        Returns ``time_s`` itself when the current step already
        qualifies, and ``None`` when no step boundary inside
        ``[time_s, time_s + horizon_s]`` does.
        """
        if horizon_s < 0:
            raise ConfigError("deferral horizon must be >= 0")
        if self.intensity_at(time_s) <= threshold:
            return time_s
        t = max(0.0, time_s)
        # First boundary strictly after t, then step-by-step scan.
        boundary = (math.floor(t / self.step_s) + 1) * self.step_s
        while boundary <= time_s + horizon_s:
            if self.intensity_at(boundary) <= threshold:
                return boundary
            boundary += self.step_s
        return None

    # -- constructors ------------------------------------------------------
    @classmethod
    def constant(cls, gco2_per_kwh: float, usd_per_kwh: float = 0.0,
                 name: str = "constant",
                 step_s: float = 900.0) -> "CarbonTrace":
        """A flat grid (one infinite step)."""
        return cls(name=name, step_s=step_s,
                   gco2_per_kwh=(float(gco2_per_kwh),),
                   usd_per_kwh=(float(usd_per_kwh),))

    @classmethod
    def diurnal(
        cls,
        base_gco2: float = 400.0,
        swing: float = 0.5,
        base_usd: float = 0.12,
        price_swing: float = 0.4,
        period_s: float = 240.0,
        n_steps: int = 24,
        noise: float = 0.02,
        seed: int = 0,
        name: str = "diurnal",
    ) -> "CarbonTrace":
        """A day/night sinusoid: dirty evenings, cleaner early hours.

        Intensity is ``base * (1 + swing * sin(2πk/n))`` plus seeded
        relative noise; price follows the same phase (scarcity pricing).
        ``period_s`` compresses the 24 h cycle to something a
        simulation covers, matching ``diurnal_workload``.
        """
        if not 0.0 <= swing < 1.0 or not 0.0 <= price_swing < 1.0:
            raise ConfigError("swings must be in [0, 1)")
        if n_steps < 1 or period_s <= 0:
            raise ConfigError("need >= 1 step over a positive period")
        rng = np.random.default_rng(
            seed ^ (zlib.crc32(name.encode()) & 0xFFFF))
        phase = 2.0 * math.pi * np.arange(n_steps) / n_steps
        jitter = 1.0 + noise * rng.standard_normal(n_steps)
        g = base_gco2 * (1.0 + swing * np.sin(phase)) * np.abs(jitter)
        usd = base_usd * (1.0 + price_swing * np.sin(phase))
        return cls(name=name, step_s=period_s / n_steps,
                   gco2_per_kwh=tuple(round(float(v), 4) for v in g),
                   usd_per_kwh=tuple(round(float(v), 6) for v in usd))

    @classmethod
    def duck_curve(
        cls,
        base_gco2: float = 400.0,
        solar_dip: float = 0.7,
        evening_ramp: float = 0.4,
        base_usd: float = 0.12,
        period_s: float = 240.0,
        n_steps: int = 24,
        noise: float = 0.02,
        seed: int = 0,
        name: str = "duck-curve",
    ) -> "CarbonTrace":
        """The solar duck: a deep midday dip, then a steep evening ramp.

        Intensity is the base level minus a Gaussian solar dip centred
        at mid-period (fraction ``solar_dip`` deep) plus an evening
        ramp peaking at ~80% of the period, with seeded relative noise.
        Price mirrors intensity (solar hours are cheap).
        """
        if not 0.0 <= solar_dip < 1.0 or evening_ramp < 0:
            raise ConfigError("solar_dip in [0, 1) and evening_ramp >= 0")
        if n_steps < 1 or period_s <= 0:
            raise ConfigError("need >= 1 step over a positive period")
        rng = np.random.default_rng(
            seed ^ (zlib.crc32(name.encode()) & 0xFFFF))
        frac = (np.arange(n_steps) + 0.5) / n_steps
        dip = solar_dip * np.exp(-((frac - 0.5) / 0.15) ** 2)
        ramp = evening_ramp * np.exp(-((frac - 0.8) / 0.1) ** 2)
        jitter = 1.0 + noise * rng.standard_normal(n_steps)
        shape = np.maximum(0.05, 1.0 - dip + ramp)
        g = base_gco2 * shape * np.abs(jitter)
        usd = base_usd * shape
        return cls(name=name, step_s=period_s / n_steps,
                   gco2_per_kwh=tuple(round(float(v), 4) for v in g),
                   usd_per_kwh=tuple(round(float(v), 6) for v in usd))

    @classmethod
    def from_csv(cls, path, name: Optional[str] = None) -> "CarbonTrace":
        """Load a trace from CSV: ``time_s,gco2_per_kwh[,usd_per_kwh]``.

        Rows must be time-ordered on a uniform grid starting at 0 (the
        electricityMap-style export shape); price defaults to 0.
        """
        times: List[float] = []
        g: List[float] = []
        usd: List[float] = []
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames is None or \
                    "time_s" not in reader.fieldnames or \
                    "gco2_per_kwh" not in reader.fieldnames:
                raise ConfigError(
                    f"{path}: carbon trace CSV needs time_s and "
                    f"gco2_per_kwh columns")
            for row in reader:
                times.append(float(row["time_s"]))
                g.append(float(row["gco2_per_kwh"]))
                usd.append(float(row.get("usd_per_kwh") or 0.0))
        if len(times) < 1:
            raise ConfigError(f"{path}: carbon trace CSV has no rows")
        if times[0] != 0.0:
            raise ConfigError(f"{path}: carbon trace must start at time 0")
        step = times[1] - times[0] if len(times) > 1 else 900.0
        if step <= 0:
            raise ConfigError(f"{path}: carbon trace must be time-ordered")
        for i, t in enumerate(times):
            if abs(t - i * step) > 1e-9 * max(1.0, abs(t)):
                raise ConfigError(
                    f"{path}: carbon trace steps must be uniform "
                    f"(row {i} at {t}, expected {i * step})")
        import os

        return cls(name=name or os.path.splitext(os.path.basename(path))[0],
                   step_s=step, gco2_per_kwh=tuple(g), usd_per_kwh=tuple(usd))


def carbon_from_samples(samples: Sequence,
                        trace: CarbonTrace) -> Tuple[float, float]:
    """Integrate a power-sample trace against a carbon/price trace.

    Returns ``(grams_co2, usd)``.  Energy per sample interval is the
    same trapezoid the fleet meter uses; the interval is billed at the
    intensity and price in force at its *start*, so two identical runs
    integrate to identical grams (stepwise-left, no float drift from
    boundary splitting).
    """
    grams = 0.0
    usd = 0.0
    for a, b in zip(samples, samples[1:]):
        joules = 0.5 * (a.power_w + b.power_w) * (b.time_s - a.time_s)
        kwh = joules / J_PER_KWH
        grams += kwh * trace.intensity_at(a.time_s)
        usd += kwh * trace.price_at(a.time_s)
    return grams, usd


def defer_arrivals(
    requests: Sequence,
    trace: CarbonTrace,
    max_defer_s: float,
    threshold_frac: float = 0.95,
) -> int:
    """The deferral knob: shift latency-slack arrivals to cleaner hours.

    Each request whose arrival lands in a step dirtier than
    ``threshold_frac * mean intensity`` of the reference ``trace`` is
    pushed to the next step boundary at or below the threshold, bounded
    by ``max_defer_s`` (the latency slack); requests with no clean step
    inside their slack stay put.  Mutates ``arrival_s`` in place and
    returns the number of deferred requests — a pure pre-injection
    transform, so the DES run stays bit-reproducible.
    """
    if max_defer_s < 0:
        raise ConfigError("max_defer_s must be >= 0")
    if max_defer_s == 0:
        return 0
    threshold = threshold_frac * trace.mean_intensity()
    deferred = 0
    for r in requests:
        target = trace.next_below(r.arrival_s, threshold, max_defer_s)
        if target is not None and target > r.arrival_s:
            r.arrival_s = target
            deferred += 1
    return deferred
