"""The ``repro sustain`` sweep: trace × router × cascade × power mode.

One spec describes a small geo-distributed fleet serving one workload;
the sweep replays the *same* deterministic arrival stream under every
combination of carbon-trace scenario, routing policy, cascade mode and
power mode, so the rows differ only in what the sustainability levers
changed.  The headline comparisons the committed bench pins:

- ``carbon-aware`` vs ``energy-aware`` routing on the ``two-region``
  scenario (an efficient device on a dirty grid, a less efficient one
  on a clean grid): at equal goodput the carbon-aware rows burn fewer
  total grams, because the router weights J/token by each region's
  intensity *now* instead of chasing joules alone;
- cascade ``on`` vs ``off``: the SLM-first tier serves most traffic at
  a fraction of the J/token, escalating the calibrated-quality-gap
  share to the LLM tier, for a bounded quality-proxy regression.

Every row's token books are conservation-checked
(:func:`~repro.fairness.accounting.conservation_violations`) and the
grid is content-addressed (:func:`SustainSpec.cache_key` folds
:data:`~repro.sustain.trace.SUSTAIN_VERSION`) and bit-reproducible —
the CI smoke job runs the sweep twice and diffs the CSV byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.cache import payload_fingerprint
from repro.errors import ConfigError, ExperimentError
from repro.sustain.cascade import LLM_TIER, SLM_TIER, CascadeSpec
from repro.sustain.trace import SUSTAIN_VERSION, CarbonTrace, defer_arrivals


def _scenario_uniform(seed: int) -> Tuple[Tuple[str, CarbonTrace], ...]:
    """Every region rides one grid: carbon-aware == energy-aware."""
    return (("global", CarbonTrace.diurnal(seed=seed, name="diurnal")),)


def _scenario_two_region(seed: int) -> Tuple[Tuple[str, CarbonTrace], ...]:
    """A dirty grid and a clean one, declared dirty-first.

    Devices round-robin over the regions in declared order, so the
    fleet's *first* (most efficient) device lands on the dirty grid —
    the placement where energy-aware routing is carbon-blind and
    carbon-aware routing visibly pays off.
    """
    dirty = CarbonTrace.diurnal(base_gco2=520.0, swing=0.25,
                                base_usd=0.16, seed=seed, name="dirty")
    clean = CarbonTrace.duck_curve(base_gco2=110.0, solar_dip=0.5,
                                   evening_ramp=0.3, base_usd=0.08,
                                   seed=seed + 1, name="clean")
    return (("dirty", dirty), ("clean", clean))


#: Named region→trace scenarios (ordered: devices round-robin over the
#: declared region order).
TRACE_SCENARIOS: Dict[str, Callable] = {
    "uniform": _scenario_uniform,
    "two-region": _scenario_two_region,
}

#: Cascade-axis values.
CASCADE_MODES = ("off", "on")


@dataclass(frozen=True)
class SustainSpec:
    """One sustainability sweep configuration (frozen, content-addressable)."""

    #: Device order matters: devices round-robin over the scenario's
    #: regions in declared order, so this default lands the efficient
    #: Orin 64GB on the dirty grid and the 32GB on the clean one — the
    #: placement where energy-aware and carbon-aware routing disagree.
    devices: Tuple[str, ...] = ("jetson-orin-agx-64gb",
                                "jetson-orin-agx-32gb",
                                "jetson-xavier-agx-32gb")
    model: str = "llama"
    precision: str = "fp16"
    slm_model: str = "phi2"
    slm_precision: str = "int8"
    scenarios: Tuple[str, ...] = ("uniform", "two-region")
    routers: Tuple[str, ...] = ("energy-aware", "carbon-aware")
    cascades: Tuple[str, ...] = ("off", "on")
    power_modes: Tuple[str, ...] = ("MAXN",)
    #: Cascade gate strictness (see :class:`~repro.sustain.cascade.CascadeSpec`).
    gate: float = 0.5
    quality_dataset: str = "wikitext2"
    rate_per_s: float = 0.5
    n_requests: int = 24
    input_tokens: int = 48
    output_tokens: int = 96
    #: Deferral knob: latency-slack arrivals may wait up to this long
    #: for a below-threshold carbon step (0 disables deferral).
    defer_max_s: float = 0.0
    defer_threshold_frac: float = 0.95
    max_batch: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        from repro.cluster.router import list_policies
        from repro.hardware import get_device
        from repro.power.modes import get_power_mode

        if not self.devices:
            raise ConfigError("sweep needs at least one device")
        for d in self.devices:
            get_device(d)  # typed error on unknown names
        if (not self.scenarios or not self.routers or not self.cascades
                or not self.power_modes):
            raise ConfigError("sweep axes must be non-empty")
        for s in self.scenarios:
            if s not in TRACE_SCENARIOS:
                raise ConfigError(
                    f"unknown trace scenario {s!r}; "
                    f"known: {', '.join(sorted(TRACE_SCENARIOS))}")
        known = list_policies()
        for r in self.routers:
            if r not in known:
                raise ConfigError(
                    f"unknown routing policy {r!r}; known: {', '.join(known)}")
        for c in self.cascades:
            if c not in CASCADE_MODES:
                raise ConfigError(
                    f"cascade mode must be one of {CASCADE_MODES}, got {c!r}")
        for pm in self.power_modes:
            get_power_mode(pm)  # typed error on unknown names
        if self.rate_per_s <= 0 or self.n_requests < 1:
            raise ConfigError("need a positive rate and >= 1 request")
        if self.defer_max_s < 0:
            raise ConfigError("defer_max_s must be >= 0")
        # Validated in full by CascadeSpec; fail early and typed here.
        self.cascade_spec()

    def cascade_spec(self) -> CascadeSpec:
        """The cascade operating point this sweep escalates with."""
        return CascadeSpec(
            slm_model=self.slm_model, slm_precision=self.slm_precision,
            llm_model=self.model, llm_precision=self.precision,
            gate=self.gate, dataset=self.quality_dataset, seed=self.seed)

    def cache_key(self) -> str:
        """Content address folding the sustainability semantics version."""
        payload = dataclasses.asdict(self)
        payload["sustain_version"] = SUSTAIN_VERSION
        return payload_fingerprint(payload)


@dataclass
class SustainReport:
    """All sweep rows for one spec (deterministic row order)."""

    spec: SustainSpec
    rows: List[Dict] = dataclasses.field(default_factory=list)

    def table(self) -> str:
        """Aligned text table of the rows (stable formatting)."""
        if not self.rows:
            return ""
        cols = list(self.rows[0])
        widths = {c: max(len(c), *(len(str(r[c])) for r in self.rows))
                  for c in cols}
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in self.rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)


def _fleet_for(spec: SustainSpec, scenario: str, router: str,
               cascade: str, power_mode: str):
    """The FleetSpec one sweep point serves with."""
    from repro.cluster import FleetSpec, NodeSpec

    regions = TRACE_SCENARIOS[scenario](spec.seed)
    names = [r for r, _ in regions]
    nodes: List[NodeSpec] = []
    for i, device in enumerate(spec.devices):
        region = names[i % len(names)]
        if cascade == "on" and len(spec.devices) == 1:
            # A single site hosts both tiers: an SLM node takes the
            # first-pass traffic, an LLM node takes the escalations.
            nodes.append(NodeSpec(device, max_batch=spec.max_batch,
                                  region=region, model=spec.slm_model,
                                  precision=spec.slm_precision,
                                  tier=SLM_TIER))
            nodes.append(NodeSpec(device, max_batch=spec.max_batch,
                                  region=region, tier=LLM_TIER))
        elif cascade == "on":
            # Alternate tiers across the fleet (SLM first), keeping the
            # node count — and so the fleet's idle power — identical to
            # the cascade-off rows: the J/token column then isolates
            # what the SLM-first serving itself buys.
            tier = SLM_TIER if i % 2 == 0 else LLM_TIER
            nodes.append(NodeSpec(
                device, max_batch=spec.max_batch, region=region,
                model=spec.slm_model if tier == SLM_TIER else None,
                precision=spec.slm_precision if tier == SLM_TIER else None,
                tier=tier))
        else:
            nodes.append(NodeSpec(device, max_batch=spec.max_batch,
                                  region=region))
    return FleetSpec.of(nodes, model=spec.model, precision=spec.precision,
                        policy=router, traces=dict(regions))


def _run_point(spec: SustainSpec, scenario: str, router: str,
               cascade: str, power_mode: str) -> Dict:
    from repro.cluster import EdgeCluster
    from repro.cluster.workload import as_cluster_requests, poisson_workload
    from repro.fairness.accounting import (build_ledger,
                                           conservation_violations)
    from repro.sustain.cascade import served_by_tier

    fleet = _fleet_for(spec, scenario, router, cascade, power_mode)
    cluster = EdgeCluster.of(fleet)
    # Heterogeneous fleets share one mode ladder; clamp each rung into
    # the device envelope like the autoscaler does (a Xavier cannot
    # bring MAXN's 12 cores online, it runs the rung's clamped twin).
    from repro.cluster.autoscale import clamp_mode_to_device
    from repro.power.modes import get_power_mode

    mode = get_power_mode(power_mode)
    for n in cluster.nodes:
        n.apply_mode(clamp_mode_to_device(mode, n.device))
    requests = as_cluster_requests(poisson_workload(
        spec.rate_per_s, spec.n_requests,
        input_tokens=spec.input_tokens, output_tokens=spec.output_tokens,
        seed=spec.seed))
    deferred = 0
    if spec.defer_max_s > 0:
        # Defer against the dirtiest grid in play: its below-threshold
        # steps are the cleaner hours worth waiting for.
        regions = TRACE_SCENARIOS[scenario](spec.seed)
        ref = max(regions, key=lambda rt: (rt[1].mean_intensity(), rt[0]))[1]
        deferred = defer_arrivals(requests, ref, spec.defer_max_s,
                                  spec.defer_threshold_frac)
    if cascade == "on":
        cas = spec.cascade_spec()
        report = cluster.run_cascade(
            requests, lambda r: cas.should_escalate(r.req_id))
        tiers = served_by_tier(cluster.last_requests)
        quality_delta = cas.quality_delta_pct(tiers[SLM_TIER],
                                              tiers[LLM_TIER])
    else:
        report = cluster.run(requests)
        quality_delta = 0.0
    ledgers = build_ledger(cluster.last_requests)
    meters = sum(n.served_tokens for n in cluster.nodes)
    violations = conservation_violations(ledgers, node_served_tokens=meters)
    if violations:
        raise ExperimentError(
            "token books do not balance: " + "; ".join(violations))
    return {
        "scenario": scenario,
        "router": router,
        "cascade": cascade,
        "power_mode": power_mode,
        "requests": report.n_requests,
        "completed": report.completed,
        "escalations": report.escalations,
        "deferred": deferred,
        "goodput_rps": round(report.goodput_rps, 4),
        "p99_ttft_s": round(report.p99_ttft_s, 3),
        "fleet_energy_j": round(report.fleet_energy_j, 1),
        "j_per_token": round(report.j_per_token, 4),
        "carbon_g": round(report.carbon_g, 4),
        "g_per_token": round(report.g_per_token, 6),
        "energy_cost_usd": round(report.energy_cost_usd, 6),
        "quality_delta_pct": round(quality_delta, 3),
    }


def run_sustain(spec: SustainSpec) -> SustainReport:
    """Run the scenario × router × cascade × power-mode grid."""
    report = SustainReport(spec=spec)
    for scenario in spec.scenarios:
        for power_mode in spec.power_modes:
            for cascade in spec.cascades:
                for router in spec.routers:
                    report.rows.append(_run_point(
                        spec, scenario, router, cascade, power_mode))
    return report


def sustain_rows_csv(report: SustainReport) -> str:
    """The rows as canonical CSV text (the determinism-gate artifact)."""
    if not report.rows:
        return ""
    cols = list(report.rows[0])
    lines = [",".join(cols)]
    for r in report.rows:
        lines.append(",".join(str(r[c]) for c in r))
    return "\n".join(lines) + "\n"
