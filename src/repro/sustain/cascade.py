"""SLM-first cascades: serve small, escalate on a calibrated gate.

A :class:`CascadeSpec` names the small stage (an SLM and/or a lower
precision) and the large stage, plus a ``gate`` strictness knob.  The
escalation decision is *derived from the calibrated quality machinery*
rather than invented: the predicted-perplexity model
(:func:`repro.perplexity.analytical.predicted_perplexity`, built on the
seeded :func:`repro.quant.error.measure_quant_error` matmul-error
measurements and the per-model PPL sensitivity constants) gives both
stages a quality proxy, and the relative gap sets the fraction of
requests the small stage cannot answer adequately:

``p_escalate = min(1, gate * max(0, ppl_slm / ppl_llm - 1))``

Per request the decision is a deterministic uniform draw keyed by
``zlib.crc32`` of the request id (PYTHONHASHSEED-stable, bit-identical
across runs): request difficulty is latent, the calibrated gap decides
*how many* arrivals exceed the SLM's competence, the seeded draw
decides *which*.  On escalation the cluster re-serves the full demand
on the LLM tier — the re-prefill is booked exactly like the sacrifice
path, and the SLM's draft tokens land in the waste ledger.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigError
from repro.models import get_model
from repro.quant.dtypes import Precision

#: Tier labels the cascade stamps onto requests and fleet nodes.
SLM_TIER = "slm"
LLM_TIER = "llm"


@dataclass(frozen=True)
class CascadeSpec:
    """One SLM→LLM cascade operating point.

    ``gate`` scales the calibrated quality gap into an escalation
    probability: 0 never escalates (pure SLM serving), larger values
    escalate a larger share of traffic toward the LLM's quality.
    """

    slm_model: str = "phi2"
    slm_precision: str = "int8"
    llm_model: str = "llama"
    llm_precision: str = "fp16"
    gate: float = 0.5
    dataset: str = "wikitext2"
    seed: int = 0

    def __post_init__(self) -> None:
        get_model(self.slm_model)  # typed error on unknown names
        get_model(self.llm_model)
        Precision.parse(self.slm_precision)
        Precision.parse(self.llm_precision)
        if self.gate < 0:
            raise ConfigError("cascade gate must be >= 0")
        if self.dataset not in ("wikitext2", "longbench"):
            raise ConfigError(
                f"unknown quality dataset {self.dataset!r}; "
                f"known: wikitext2, longbench")

    # -- quality proxies ---------------------------------------------------
    def slm_quality(self) -> float:
        """Predicted perplexity of the small stage (lower is better)."""
        return _predicted_ppl(self.slm_model, self.slm_precision,
                              self.dataset, self.seed)

    def llm_quality(self) -> float:
        """Predicted perplexity of the large stage."""
        return _predicted_ppl(self.llm_model, self.llm_precision,
                              self.dataset, self.seed)

    def escalation_probability(self) -> float:
        """Fraction of traffic the calibrated gap sends to the LLM."""
        gap = max(0.0, self.slm_quality() / self.llm_quality() - 1.0)
        return min(1.0, self.gate * gap)

    def should_escalate(self, req_id: int) -> bool:
        """Deterministic per-request gate decision (crc32-keyed draw)."""
        p = self.escalation_probability()
        if p <= 0.0:
            return False
        rng = np.random.default_rng(
            (self.seed << 20)
            ^ (zlib.crc32(f"cascade:{req_id}".encode()) & 0xFFFFFFFF))
        return float(rng.random()) < p

    def quality_proxy(self, slm_served: int, llm_served: int) -> float:
        """Token-weighted mixture perplexity of one serving outcome."""
        total = slm_served + llm_served
        if total <= 0:
            return self.llm_quality()
        return (slm_served * self.slm_quality()
                + llm_served * self.llm_quality()) / total

    def quality_delta_pct(self, slm_served: int, llm_served: int) -> float:
        """Mixture quality-proxy regression vs. LLM-only serving (%)."""
        llm = self.llm_quality()
        return (self.quality_proxy(slm_served, llm_served) / llm - 1.0) * 100.0


@lru_cache(maxsize=None)
def _predicted_ppl(model: str, precision: str, dataset: str,
                   seed: int) -> float:
    from repro.perplexity.analytical import predicted_perplexity

    # The perplexity anchors key off paper model names; resolve any
    # alias ("phi2" -> "MS-Phi2") through the zoo first.
    arch = get_model(model)
    return predicted_perplexity(arch.name, Precision.parse(precision),
                                dataset, seed=seed)


def served_by_tier(requests) -> dict:
    """Useful (non-escalated, finished) tokens per cascade tier."""
    out = {SLM_TIER: 0, LLM_TIER: 0, None: 0}
    for r in requests:
        if r.finish_s is None or getattr(r, "escalated", False):
            continue
        tier = getattr(r, "tier", None)
        out[tier] = out.get(tier, 0) + r.generated
    return out
