"""Carbon-aware serving and SLM cascades (``repro.sustain``).

The sustainability layer treats *where* and *with what model* a token
is generated as first-class levers, on top of the paper's *how fast
and at what wattage* measurements:

- :class:`~repro.sustain.trace.CarbonTrace` — stepwise grid carbon
  intensity (g CO₂/kWh) and price ($/kWh) series on the DES clock, with
  seeded diurnal / duck-curve generators and CSV loading;
- :class:`~repro.cluster.router.CarbonAwareRouter` (policy name
  ``carbon-aware``) — routes each request to the node with the lowest
  marginal gCO₂/token = predicted J/token × regional intensity now;
- :class:`~repro.sustain.cascade.CascadeSpec` — SLM-first serving with
  a deterministic escalation gate derived from the calibrated
  quantisation-quality machinery;
- :class:`~repro.sustain.sweep.SustainSpec` / :func:`run_sustain` —
  the ``repro sustain`` sweep over trace scenario × router × cascade ×
  power mode, conservation-checked and bit-reproducible.
"""

from repro.sustain.cascade import (LLM_TIER, SLM_TIER, CascadeSpec,
                                   served_by_tier)
from repro.sustain.sweep import (TRACE_SCENARIOS, SustainReport, SustainSpec,
                                 run_sustain, sustain_rows_csv)
from repro.sustain.trace import (SUSTAIN_VERSION, CarbonTrace,
                                 carbon_from_samples, defer_arrivals)

__all__ = [
    "CarbonTrace",
    "CascadeSpec",
    "LLM_TIER",
    "SLM_TIER",
    "SUSTAIN_VERSION",
    "SustainReport",
    "SustainSpec",
    "TRACE_SCENARIOS",
    "carbon_from_samples",
    "defer_arrivals",
    "run_sustain",
    "served_by_tier",
    "sustain_rows_csv",
]
