"""repro — a simulation-based reproduction of *"Understanding the
Performance and Power of LLM Inferencing on Edge Accelerators"*
(Arya & Simmhan, PAISE/IPDPS 2025).

The library models the paper's entire experimental stack — the Jetson
Orin AGX 64GB board (CPU/GPU/LPDDR5, power modes), the PyTorch + HF
serving runtime (prefill/decode roofline, caching allocator, KV cache),
bitsandbytes quantization, the WikiText2/LongBench workloads and the
jtop measurement methodology — and re-runs every table and figure of
the paper against the simulation.

Quick start::

    from repro import ServingEngine, GenerationSpec, get_device, get_model, Precision

    engine = ServingEngine(get_device("jetson-orin-agx-64gb"),
                           get_model("llama"), Precision.FP16)
    result = engine.run(batch_size=32, gen=GenerationSpec(32, 64))
    print(result.as_row())

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
per-table/figure reproductions.
"""

from repro.engine import GenerationSpec, RunResult, ServingEngine
from repro.errors import OutOfMemoryError, ReproError
from repro.hardware import get_device
from repro.models import get_model
from repro.quant import Precision

__version__ = "1.0.0"

__all__ = [
    "GenerationSpec",
    "OutOfMemoryError",
    "Precision",
    "ReproError",
    "RunResult",
    "ServingEngine",
    "__version__",
    "get_device",
    "get_model",
]
