"""repro — a simulation-based reproduction of *"Understanding the
Performance and Power of LLM Inferencing on Edge Accelerators"*
(Arya & Simmhan, PAISE/IPDPS 2025).

The library models the paper's entire experimental stack — the Jetson
Orin AGX 64GB board (CPU/GPU/LPDDR5, power modes), the PyTorch + HF
serving runtime (prefill/decode roofline, caching allocator, KV cache),
bitsandbytes quantization, the WikiText2/LongBench workloads and the
jtop measurement methodology — and re-runs every table and figure of
the paper against the simulation.  On top of the single-board protocol
it adds multi-node cluster serving, deterministic fault injection, a
request-scoped observability layer, and pluggable inference-runtime
backends (``hf-transformers``, ``gguf``, ``paged``) behind
:func:`get_backend` / :func:`list_backends`.

Quick start — one measured configuration, spec-first::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec.for_model("llama", batch_size=32)
    print(run_experiment(spec).as_row())

A paper sweep, the whole study, or a served cluster::

    from repro import (EdgeCluster, FleetSpec, Observer, StudySpec,
                      batch_size_sweep, poisson_workload, run_full_study,
                      write_chrome_trace)

    runs = batch_size_sweep(ExperimentSpec.for_model("llama", n_runs=3))
    study = run_full_study(StudySpec.of(["phi2"], n_runs=1))

    obs = Observer()                           # request-scoped telemetry
    fleet = FleetSpec.of(["jetson-orin-agx-64gb"], model="llama")
    cluster = EdgeCluster.of(fleet, observer=obs)
    cluster.run(poisson_workload(2.0, 50))
    write_chrome_trace("trace.json", obs)      # load in Perfetto

See ``examples/`` for complete scenarios, ``benchmarks/`` for the
per-table/figure reproductions, and ``docs/mechanisms.md`` for how the
simulation works.
"""

# The engine must initialise before the cluster package: cluster.workload
# imports engine.scheduler, whose lazy re-exports point back at cluster.
from repro.engine import GenerationSpec, RunResult, ServingEngine

from repro.backends import (
    RuntimeBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.cluster import (
    ClusterReport,
    EdgeCluster,
    FleetSpec,
    NodeSpec,
    PowerModeAutoscaler,
    SLOSpec,
    bursty_workload,
    diurnal_workload,
    multi_tenant_workload,
    poisson_workload,
    shared_prefix_workload,
)
from repro.core import (
    ExperimentSpec,
    FullStudyResults,
    ResultCache,
    StudySpec,
    batch_quant_power_sweep,
    batch_size_sweep,
    default_precision_for,
    power_mode_sweep,
    quantization_sweep,
    run_experiment,
    run_full_study,
    run_specs,
    runtime_sweep,
    seq_len_sweep,
)
from repro.errors import OutOfMemoryError, ReproError
from repro.fairness import (
    FairnessSpec,
    Interaction,
    TokenThrottle,
    get_fair_scheduler,
    list_fair_schedulers,
    run_fairness,
    session_workload,
)
from repro.faults import ChaosSpec, FaultSchedule, FaultScheduleSpec, run_chaos
from repro.hardware import get_device
from repro.kvtier import (
    KvTierSpec,
    get_kv_policy,
    list_kv_policies,
    run_kvtier,
)
from repro.models import get_model
from repro.plan import (
    FeasibilityEnvelope,
    PlanSpec,
    ServiceRates,
    ValidationSpec,
    plan,
    probe_max_batch,
    probe_max_seq_len,
    run_validation,
)
from repro.obs import (
    MetricsRegistry,
    Observer,
    chrome_trace_json,
    prometheus_text,
    write_chrome_trace,
    write_metrics,
)
from repro.quant import Precision
from repro.reporting import (carbon_frontier, phase_breakdown, plan_table,
                             runtime_comparison)
from repro.sustain import CarbonTrace, CascadeSpec, SustainSpec, run_sustain

__version__ = "1.1.0"

__all__ = [
    "CarbonTrace",
    "CascadeSpec",
    "ChaosSpec",
    "ClusterReport",
    "EdgeCluster",
    "ExperimentSpec",
    "FairnessSpec",
    "FaultSchedule",
    "FaultScheduleSpec",
    "FeasibilityEnvelope",
    "FleetSpec",
    "FullStudyResults",
    "GenerationSpec",
    "Interaction",
    "KvTierSpec",
    "MetricsRegistry",
    "NodeSpec",
    "Observer",
    "OutOfMemoryError",
    "PlanSpec",
    "PowerModeAutoscaler",
    "Precision",
    "ReproError",
    "ResultCache",
    "RunResult",
    "RuntimeBackend",
    "SLOSpec",
    "ServiceRates",
    "ServingEngine",
    "StudySpec",
    "SustainSpec",
    "TokenThrottle",
    "ValidationSpec",
    "__version__",
    "batch_quant_power_sweep",
    "batch_size_sweep",
    "bursty_workload",
    "carbon_frontier",
    "chrome_trace_json",
    "default_precision_for",
    "diurnal_workload",
    "get_backend",
    "get_device",
    "get_fair_scheduler",
    "get_kv_policy",
    "get_model",
    "list_backends",
    "list_fair_schedulers",
    "list_kv_policies",
    "multi_tenant_workload",
    "phase_breakdown",
    "plan",
    "plan_table",
    "poisson_workload",
    "power_mode_sweep",
    "probe_max_batch",
    "probe_max_seq_len",
    "prometheus_text",
    "quantization_sweep",
    "register_backend",
    "run_chaos",
    "run_experiment",
    "run_fairness",
    "run_full_study",
    "run_kvtier",
    "run_specs",
    "run_sustain",
    "run_validation",
    "runtime_comparison",
    "runtime_sweep",
    "seq_len_sweep",
    "session_workload",
    "shared_prefix_workload",
    "write_chrome_trace",
    "write_metrics",
]
