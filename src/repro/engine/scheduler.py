"""Request-level serving simulation: static vs continuous batching.

The paper serves *static* batches (HF ``generate`` over a fixed prompt
set) and points to dedicated inference engines as future work (§4).
This module simulates both disciplines over the same calibrated cost
model, with Poisson request arrivals on the DES:

- :class:`StaticBatchScheduler` — collect up to ``max_batch`` requests
  (or wait out ``max_wait_s``), run the batch to completion, repeat.
  Simple, but late arrivals wait for the whole previous batch.
- :class:`ContinuousBatchScheduler` — iteration-level scheduling in the
  Orca/vLLM style: after every decode step, finished sequences retire
  and queued requests are admitted (paying their prefill) while the KV
  budget allows, so the GPU never idles on a draining batch.

Both report per-request metrics: time-to-first-token, time-per-output-
token, end-to-end latency, plus aggregate percentiles and goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.errors import ExperimentError, OutOfMemoryError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment
from repro.sim.resources import Store


@dataclass
class ServeRequest:
    """One inference request in the arrival stream."""

    req_id: int
    arrival_s: float
    input_tokens: int
    output_tokens: int
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    generated: int = 0
    #: Decode tokens thrown away by preemption or KV-state loss; each
    #: one was produced (and billed) once already and must be redone.
    lost_tokens: int = 0
    #: How many times this request restarted from scratch.
    replays: int = 0
    #: Token-ID prompt (optional).  When present on the paged backend,
    #: the radix prefix cache can share KV blocks with other requests
    #: whose prompts start identically.
    prompt_ids: Optional[tuple] = None
    #: Sim time of the most recent decode token (LRU victim selection).
    last_token_s: Optional[float] = None
    #: Prompt tokens served from the shared-prefix cache (block-aligned).
    prefix_cached_tokens: int = 0

    def reset_for_replay(self) -> None:
        """Drop in-flight state after preemption / KV loss.

        The recompute-style discipline: generated tokens are discarded
        (counted in ``lost_tokens``), the request re-prefills wherever
        it lands next, and the first-token clock keeps its *original*
        value if a token was already streamed — the client saw it.
        """
        if self.generated:
            self.lost_tokens += self.generated
            self.replays += 1
        self.generated = 0
        self.finish_s = None

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Time per output token after the first."""
        if self.finish_s is None or self.first_token_s is None or self.output_tokens < 2:
            return None
        return (self.finish_s - self.first_token_s) / (self.output_tokens - 1)


def __getattr__(name: str):
    # poisson_workload moved to repro.cluster.workload (the shared
    # workload API); re-exported lazily to avoid an import cycle.
    if name == "poisson_workload":
        from repro.cluster.workload import poisson_workload

        return poisson_workload
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ServingReport:
    """Aggregate outcome of one serving simulation."""

    discipline: str
    n_requests: int
    makespan_s: float
    throughput_tok_s: float
    mean_ttft_s: float
    p95_ttft_s: float
    mean_latency_s: float
    p95_latency_s: float
    mean_tpot_s: float
    requests: List[ServeRequest] = field(default_factory=list)

    def as_row(self) -> Dict[str, float]:
        return {
            "discipline": self.discipline,
            "throughput_tok_s": round(self.throughput_tok_s, 1),
            "mean_ttft_s": round(self.mean_ttft_s, 2),
            "p95_ttft_s": round(self.p95_ttft_s, 2),
            "mean_latency_s": round(self.mean_latency_s, 2),
            "p95_latency_s": round(self.p95_latency_s, 2),
            "mean_tpot_s": round(self.mean_tpot_s, 4),
        }


def _report(discipline: str, requests: List[ServeRequest],
            makespan: float) -> ServingReport:
    done = [r for r in requests if r.finish_s is not None]
    if not done:
        raise ExperimentError("no request completed")
    ttfts = np.array([r.ttft_s for r in done])
    lats = np.array([r.latency_s for r in done])
    tpots = np.array([r.tpot_s for r in done if r.tpot_s is not None])
    total_tokens = sum(r.input_tokens + r.output_tokens for r in done)
    return ServingReport(
        discipline=discipline,
        n_requests=len(done),
        makespan_s=makespan,
        throughput_tok_s=total_tokens / makespan,
        mean_ttft_s=float(ttfts.mean()),
        p95_ttft_s=float(np.percentile(ttfts, 95)),
        mean_latency_s=float(lats.mean()),
        p95_latency_s=float(np.percentile(lats, 95)),
        mean_tpot_s=float(tpots.mean()) if tpots.size else 0.0,
        requests=done,
    )


class _SchedulerBase:
    def __init__(
        self,
        device: EdgeDevice,
        arch: TransformerArchitecture,
        precision: Precision,
        max_batch: int = 32,
        params: Optional[EngineCostParams] = None,
        kv_budget_bytes: Optional[int] = None,
    ):
        if max_batch < 1:
            raise ExperimentError("max_batch must be >= 1")
        self.device = device
        self.arch = arch
        self.precision = precision
        self.max_batch = max_batch
        self.timer = StepTimer(arch, device, precision, params)
        if kv_budget_bytes is None:
            kv_budget_bytes = int(
                device.memory.usable_bytes
                - weight_bytes(arch, precision)
                - 1e9  # workspace
            )
        if kv_budget_bytes <= 0:
            raise ExperimentError("model leaves no KV budget on this device")
        self.kv_budget = kv_budget_bytes
        self._kv_per_token = arch.kv_cache_spec().bytes_per_token_per_layer \
            * arch.n_layers

    def kv_bytes(self, tokens: int) -> int:
        return tokens * self._kv_per_token


class StaticBatchScheduler(_SchedulerBase):
    """The paper's discipline: fixed batches run to completion."""

    def __init__(self, *args, max_wait_s: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if max_wait_s < 0:
            raise ExperimentError("max_wait_s must be >= 0")
        self.max_wait_s = max_wait_s

    def serve(self, requests: List[ServeRequest]) -> ServingReport:
        """Run the arrival stream to completion; returns the report."""
        env = Environment()
        queue = Store(env)

        def arrivals():
            for r in sorted(requests, key=lambda x: x.arrival_s):
                delay = r.arrival_s - env.now
                if delay > 0:
                    yield env.timeout(delay)
                yield queue.put(r)

        served = 0

        def server():
            nonlocal served
            while served < len(requests):
                first = yield queue.get()
                batch = [first]
                deadline = env.now + self.max_wait_s
                # Fill the batch until the window closes or it is full.
                while len(batch) < self.max_batch and queue.size > 0:
                    batch.append((yield queue.get()))
                if len(batch) < self.max_batch and env.now < deadline:
                    yield env.timeout(deadline - env.now)
                    while len(batch) < self.max_batch and queue.size > 0:
                        batch.append((yield queue.get()))

                bs = len(batch)
                inp = max(r.input_tokens for r in batch)
                out = max(r.output_tokens for r in batch)
                yield env.timeout(self.timer.prefill(bs, inp).seconds)
                for step in range(out):
                    context = inp + step
                    concat = 2 * self.kv_bytes(bs * context)
                    cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                    yield env.timeout(cost.seconds)
                    for r in batch:
                        if step == 0:
                            r.first_token_s = env.now
                        if step == r.output_tokens - 1 and r.finish_s is None:
                            # Static batching holds finished sequences
                            # until the whole batch drains (padding), but
                            # the client sees its last token here.
                            r.finish_s = env.now
                served += bs

        env.process(arrivals(), name="arrivals")
        done = env.process(server(), name="static-server")
        env.run(until=done)
        return _report("static", requests, env.now)


class ContinuousBatchScheduler(_SchedulerBase):
    """Iteration-level scheduling (Orca/vLLM style).

    With ``paged=True`` admission control runs through the
    :class:`~repro.memsys.paged.PagedKVCache` block manager instead of
    whole-sequence byte reservations: sequences only hold blocks for the
    tokens they have actually produced, so more requests fit the same
    budget (at bounded per-sequence slack).

    ``kv_policy`` selects what happens to preempted sequences (see
    :mod:`repro.kvtier.policy`): the default ``sacrifice`` drops the
    victim's KV and re-prefills later; ``swap`` preserves it on the
    host side and pays a bandwidth-modelled transfer each way.

    ``prefix_cache=True`` (paged only) shares block-aligned KV between
    co-resident sequences whose ``prompt_ids`` start identically, via a
    radix tree over token IDs — the shared-system-prompt scenario.
    """

    def __init__(self, *args, paged: bool = False, block_tokens: int = 16,
                 kv_policy=None, prefix_cache: bool = False,
                 fair_scheduler=None, **kwargs):
        from repro.kvtier.policy import get_kv_policy

        super().__init__(*args, **kwargs)
        self.paged = paged
        self.block_tokens = block_tokens
        self.kv_policy = get_kv_policy(kv_policy)
        #: Queue discipline over waiting arrivals (``repro.fairness``);
        #: the default FCFS is bit-identical to the historical
        #: pop-the-head admission order.
        self.fair_scheduler = fair_scheduler
        if prefix_cache and not paged:
            raise ExperimentError(
                "prefix_cache requires the paged block manager")
        self.prefix_cache = prefix_cache
        #: Populated by :meth:`serve` when the policy preserves KV.
        self.swap_stats = None
        #: Populated by :meth:`serve` when prefix caching is on.
        self.prefix_stats = None

    def serve(self, requests: List[ServeRequest]) -> ServingReport:
        from repro.fairness.scheduler import get_fair_scheduler
        from repro.kvtier.radix import RadixPrefixCache
        from repro.kvtier.swap import HostSwapSpace, swap_bandwidth_bytes_s
        from repro.memsys.allocator import CachingAllocator
        from repro.memsys.paged import PagedKVCache

        fair = get_fair_scheduler(self.fair_scheduler)
        env = Environment()
        pending = sorted(requests, key=lambda x: x.arrival_s)
        arrived: List[ServeRequest] = []
        active: List[ServeRequest] = []
        next_idx = 0

        paged_cache: Optional[PagedKVCache] = None
        if self.paged:
            # Headroom for segment rounding (the allocator's large-pool
            # floor is 20 MiB).
            pool_alloc = CachingAllocator(self.kv_budget + 32 * 2**20)
            paged_cache = PagedKVCache(
                self.arch.kv_cache_spec(), pool_alloc, self.kv_budget,
                block_tokens=self.block_tokens,
            )

        policy = self.kv_policy
        host: Optional[HostSwapSpace] = None
        if policy.preserves_kv:
            host = HostSwapSpace(int(
                policy.host_capacity_frac * self.device.memory.capacity_bytes))
            self.swap_stats = host.stats
        swap_bw = swap_bandwidth_bytes_s(self.device)

        radix: Optional[RadixPrefixCache] = None
        prompts: Dict[int, tuple] = {}
        if self.prefix_cache:
            radix = RadixPrefixCache(
                self.block_tokens,
                paged_cache.bytes_per_block,
            )
            self.prefix_stats = radix.stats

        def kv_in_use() -> int:
            return sum(
                self.kv_bytes(r.input_tokens + r.generated) for r in active
            )

        def resident_tokens(r: ServeRequest) -> int:
            """Tokens whose KV must be resident for ``r`` to decode —
            prompt plus any preserved (swapped) progress."""
            return r.input_tokens + r.generated

        def can_admit(r: ServeRequest) -> bool:
            if paged_cache is not None:
                # Paged: a prompt that needs exactly the remaining
                # blocks fits — decode growth preempts later if needed.
                needed = paged_cache.blocks_needed(resident_tokens(r))
                limit = int(paged_cache.stats.total_blocks * policy.trigger)
                return (needed <= paged_cache.free_blocks
                        and paged_cache.stats.used_blocks + needed <= limit)
            # Contiguous: reserve the whole final sequence up front.
            return kv_in_use() + self.kv_bytes(
                r.input_tokens + r.output_tokens
            ) <= policy.effective_budget(self.kv_budget)

        def shared_prefix_blocks(r: ServeRequest):
            """Radix lookup: physical blocks covering ``r``'s prompt
            head, donated by a co-resident sequence (or none)."""
            if radix is None or r.prompt_ids is None:
                return [], 0
            hit = radix.insert(r.req_id, r.prompt_ids, env.now)
            prompts[r.req_id] = tuple(r.prompt_ids)
            if not hit:
                return [], 0
            # Any live sequence pinning that path holds the blocks.
            for other in active:
                ids = prompts.get(other.req_id)
                if ids and ids[:hit] == tuple(r.prompt_ids)[:hit]:
                    n = hit // self.block_tokens
                    return paged_cache.prefix_blocks(other.req_id, n), hit
            return [], 0

        def drop_radix(req_id: int) -> None:
            if radix is not None and radix.holds(req_id):
                radix.release(req_id)
                # Engine-level blocks die with their sequences, so the
                # tree only keeps live-backed (pinned) paths.
                radix.reclaim(float("inf"), env.now)
            prompts.pop(req_id, None)

        #: Preempted requests wait here until a sequence finishes —
        #: re-admitting them immediately would steal the very blocks the
        #: running sequences need to grow (admission/preemption thrash).
        parked: List[ServeRequest] = []

        def server():
            nonlocal next_idx
            finished = 0
            while finished < len(pending):
                # Pull arrivals up to the current time.
                while next_idx < len(pending) and pending[next_idx].arrival_s <= env.now:
                    arrived.append(pending[next_idx])
                    fair.on_arrival(pending[next_idx], env.now)
                    next_idx += 1
                # Admit while capacity allows; newly admitted pay
                # prefill (minus any shared prefix), swapped returnees
                # pay their swap-in transfer instead.  The fair
                # scheduler picks who goes next (FCFS: the head).
                admitted = []
                while arrived and len(active) < self.max_batch:
                    pick = fair.select_next(arrived)
                    if not can_admit(arrived[pick]):
                        break
                    r = arrived.pop(pick)
                    fair.on_dequeue(r)
                    active.append(r)
                    admitted.append(r)
                    if paged_cache is not None:
                        shared, hit = ([], 0)
                        if not (host is not None and host.holds(r.req_id)):
                            shared, hit = shared_prefix_blocks(r)
                        r.prefix_cached_tokens = hit
                        paged_cache.add_sequence(
                            r.req_id, resident_tokens(r),
                            shared_blocks=shared)
                for r in admitted:
                    if host is not None and host.holds(r.req_id):
                        _, seconds = host.swap_in(r.req_id, swap_bw)
                        yield env.timeout(seconds)
                    else:
                        charged = max(1, r.input_tokens
                                      - r.prefix_cached_tokens)
                        yield env.timeout(self.timer.prefill(
                            1, charged).seconds)
                        fair.on_tokens_served(r, prefill_tokens=charged)

                if not active:
                    # Idle: jump to the next arrival.
                    if next_idx < len(pending):
                        yield env.timeout(
                            max(0.0, pending[next_idx].arrival_s - env.now)
                        )
                        continue
                    break

                bs = len(active)
                context = max(r.input_tokens + r.generated for r in active)
                concat = 2 * self.kv_bytes(bs * context)
                cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                yield env.timeout(cost.seconds)

                pending_transfer_s = [0.0]

                def preempt_one(keep: ServeRequest) -> bool:
                    """Policy-driven preemption: the policy picks the
                    victim; ``swap`` preserves its KV on the host (a
                    bandwidth-billed transfer), ``sacrifice`` drops it
                    for a later full re-prefill.  The victim parks until
                    a sequence finishes."""
                    victim = policy.select_victim(active, keep=keep)
                    if victim is None:
                        return False
                    paged_cache.release_sequence(victim.req_id)
                    drop_radix(victim.req_id)
                    active.remove(victim)
                    nbytes = self.kv_bytes(resident_tokens(victim))
                    if host is not None and host.can_hold(nbytes):
                        pending_transfer_s[0] += host.swap_out(
                            victim.req_id, nbytes, swap_bw)
                    else:
                        if host is not None:
                            host.stats.sacrifices += 1
                        victim.reset_for_replay()
                    parked.append(victim)
                    return True

                for r in list(active):
                    if r not in active:
                        continue  # preempted within this iteration
                    r.generated += 1
                    r.last_token_s = env.now
                    fair.on_tokens_served(r, decode_tokens=1)
                    if paged_cache is not None:
                        while True:
                            try:
                                paged_cache.append_token(r.req_id)
                                break
                            except OutOfMemoryError:
                                if not preempt_one(r):
                                    raise
                    if r.generated == 1 and r.first_token_s is None:
                        r.first_token_s = env.now
                    if r.generated >= r.output_tokens:
                        r.finish_s = env.now
                        active.remove(r)
                        finished += 1
                        if paged_cache is not None:
                            paged_cache.release_sequence(r.req_id)
                            drop_radix(r.req_id)
                        if parked:
                            # Freed capacity: let preempted work retry,
                            # ahead of fresh arrivals.
                            arrived[0:0] = parked
                            for p in parked:
                                fair.on_arrival(p, env.now)
                            parked.clear()
                if pending_transfer_s[0]:
                    # The bus time spent writing victims' KV host-side.
                    yield env.timeout(pending_transfer_s[0])

        done = env.process(server(), name="continuous-server")
        env.run(until=done)
        return _report("continuous-paged" if self.paged else "continuous",
                       requests, env.now)
