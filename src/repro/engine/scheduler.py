"""Request-level serving simulation: static vs continuous batching.

The paper serves *static* batches (HF ``generate`` over a fixed prompt
set) and points to dedicated inference engines as future work (§4).
This module simulates both disciplines over the same calibrated cost
model, with Poisson request arrivals on the DES:

- :class:`StaticBatchScheduler` — collect up to ``max_batch`` requests
  (or wait out ``max_wait_s``), run the batch to completion, repeat.
  Simple, but late arrivals wait for the whole previous batch.
- :class:`ContinuousBatchScheduler` — iteration-level scheduling in the
  Orca/vLLM style: after every decode step, finished sequences retire
  and queued requests are admitted (paying their prefill) while the KV
  budget allows, so the GPU never idles on a draining batch.

Both report per-request metrics: time-to-first-token, time-per-output-
token, end-to-end latency, plus aggregate percentiles and goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.errors import ExperimentError, OutOfMemoryError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment
from repro.sim.resources import Store


@dataclass
class ServeRequest:
    """One inference request in the arrival stream."""

    req_id: int
    arrival_s: float
    input_tokens: int
    output_tokens: int
    first_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    generated: int = 0
    #: Decode tokens thrown away by preemption or KV-state loss; each
    #: one was produced (and billed) once already and must be redone.
    lost_tokens: int = 0
    #: How many times this request restarted from scratch.
    replays: int = 0

    def reset_for_replay(self) -> None:
        """Drop in-flight state after preemption / KV loss.

        The recompute-style discipline: generated tokens are discarded
        (counted in ``lost_tokens``), the request re-prefills wherever
        it lands next, and the first-token clock keeps its *original*
        value if a token was already streamed — the client saw it.
        """
        if self.generated:
            self.lost_tokens += self.generated
            self.replays += 1
        self.generated = 0
        self.finish_s = None

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> Optional[float]:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Time per output token after the first."""
        if self.finish_s is None or self.first_token_s is None or self.output_tokens < 2:
            return None
        return (self.finish_s - self.first_token_s) / (self.output_tokens - 1)


def __getattr__(name: str):
    # poisson_workload moved to repro.cluster.workload (the shared
    # workload API); re-exported lazily to avoid an import cycle.
    if name == "poisson_workload":
        from repro.cluster.workload import poisson_workload

        return poisson_workload
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ServingReport:
    """Aggregate outcome of one serving simulation."""

    discipline: str
    n_requests: int
    makespan_s: float
    throughput_tok_s: float
    mean_ttft_s: float
    p95_ttft_s: float
    mean_latency_s: float
    p95_latency_s: float
    mean_tpot_s: float
    requests: List[ServeRequest] = field(default_factory=list)

    def as_row(self) -> Dict[str, float]:
        return {
            "discipline": self.discipline,
            "throughput_tok_s": round(self.throughput_tok_s, 1),
            "mean_ttft_s": round(self.mean_ttft_s, 2),
            "p95_ttft_s": round(self.p95_ttft_s, 2),
            "mean_latency_s": round(self.mean_latency_s, 2),
            "p95_latency_s": round(self.p95_latency_s, 2),
            "mean_tpot_s": round(self.mean_tpot_s, 4),
        }


def _report(discipline: str, requests: List[ServeRequest],
            makespan: float) -> ServingReport:
    done = [r for r in requests if r.finish_s is not None]
    if not done:
        raise ExperimentError("no request completed")
    ttfts = np.array([r.ttft_s for r in done])
    lats = np.array([r.latency_s for r in done])
    tpots = np.array([r.tpot_s for r in done if r.tpot_s is not None])
    total_tokens = sum(r.input_tokens + r.output_tokens for r in done)
    return ServingReport(
        discipline=discipline,
        n_requests=len(done),
        makespan_s=makespan,
        throughput_tok_s=total_tokens / makespan,
        mean_ttft_s=float(ttfts.mean()),
        p95_ttft_s=float(np.percentile(ttfts, 95)),
        mean_latency_s=float(lats.mean()),
        p95_latency_s=float(np.percentile(lats, 95)),
        mean_tpot_s=float(tpots.mean()) if tpots.size else 0.0,
        requests=done,
    )


class _SchedulerBase:
    def __init__(
        self,
        device: EdgeDevice,
        arch: TransformerArchitecture,
        precision: Precision,
        max_batch: int = 32,
        params: Optional[EngineCostParams] = None,
        kv_budget_bytes: Optional[int] = None,
    ):
        if max_batch < 1:
            raise ExperimentError("max_batch must be >= 1")
        self.device = device
        self.arch = arch
        self.precision = precision
        self.max_batch = max_batch
        self.timer = StepTimer(arch, device, precision, params)
        if kv_budget_bytes is None:
            kv_budget_bytes = int(
                device.memory.usable_bytes
                - weight_bytes(arch, precision)
                - 1e9  # workspace
            )
        if kv_budget_bytes <= 0:
            raise ExperimentError("model leaves no KV budget on this device")
        self.kv_budget = kv_budget_bytes
        self._kv_per_token = arch.kv_cache_spec().bytes_per_token_per_layer \
            * arch.n_layers

    def kv_bytes(self, tokens: int) -> int:
        return tokens * self._kv_per_token


class StaticBatchScheduler(_SchedulerBase):
    """The paper's discipline: fixed batches run to completion."""

    def __init__(self, *args, max_wait_s: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if max_wait_s < 0:
            raise ExperimentError("max_wait_s must be >= 0")
        self.max_wait_s = max_wait_s

    def serve(self, requests: List[ServeRequest]) -> ServingReport:
        """Run the arrival stream to completion; returns the report."""
        env = Environment()
        queue = Store(env)

        def arrivals():
            for r in sorted(requests, key=lambda x: x.arrival_s):
                delay = r.arrival_s - env.now
                if delay > 0:
                    yield env.timeout(delay)
                yield queue.put(r)

        served = 0

        def server():
            nonlocal served
            while served < len(requests):
                first = yield queue.get()
                batch = [first]
                deadline = env.now + self.max_wait_s
                # Fill the batch until the window closes or it is full.
                while len(batch) < self.max_batch and queue.size > 0:
                    batch.append((yield queue.get()))
                if len(batch) < self.max_batch and env.now < deadline:
                    yield env.timeout(deadline - env.now)
                    while len(batch) < self.max_batch and queue.size > 0:
                        batch.append((yield queue.get()))

                bs = len(batch)
                inp = max(r.input_tokens for r in batch)
                out = max(r.output_tokens for r in batch)
                yield env.timeout(self.timer.prefill(bs, inp).seconds)
                for step in range(out):
                    context = inp + step
                    concat = 2 * self.kv_bytes(bs * context)
                    cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                    yield env.timeout(cost.seconds)
                    for r in batch:
                        if step == 0:
                            r.first_token_s = env.now
                        if step == r.output_tokens - 1 and r.finish_s is None:
                            # Static batching holds finished sequences
                            # until the whole batch drains (padding), but
                            # the client sees its last token here.
                            r.finish_s = env.now
                served += bs

        env.process(arrivals(), name="arrivals")
        done = env.process(server(), name="static-server")
        env.run(until=done)
        return _report("static", requests, env.now)


class ContinuousBatchScheduler(_SchedulerBase):
    """Iteration-level scheduling (Orca/vLLM style).

    With ``paged=True`` admission control runs through the
    :class:`~repro.memsys.paged.PagedKVCache` block manager instead of
    whole-sequence byte reservations: sequences only hold blocks for the
    tokens they have actually produced, so more requests fit the same
    budget (at bounded per-sequence slack).
    """

    def __init__(self, *args, paged: bool = False, block_tokens: int = 16,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.paged = paged
        self.block_tokens = block_tokens

    def serve(self, requests: List[ServeRequest]) -> ServingReport:
        from repro.memsys.allocator import CachingAllocator
        from repro.memsys.paged import PagedKVCache

        env = Environment()
        pending = sorted(requests, key=lambda x: x.arrival_s)
        arrived: List[ServeRequest] = []
        active: List[ServeRequest] = []
        next_idx = 0

        paged_cache: Optional[PagedKVCache] = None
        if self.paged:
            # Headroom for segment rounding (the allocator's large-pool
            # floor is 20 MiB).
            pool_alloc = CachingAllocator(self.kv_budget + 32 * 2**20)
            paged_cache = PagedKVCache(
                self.arch.kv_cache_spec(), pool_alloc, self.kv_budget,
                block_tokens=self.block_tokens,
            )

        def kv_in_use() -> int:
            return sum(
                self.kv_bytes(r.input_tokens + r.generated) for r in active
            )

        def can_admit(r: ServeRequest) -> bool:
            if paged_cache is not None:
                # Paged: only the prompt needs blocks now; decode grows
                # block by block.
                return paged_cache.can_admit(r.input_tokens + 1)
            # Contiguous: reserve the whole final sequence up front.
            return kv_in_use() + self.kv_bytes(
                r.input_tokens + r.output_tokens
            ) <= self.kv_budget

        #: Preempted requests wait here until a sequence finishes —
        #: re-admitting them immediately would steal the very blocks the
        #: running sequences need to grow (admission/preemption thrash).
        parked: List[ServeRequest] = []

        def server():
            nonlocal next_idx
            finished = 0
            while finished < len(pending):
                # Pull arrivals up to the current time.
                while next_idx < len(pending) and pending[next_idx].arrival_s <= env.now:
                    arrived.append(pending[next_idx])
                    next_idx += 1
                # Admit while capacity allows; newly admitted pay prefill.
                admitted = []
                while (arrived and len(active) < self.max_batch
                       and can_admit(arrived[0])):
                    r = arrived.pop(0)
                    active.append(r)
                    admitted.append(r)
                    if paged_cache is not None:
                        paged_cache.add_sequence(r.req_id, r.input_tokens)
                for r in admitted:
                    yield env.timeout(
                        self.timer.prefill(1, r.input_tokens).seconds
                    )

                if not active:
                    # Idle: jump to the next arrival.
                    if next_idx < len(pending):
                        yield env.timeout(
                            max(0.0, pending[next_idx].arrival_s - env.now)
                        )
                        continue
                    break

                bs = len(active)
                context = max(r.input_tokens + r.generated for r in active)
                concat = 2 * self.kv_bytes(bs * context)
                cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                yield env.timeout(cost.seconds)

                def preempt_youngest(keep: ServeRequest) -> bool:
                    """Recompute-style preemption: evict the youngest
                    other sequence (ties broken by admission order, so
                    the head of the batch always makes progress) into the
                    parked list until something finishes."""
                    victims = [a for a in active if a is not keep]
                    if not victims:
                        return False
                    victim = max(victims,
                                 key=lambda a: (a.arrival_s, active.index(a)))
                    paged_cache.release_sequence(victim.req_id)
                    active.remove(victim)
                    victim.reset_for_replay()
                    parked.append(victim)
                    return True

                for r in list(active):
                    if r not in active:
                        continue  # preempted within this iteration
                    r.generated += 1
                    if paged_cache is not None:
                        while True:
                            try:
                                paged_cache.append_token(r.req_id)
                                break
                            except OutOfMemoryError:
                                if not preempt_youngest(r):
                                    raise
                    if r.generated == 1 and r.first_token_s is None:
                        r.first_token_s = env.now
                    if r.generated >= r.output_tokens:
                        r.finish_s = env.now
                        active.remove(r)
                        finished += 1
                        if paged_cache is not None:
                            paged_cache.release_sequence(r.req_id)
                        if parked:
                            # Freed capacity: let preempted work retry,
                            # ahead of fresh arrivals.
                            arrived[0:0] = parked
                            parked.clear()

        done = env.process(server(), name="continuous-server")
        env.run(until=done)
        return _report("continuous-paged" if self.paged else "continuous",
                       requests, env.now)
