"""The serving engine: public API tying device, model, memory and power.

Typical use::

    from repro.engine import ServingEngine, GenerationSpec
    from repro.hardware import get_device
    from repro.models import get_model
    from repro.quant import Precision

    engine = ServingEngine(get_device("jetson-orin-agx-64gb"),
                           get_model("llama"), Precision.FP16)
    res = engine.run(batch_size=32, gen=GenerationSpec(32, 64))
    print(res.mean_latency_s, res.throughput_tok_s, res.median_power_w)

Each :meth:`run` applies the paper's measurement protocol: one warm-up
batch, then ``n_runs`` measured batches; latency/throughput are averaged
across runs, memory milestones come from the tracker, power is the
median of the 2-second samples and energy the trapezoidal integral.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.kernels import EngineCostParams
from repro.engine.request import BatchRequest, BatchResult, GenerationSpec
from repro.engine.state import EngineState
from repro.errors import ExperimentError, OutOfMemoryError
from repro.hardware.device import EdgeDevice
from repro.memsys.allocator import CachingAllocator
from repro.memsys.tracker import MemoryTracker
from repro.models.architecture import TransformerArchitecture
from repro.obs import kinds
from repro.obs.span import NULL_OBSERVER, Observer
from repro.power.model import PowerModel
from repro.power.modes import PowerMode, apply_power_mode
from repro.quant.dtypes import Precision
from repro.sim.environment import Environment
from repro.sim.tracing import Trace
from repro.telemetry.energy import median_power_w, trapezoid_energy_j
from repro.telemetry.sampler import PowerSampler


@dataclass
class RunResult:
    """Aggregated outcome of one measured configuration."""

    model: str
    device: str
    precision: Precision
    batch_size: int
    gen: GenerationSpec
    power_mode: str
    #: Dataset label of the experiment spec ("" when the engine is
    #: driven directly without a spec).
    workload: str = ""
    #: Inference-runtime backend that produced the numbers.
    runtime: str = "hf-transformers"
    oom: bool = False
    mean_latency_s: float = 0.0
    throughput_tok_s: float = 0.0
    model_gb: float = 0.0
    incremental_gb: float = 0.0
    total_gb: float = 0.0
    median_power_w: float = 0.0
    energy_j: float = 0.0
    batches: List[BatchResult] = field(default_factory=list)

    def as_row(self) -> dict:
        """Flat dict for tables/CSV.

        Includes ``device`` and ``workload`` so rows from mixed-device
        sweeps (device ladders, cluster fleets) and mixed-dataset runs
        stay distinguishable in one CSV.
        """
        return {
            "model": self.model,
            "device": self.device,
            "workload": self.workload,
            "runtime": self.runtime,
            "precision": self.precision.value,
            "power_mode": self.power_mode,
            "batch_size": self.batch_size,
            "seq_len": self.gen.total_tokens,
            "oom": self.oom,
            "ram_gb": round(self.total_gb, 2),
            "latency_s": round(self.mean_latency_s, 2),
            "throughput_tok_s": round(self.throughput_tok_s, 2),
            "power_w": round(self.median_power_w, 1),
            "energy_j": round(self.energy_j, 1),
        }

    def __setstate__(self, state: dict) -> None:
        # Results pickled before the runtime axis existed load with the
        # (only possible) hf default.
        state.setdefault("runtime", "hf-transformers")
        self.__dict__.update(state)


class ServingEngine:
    """A loaded model on a device, ready to serve batches.

    Construction simulates the model load (weights through the caching
    allocator); it raises :class:`OutOfMemoryError` if the weights do
    not fit, matching the paper's OOM cells for FP32 Mistral and
    FP32/FP16 Deepseek on the 64 GB board.
    """

    def __init__(
        self,
        device: EdgeDevice,
        arch: TransformerArchitecture,
        precision: Precision,
        params: Optional[EngineCostParams] = None,
        kv_mode: Optional[str] = None,
        power_model: Optional[PowerModel] = None,
        sample_period_s: float = 2.0,
        fast_forward: bool = True,
        observer: Optional[Observer] = None,
        backend=None,
    ):
        # Imported lazily: calibration constants are themselves expressed
        # as EngineCostParams, and backends build on the engine modules,
        # so module-level imports would be circular.
        from repro.backends.base import resolve_backend
        from repro.calibration.constants import CALIBRATED_COST_PARAMS

        if kv_mode is not None:
            warnings.warn(
                "ServingEngine(kv_mode=...) is deprecated; the KV policy "
                "is a runtime-backend concern — pass "
                "backend=get_backend('hf-transformers', kv_mode=...) "
                "instead",
                DeprecationWarning, stacklevel=2)
            if backend is not None:
                raise ExperimentError(
                    "pass either backend= or the deprecated kv_mode= "
                    "keyword, not both")
            from repro.backends.registry import get_backend

            backend = get_backend("hf-transformers", kv_mode=kv_mode)
        self.backend = resolve_backend(backend)
        self.device = device
        self.arch = arch
        self.precision = precision
        self.params = params or CALIBRATED_COST_PARAMS
        #: Back-compat view; only meaningful for the hf backend.
        self.kv_mode = getattr(self.backend, "kv_mode", None)
        self.power_model = power_model or PowerModel()
        self.sample_period_s = sample_period_s
        self.fast_forward = fast_forward

        # GC tuning mirrors a caching allocator under moderate pressure:
        # the fraction threshold bounds churn relative to live tensors,
        # and the dead cap releases the stranded segments that lock-step
        # growing KV streams leave behind 2 MiB boundary crossings —
        # keeping incremental peaks in line with the paper's appendix.
        self.allocator = CachingAllocator(
            device.memory.usable_bytes, gc_threshold=0.35,
            dead_cap_bytes=int(2e9),
        )
        self.tracker = MemoryTracker(self.allocator)
        #: Observability sink: spans/metrics land here when enabled.
        self.obs = observer if observer is not None else NULL_OBSERVER
        #: Legacy kind-filtered view; shares the observer when tracing
        #: is on so span records surface through the old API too.
        self.trace = Trace(self.obs if self.obs.enabled else None)
        self.timer = self.backend.make_timer(arch, device, precision,
                                             self.params)

        self.tracker.mark_baseline()
        self._load_weights()
        self.tracker.mark_model_loaded()

    def _load_weights(self) -> None:
        """Allocate weights the way the backend's loader lays them out."""
        self.backend.load_weights(self.allocator, self.arch, self.precision)

    # -- public ------------------------------------------------------------
    def run(
        self,
        batch_size: int,
        gen: GenerationSpec,
        n_runs: int = 5,
        warmup: int = 1,
        power_mode: Optional[PowerMode] = None,
    ) -> RunResult:
        """Measure one configuration with the paper's protocol."""
        if n_runs < 1 or warmup < 0:
            raise ExperimentError("need n_runs >= 1 and warmup >= 0")
        if power_mode is not None:
            apply_power_mode(self.device, power_mode)
        mode_name = power_mode.name if power_mode is not None else "MAXN"

        # Peaks are per-run: an engine reused across configurations must
        # not report an earlier, larger configuration's high-water mark.
        self.allocator.reset_peaks()

        request = BatchRequest(batch_size=batch_size, gen=gen)
        executor = self.backend.make_executor(
            self.timer,
            self.allocator,
            self.arch,
            self.precision,
            batch_size,
            fast_forward=self.fast_forward,
        )

        env = Environment()
        state = EngineState()
        obs = self.obs
        obs.bind(env)
        sampler = PowerSampler(
            env, self.device, self.power_model, state,
            period_s=self.sample_period_s, obs=obs, obs_track="engine",
        )
        sampler.start()

        measure_start = [0.0]

        def session():
            batches: List[BatchResult] = []
            for i in range(warmup + n_runs):
                if i == warmup:
                    measure_start[0] = env.now
                batch_span = obs.begin(kinds.BATCH, cat=kinds.CAT_ENGINE,
                                       track="engine", index=i,
                                       warmup=i < warmup)
                res = yield from executor.run(env, request, state,
                                              obs=obs, track="engine")
                obs.end(batch_span, oom=res.oom)
                if obs.enabled:
                    # TTFT is the prefill phase in the static-batch
                    # protocol; decode is everything after it.
                    m = obs.metrics
                    m.counter("batches_total").inc()
                    if res.oom:
                        m.counter("oom_total").inc()
                    else:
                        m.histogram("ttft_s").observe(res.prefill_s)
                        m.histogram("decode_s").observe(res.decode_s)
                        m.counter("tokens_total").inc(
                            request.batch_size * gen.output_tokens)
                if i >= warmup or res.oom:
                    # OOM during warm-up still counts: the configuration
                    # is infeasible, as in the paper's OOM cells.
                    batches.append(res)
                if res.oom:
                    break
            sampler.stop()
            return batches

        done = env.process(session(), name="measure-session")
        batches: List[BatchResult] = env.run(until=done)

        result = RunResult(
            model=self.arch.name,
            device=self.device.name,
            precision=self.precision,
            batch_size=batch_size,
            gen=gen,
            power_mode=mode_name,
            runtime=self.backend.name,
            batches=batches,
        )
        self.tracker.finish()
        result.model_gb = self.tracker.model_bytes / 1e9
        result.incremental_gb = self.tracker.incremental_peak_bytes / 1e9
        result.total_gb = self.tracker.total_peak_bytes / 1e9

        if any(b.oom for b in batches):
            result.oom = True
            return result

        ok = [b for b in batches if not b.oom]
        result.mean_latency_s = sum(b.latency_s for b in ok) / len(ok)
        result.throughput_tok_s = sum(b.throughput_tok_s for b in ok) / len(ok)
        # Energy/power cover only the measured batches, not the warm-up.
        samples = [s for s in sampler.samples if s.time_s >= measure_start[0]]
        if len(samples) >= 2:
            result.median_power_w = median_power_w(samples)
            result.energy_j = trapezoid_energy_j(samples)
        else:
            # Short runs: fall back to instantaneous estimates.
            watts = self.power_model.power_w(self.device, state.util)
            result.median_power_w = watts
            result.energy_j = watts * env.now
        return result
