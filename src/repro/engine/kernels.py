"""Per-step cost model: time and utilization of prefill/decode iterations.

The decode step of batched LLM inference decomposes into

``t_gpu = (t_mem^p + t_comp^p)^(1/p) + n_kernels * kernel_floor``
``t_step = t_gpu + t_host``

where

- ``t_mem`` streams the weights once, gathers the KV cache (strided
  bandwidth), pays the DynamicCache concat copy, and moves activations;
- ``t_comp`` is dense math at the precision's effective FLOP rate plus
  the quantization kernel overheads of
  :class:`~repro.quant.overhead.QuantKernelModel`;
- the p-norm models partial compute/memory overlap (p=inf would be a
  perfect-overlap roofline; measured Jetson behaviour sits near p=2);
- the kernel floor is the minimum execution time of a launched kernel
  on the iGPU (occupancy ramp + launch), dominant for small models;
- ``t_host`` is the CPU-side HF ``generate`` loop (Python dispatch,
  logits post-processing, sampling), scaling inversely with CPU clock
  and linearly with batch size — and, being serial, indifferent to the
  number of online cores (which is exactly the paper's PM-E/F finding).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.models.flops import (
    PhaseCounts,
    _activation_bytes as _activation_bytes_of,
    _matmul_params as _matmul_params_of,
    decode_step_counts,
    prefill_counts,
)
from repro.models.footprint import weight_bytes
from repro.quant.dtypes import Precision
from repro.quant.overhead import QuantKernelModel


@dataclass(frozen=True)
class EngineCostParams:
    """Calibratable constants of the cost model.

    Defaults are the values fitted against the paper's appendix tables
    (see :mod:`repro.calibration`); ``bw_scale``/``flops_scale`` let the
    fit trim the device's spec-derived capabilities without touching the
    hardware presets.
    """

    #: p-norm exponent for memory/compute overlap.
    overlap_p: float = 2.0
    #: Minimum execution seconds per launched kernel at max clocks.
    kernel_floor_s: float = 42e-6
    #: Host-side seconds per forward step at max CPU clock.
    host_step_s: float = 4.0e-3
    #: Additional host-side seconds per sequence per step.
    host_per_seq_s: float = 0.30e-3
    #: Multiplier on streaming bandwidth (calibration trim).
    bw_scale: float = 1.0
    #: Multiplier on KV-path traffic (cache reads + GQA expansion).
    kv_traffic_scale: float = 1.0
    #: Extra KV-path traffic multiplier when running INT8 (bitsandbytes
    #: attention inserts dtype-conversion copies around the cache).
    int8_kv_penalty: float = 2.0
    #: Multiplier on effective FLOP rate.
    flops_scale: float = 1.0
    #: GEMM efficiency saturates with tokens in flight:
    #: ``eff = n / (n + gemm_sat_tokens)``.
    gemm_sat_tokens: float = 4.0
    #: Quantization kernel cost model.
    quant: QuantKernelModel = field(default_factory=QuantKernelModel)

    def __post_init__(self) -> None:
        if self.overlap_p < 1.0:
            raise ConfigError("overlap_p must be >= 1")
        for name in ("kernel_floor_s", "host_step_s", "host_per_seq_s",
                     "bw_scale", "kv_traffic_scale", "int8_kv_penalty",
                     "flops_scale", "gemm_sat_tokens"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def with_(self, **kwargs) -> "EngineCostParams":
        """Copy with overrides (used by the calibration fitter)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class StepCost:
    """Time and resource view of one engine step."""

    seconds: float
    t_mem: float
    t_comp: float
    t_kernel_floor: float
    t_host: float
    bytes_moved: float
    #: Fraction of wall time the GPU executes compute-limited work.
    gpu_compute_frac: float
    #: Fraction of wall time any kernel is resident.
    gpu_busy_frac: float
    #: Achieved DRAM bandwidth / peak at current clock.
    mem_bw_frac: float
    #: Average busy CPU cores.
    cpu_cores_active: float


@dataclass(frozen=True)
class DecodeRun:
    """Per-token cost arrays for a run of consecutive decode steps.

    Produced by :meth:`StepTimer.decode_run`; token ``j`` covers the
    decode iteration at context length ``ctx_start + j``.  Every element
    is bit-identical to the corresponding field of the scalar
    :meth:`StepTimer.decode_step` cost — the vectorized path replays the
    exact float operation order of :meth:`StepTimer._combine` with numpy
    elementwise arithmetic (IEEE-exact for ``+ - * /``/``min``) and
    keeps the roofline ``**`` terms in scalar Python-float form, where
    numpy's pow is *not* bit-identical.
    """

    seconds: tuple
    gpu_compute_frac: tuple
    gpu_busy_frac: tuple
    mem_bw_frac: tuple
    cpu_cores_active: tuple

    def __len__(self) -> int:
        return len(self.seconds)


#: Run-level memo bound (entries are O(n_steps) tuples; a full study grid
#: touches a few hundred distinct (batch, ctx, run-length, clock) keys).
_RUN_MEMO_CAP = 256

#: Above this magnitude integer byte counts stop being exactly
#: representable as float64 and the coefficient-times-context
#: vectorization of the KV terms would round differently; fall back to
#: the scalar path (unreachable for any realistic model/context).
_EXACT_INT_LIMIT = 2 ** 53


class StepTimer:
    """Computes :class:`StepCost` for a (model, device, precision) triple.

    Step costs are memoized per (phase, batch, context, concat-traffic,
    device operating point): the cost model is a pure function of those
    inputs, and the measurement protocol replays identical batches
    ``warmup + n_runs`` times, so all but the first batch resolve every
    step from the memo.  The operating point token captures the clock
    and core state that :func:`~repro.power.modes.apply_power_mode`
    mutates, so a timer reused across power modes never returns a stale
    cost.  The underlying FLOP/byte counts are additionally shared
    across timers via ``functools.lru_cache`` in :mod:`repro.models.flops`.
    """

    def __init__(
        self,
        arch: TransformerArchitecture,
        device: EdgeDevice,
        precision: Precision,
        params: EngineCostParams | None = None,
    ):
        self.arch = arch
        self.device = device
        self.precision = precision
        self.params = params or EngineCostParams()
        self.weight_bytes = weight_bytes(arch, precision)
        self._memo: dict = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self._run_memo: OrderedDict = OrderedDict()
        self.run_memo_hits = 0
        self.run_memo_misses = 0

    def _operating_point(self) -> tuple:
        """Everything :meth:`_combine` reads from mutable device state."""
        dev = self.device
        return (dev.gpu.freq_hz, dev.memory.freq_hz,
                dev.cpu.freq_hz, dev.cpu.online_cores)

    def _memoized(self, is_prefill: bool, batch_size: int, n_ctx: int,
                  concat_bytes: float) -> StepCost:
        key = (is_prefill, batch_size, n_ctx, concat_bytes,
               self._operating_point())
        cost = self._memo.get(key)
        if cost is not None:
            self.memo_hits += 1
            return cost
        self.memo_misses += 1
        if is_prefill:
            counts = prefill_counts(self.arch, batch_size, n_ctx,
                                    self.weight_bytes)
            cost = self._combine(counts, batch_size * n_ctx,
                                 concat_bytes=0.0, is_prefill=True)
        else:
            counts = decode_step_counts(self.arch, batch_size, n_ctx,
                                        self.weight_bytes)
            cost = self._combine(counts, batch_size,
                                 concat_bytes=concat_bytes, is_prefill=False)
        self._memo[key] = cost
        return cost

    # -- internals -----------------------------------------------------------
    def _combine(self, counts: PhaseCounts, n_tokens: int,
                 concat_bytes: float, is_prefill: bool) -> StepCost:
        p = self.params
        dev = self.device
        gpu = dev.gpu

        stream_bw = dev.memory.streaming_bandwidth() * p.bw_scale

        kv_scale = p.kv_traffic_scale
        if self.precision is Precision.INT8 and p.quant.uses_fallback(gpu, self.precision):
            kv_scale *= p.int8_kv_penalty
        traffic_mult = p.quant.weight_traffic_multiplier(gpu, self.precision)
        stream_bytes = (
            counts.weight_bytes_read * traffic_mult
            + counts.activation_bytes
            + counts.kv_bytes_written
            + concat_bytes
            + (counts.kv_bytes_read + counts.kv_expand_bytes) * kv_scale
        )
        t_mem = stream_bytes / stream_bw

        # GEMM efficiency saturates with the number of tokens in flight.
        sat = n_tokens / (n_tokens + p.gemm_sat_tokens)
        flops_rate = (
            gpu.effective_flops(self.precision)
            * p.flops_scale
            * sat
            * p.quant.math_rate_multiplier(gpu, self.precision)
        )
        t_matmul = counts.flops / flops_rate
        t_dequant = p.quant.dequant_seconds(self.arch, gpu, self.precision)
        t_actq = p.quant.activation_overhead_seconds(
            self.arch, gpu, self.precision, n_tokens
        )
        t_comp = t_matmul + t_dequant + t_actq
        # For power attribution: only ALU-saturating work counts as
        # compute; the rest of the dequant time is memory-latency stall.
        t_alu = (
            t_matmul
            + t_actq
            + t_dequant * p.quant.dequant_alu_fraction(self.precision)
        )

        t_roof = (t_mem**p.overlap_p + t_comp**p.overlap_p) ** (1.0 / p.overlap_p)
        # Kernel floors shrink with GPU clock and, partially, memory clock
        # (occupancy ramps are latency-bound).
        floor_scale = gpu.freq_ratio * dev.memory.freq_ratio**0.5
        n_kernels = self.arch.kernels_per_step
        if is_prefill:
            n_kernels += self.arch.n_layers  # attention mask/materialisation
        t_floor = n_kernels * p.kernel_floor_s / floor_scale
        t_gpu = t_roof + t_floor

        t_host = (p.host_step_s + p.host_per_seq_s * self._host_seqs(n_tokens, is_prefill)) \
            / dev.cpu.freq_ratio
        seconds = t_gpu + t_host

        busy_cap = p.quant.gpu_utilization(self.precision)
        gpu_busy = (t_gpu / seconds) * busy_cap
        denom = t_mem + t_comp
        gpu_compute = gpu_busy * (t_alu / denom if denom > 0 else 0.0)
        bytes_moved = stream_bytes
        peak_bw_now = dev.memory.peak_bandwidth * dev.memory.effective_ratio
        mem_bw_frac = min(1.0, bytes_moved / (peak_bw_now * seconds))
        # PyTorch's dispatch thread plus worker/GC threads keep a couple
        # of cores busy throughout; the serial generate loop adds more
        # while host-bound.
        cpu_cores = 2.2 + 0.8 * (t_host / seconds)
        return StepCost(
            seconds=seconds,
            t_mem=t_mem,
            t_comp=t_comp,
            t_kernel_floor=t_floor,
            t_host=t_host,
            bytes_moved=bytes_moved,
            gpu_compute_frac=gpu_compute,
            gpu_busy_frac=gpu_busy,
            mem_bw_frac=mem_bw_frac,
            cpu_cores_active=min(cpu_cores, float(dev.cpu.online_cores)),
        )

    @staticmethod
    def _host_seqs(n_tokens: int, is_prefill: bool) -> float:
        # Host post-processing is per sequence; during prefill HF does the
        # same work once for the whole batch.
        return 1.0 if is_prefill else float(n_tokens)

    # -- public --------------------------------------------------------------
    def prefill(self, batch_size: int, prompt_tokens: int) -> StepCost:
        """Cost of ingesting the prompt for the whole batch."""
        return self._memoized(True, batch_size, prompt_tokens, 0.0)

    def decode_step(self, batch_size: int, context_len: int,
                    concat_bytes: float = 0.0) -> StepCost:
        """Cost of one decode iteration at the given context length."""
        return self._memoized(False, batch_size, context_len, concat_bytes)

    def decode_run(self, batch_size: int, ctx_start: int, n_steps: int,
                   concat_coef: int = 0) -> DecodeRun:
        """Costs for ``n_steps`` consecutive decode iterations, batched.

        Token ``j`` decodes at context length ``ctx_start + j`` with
        DynamicCache concat traffic ``concat_coef * ctx + concat_coef *
        (ctx + 1)`` (``concat_coef`` is the per-context-token KV byte
        count of the whole batch; 0 for static/preallocated caches —
        exactly what :meth:`~repro.memsys.kvcache.KVCache.concat_traffic_bytes`
        feeds the scalar path).

        The whole run is computed as numpy array ops — one pass instead
        of ``n_steps`` Python-level cost evaluations — and memoized per
        (batch, ctx_start, n_steps, concat_coef, operating point).
        Subclasses that override :meth:`_combine` (e.g. the GGUF timer)
        transparently fall back to the scalar per-step path, as does any
        byte count too large for exact float64 integer arithmetic.
        """
        if n_steps <= 0:
            empty = ()
            return DecodeRun(empty, empty, empty, empty, empty)
        key = (batch_size, ctx_start, n_steps, concat_coef,
               self._operating_point())
        run = self._run_memo.get(key)
        if run is not None:
            self.run_memo_hits += 1
            self._run_memo.move_to_end(key)
            return run
        self.run_memo_misses += 1
        run = self._decode_run_compute(batch_size, ctx_start, n_steps,
                                       concat_coef)
        self._run_memo[key] = run
        if len(self._run_memo) > _RUN_MEMO_CAP:
            self._run_memo.popitem(last=False)
        return run

    def _decode_run_compute(self, batch_size: int, ctx_start: int,
                            n_steps: int, concat_coef: int) -> DecodeRun:
        arch = self.arch
        kv_spec = arch.kv_cache_spec(2)
        kv_coef = kv_spec.bytes_total(batch_size, 1)
        ctx_max = ctx_start + n_steps
        vectorizable = (
            type(self)._combine is StepTimer._combine
            and kv_coef * ctx_max < _EXACT_INT_LIMIT
            and concat_coef * 2 * (ctx_max + 1) < _EXACT_INT_LIMIT
        )
        if not vectorizable:
            costs = [
                self._memoized(False, batch_size, ctx_start + j,
                               concat_coef * (ctx_start + j)
                               + concat_coef * (ctx_start + j + 1))
                for j in range(n_steps)
            ]
            return DecodeRun(
                seconds=tuple(c.seconds for c in costs),
                gpu_compute_frac=tuple(c.gpu_compute_frac for c in costs),
                gpu_busy_frac=tuple(c.gpu_busy_frac for c in costs),
                mem_bw_frac=tuple(c.mem_bw_frac for c in costs),
                cpu_cores_active=tuple(c.cpu_cores_active for c in costs),
            )

        p = self.params
        dev = self.device
        gpu = dev.gpu
        n_tokens = batch_size

        # Scalar constants, computed with the exact expressions (and float
        # operation order) of decode_step_counts()/_combine().
        ctx = np.arange(ctx_start, ctx_max, dtype=np.float64)
        dense_flops = 2.0 * n_tokens * _matmul_params_of(arch)
        attn_coef = 4.0 * n_tokens * arch.n_layers * arch.n_heads * arch.head_dim
        flops = dense_flops + attn_coef * ctx

        kv_read = float(kv_coef) * ctx
        kv_written = float(kv_spec.bytes_total(batch_size, 1))
        if arch.gqa_ratio > 1:
            kv_tail = kv_read + (2.0 * (arch.gqa_ratio - 1)) * kv_read
        else:
            kv_tail = kv_read + 0.0
        activation = _activation_bytes_of(arch, n_tokens)

        stream_bw = dev.memory.streaming_bandwidth() * p.bw_scale
        kv_scale = p.kv_traffic_scale
        if self.precision is Precision.INT8 and p.quant.uses_fallback(gpu, self.precision):
            kv_scale *= p.int8_kv_penalty
        traffic_mult = p.quant.weight_traffic_multiplier(gpu, self.precision)
        stream_base = (
            float(self.weight_bytes) * traffic_mult
            + activation
            + kv_written
        )
        if concat_coef:
            cc = float(concat_coef)
            concat = cc * ctx + cc * (ctx + 1.0)
        else:
            concat = 0.0
        stream_bytes = stream_base + concat + kv_tail * kv_scale
        t_mem = stream_bytes / stream_bw

        sat = n_tokens / (n_tokens + p.gemm_sat_tokens)
        flops_rate = (
            gpu.effective_flops(self.precision)
            * p.flops_scale
            * sat
            * p.quant.math_rate_multiplier(gpu, self.precision)
        )
        t_matmul = flops / flops_rate
        t_dequant = p.quant.dequant_seconds(arch, gpu, self.precision)
        t_actq = p.quant.activation_overhead_seconds(
            arch, gpu, self.precision, n_tokens
        )
        t_comp = t_matmul + t_dequant + t_actq
        t_alu = t_matmul + t_actq + t_dequant * p.quant.dequant_alu_fraction(self.precision)

        # numpy's elementwise ** is not bit-identical to Python's float
        # pow — keep the roofline in scalar Python-float form.
        pw = p.overlap_p
        inv_pw = 1.0 / p.overlap_p
        t_roof = np.array(
            [(m ** pw + c ** pw) ** inv_pw
             for m, c in zip(t_mem.tolist(), t_comp.tolist())],
            dtype=np.float64,
        )
        floor_scale = gpu.freq_ratio * dev.memory.freq_ratio**0.5
        t_floor = arch.kernels_per_step * p.kernel_floor_s / floor_scale
        t_gpu = t_roof + t_floor

        t_host = (p.host_step_s + p.host_per_seq_s * self._host_seqs(n_tokens, False)) \
            / dev.cpu.freq_ratio
        seconds = t_gpu + t_host

        busy_cap = p.quant.gpu_utilization(self.precision)
        gpu_busy = (t_gpu / seconds) * busy_cap
        denom = t_mem + t_comp
        ratio = np.divide(t_alu, denom, out=np.zeros_like(t_alu),
                          where=denom > 0)
        gpu_compute = gpu_busy * ratio
        peak_bw_now = dev.memory.peak_bandwidth * dev.memory.effective_ratio
        mem_bw_frac = np.minimum(1.0, stream_bytes / (peak_bw_now * seconds))
        cpu_cores = 2.2 + 0.8 * (t_host / seconds)
        cpu_active = np.minimum(cpu_cores, float(dev.cpu.online_cores))
        return DecodeRun(
            seconds=tuple(seconds.tolist()),
            gpu_compute_frac=tuple(gpu_compute.tolist()),
            gpu_busy_frac=tuple(gpu_busy.tolist()),
            mem_bw_frac=tuple(mem_bw_frac.tolist()),
            cpu_cores_active=tuple(cpu_active.tolist()),
        )
