"""Phase-split serving across two devices (Splitwise-style; paper ref [11]).

The paper cites Splitwise for the observation that prefill is
compute-bound while decode is memory-bound; Splitwise's proposal is to
run the two phases on different machines, shipping the prompt's KV
cache across a link.  This module simulates that split with this repo's
calibrated cost models: a *prefill device* ingests prompts, transfers
the KV cache, and a *decode device* generates — pipelined, so prefill
of batch N+1 overlaps decode of batch N.

It answers the §4 question "does coupling the edge box with a second
device pay?" quantitatively: the split wins when the prefill share of a
collocated run exceeds the KV-transfer cost, i.e. long prompts and
short generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.hardware.device import EdgeDevice
from repro.models.architecture import TransformerArchitecture
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class SplitServingResult:
    """Steady-state comparison of collocated vs phase-split serving."""

    collocated_batch_s: float
    prefill_stage_s: float
    kv_transfer_s: float
    decode_stage_s: float
    #: Pipelined steady-state seconds per batch for the split setup.
    split_batch_s: float
    #: Throughput gain of the split over collocated (>1 means split wins).
    speedup: float
    #: End-to-end latency of one batch through the split pipeline.
    split_latency_s: float


def simulate_phase_split(
    prefill_device: EdgeDevice,
    decode_device: EdgeDevice,
    arch: TransformerArchitecture,
    precision: Precision,
    batch_size: int = 32,
    gen: GenerationSpec = GenerationSpec(256, 64),
    link_bytes_per_s: float = 10e9 / 8,  # 10 GbE
    params: Optional[EngineCostParams] = None,
) -> SplitServingResult:
    """Steady-state throughput of split vs collocated serving.

    Both devices hold a copy of the model (Splitwise's deployment).  In
    steady state the split pipeline's batch period is the *max* of its
    three stages; collocated serving pays prefill + decode in series.
    """
    if link_bytes_per_s <= 0:
        raise ExperimentError("link bandwidth must be positive")

    pre_timer = StepTimer(arch, prefill_device, precision, params)
    dec_timer = StepTimer(arch, decode_device, precision, params)

    prefill_s = pre_timer.prefill(batch_size, gen.input_tokens).seconds

    kv_bytes = arch.kv_cache_spec().bytes_total(batch_size, gen.input_tokens)
    transfer_s = kv_bytes / link_bytes_per_s

    decode_s = 0.0
    for step in range(gen.output_tokens):
        context = gen.input_tokens + step
        spec = arch.kv_cache_spec()
        concat = spec.bytes_total(batch_size, context) + spec.bytes_total(
            batch_size, context + 1
        )
        decode_s += dec_timer.decode_step(batch_size, context,
                                          concat_bytes=concat).seconds

    # Collocated: the decode device does everything in series.
    collocated_prefill_s = dec_timer.prefill(batch_size, gen.input_tokens).seconds
    collocated_s = collocated_prefill_s + decode_s

    split_period = max(prefill_s, transfer_s, decode_s)
    split_latency = prefill_s + transfer_s + decode_s
    return SplitServingResult(
        collocated_batch_s=collocated_s,
        prefill_stage_s=prefill_s,
        kv_transfer_s=transfer_s,
        decode_stage_s=decode_s,
        split_batch_s=split_period,
        speedup=collocated_s / split_period,
        split_latency_s=split_latency,
    )


def split_break_even_prompt_tokens(
    prefill_device: EdgeDevice,
    decode_device: EdgeDevice,
    arch: TransformerArchitecture,
    precision: Precision,
    batch_size: int = 32,
    output_tokens: int = 64,
    link_bytes_per_s: float = 10e9 / 8,
    max_prompt: int = 8192,
    params: Optional[EngineCostParams] = None,
) -> Optional[int]:
    """Smallest prompt length at which the split beats collocated by >10%.

    Returns None if it never does within ``max_prompt`` (e.g. the link
    is too slow or generations are long enough that decode dominates).
    """
    prompt = 64
    while prompt <= max_prompt:
        res = simulate_phase_split(
            prefill_device, decode_device, arch, precision,
            batch_size=batch_size,
            gen=GenerationSpec(prompt, output_tokens),
            link_bytes_per_s=link_bytes_per_s,
            params=params,
        )
        if res.speedup > 1.1:
            return prompt
        prompt *= 2
    return None
