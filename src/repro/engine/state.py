"""Live engine state shared with the telemetry sampler."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.model import ComponentUtilization


@dataclass
class EngineState:
    """What the engine is doing *right now* (sim time).

    The executor updates this at phase boundaries; the jtop-style
    sampler reads it every 2 s of simulated time to produce the power
    trace, exactly as the real tooling samples a running board.
    """

    phase: str = "idle"
    util: ComponentUtilization = field(default_factory=ComponentUtilization.idle)

    def set(self, phase: str, util: ComponentUtilization) -> None:
        self.phase = phase
        self.util = util

    def set_idle(self) -> None:
        self.phase = "idle"
        self.util = ComponentUtilization.idle()
