"""Batch descriptors and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ExperimentError


@dataclass(frozen=True)
class GenerationSpec:
    """How much to generate per sequence.

    The paper's sequence-length convention: ``input_tokens`` prompt
    tokens, ``output_tokens`` generated tokens, total = sl.
    """

    input_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ExperimentError("input/output token counts must be >= 1")

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass(frozen=True)
class BatchRequest:
    """One batch of prompts to run through the engine."""

    batch_size: int
    gen: GenerationSpec

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ExperimentError("batch size must be >= 1")

    @property
    def total_tokens(self) -> int:
        """Input + output tokens across the batch (throughput numerator)."""
        return self.batch_size * self.gen.total_tokens


@dataclass
class BatchResult:
    """Measured outcome of one batch."""

    request: BatchRequest
    latency_s: float
    prefill_s: float
    decode_s: float
    oom: bool = False
    #: Per-decode-step durations (for tail analysis).
    step_seconds: List[float] = field(default_factory=list)

    @property
    def throughput_tok_s(self) -> float:
        """The paper's token throughput: (input+output tokens) / latency."""
        if self.oom or self.latency_s <= 0:
            return 0.0
        return self.request.total_tokens / self.latency_s

    @property
    def time_per_output_token_s(self) -> Optional[float]:
        if self.oom or not self.step_seconds:
            return None
        return sum(self.step_seconds) / len(self.step_seconds)
