"""The prefill/decode loop as a discrete-event process.

One :class:`BatchExecutor` runs one batch: it allocates workspace and the
KV cache through the caching allocator (so fragmentation and OOM emerge
from the same mechanisms as on the real board), advances simulated time
per engine step using :class:`~repro.engine.kernels.StepTimer`, and
publishes utilization to :class:`~repro.engine.state.EngineState` for
the power sampler.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.engine.kernels import StepTimer
from repro.engine.request import BatchRequest, BatchResult
from repro.engine.state import EngineState
from repro.errors import OutOfMemoryError
from repro.memsys.allocator import Allocation, CachingAllocator
from repro.memsys.fastpath import TRAJECTORY_CACHE, StreamSpec, apply_delta
from repro.memsys.kvcache import KVCache
from repro.obs import kinds
from repro.obs.span import NULL_OBSERVER, Observer
from repro.power.model import ComponentUtilization
from repro.sim.environment import Environment
from repro.sim.tracing import Trace


def _util_of(cost) -> ComponentUtilization:
    return ComponentUtilization(
        gpu_compute=cost.gpu_compute_frac,
        gpu_busy=cost.gpu_busy_frac,
        mem_bw=cost.mem_bw_frac,
        cpu_cores_active=cost.cpu_cores_active,
    )


class BatchExecutor:
    """Runs one :class:`BatchRequest` on the simulation.

    Parameters
    ----------
    timer:
        Cost model bound to (model, device, precision).
    allocator:
        The device allocator (shared with model weights).
    kv_mode:
        ``"dynamic"`` (HF DynamicCache, the paper's setup) or
        ``"static"`` (pre-allocated; ablation).
    fast_forward:
        If True (default), decode steps are collapsed: instead of one
        simulated event per generated token, steps are advanced in plain
        Python up to the next scheduled simulation event (power-sampler
        tick, end of batch) and a single absolute-time timeout covers
        the whole stretch.  Timestamps are accumulated in the same float
        order as the step-by-step path and scheduled via
        :meth:`~repro.sim.environment.Environment.timeout_at`, so every
        observable — latencies, sampler readings, energy, memory peaks —
        is bit-identical to ``fast_forward=False`` (property-tested in
        ``tests/engine/test_fast_forward.py``).  Disable when another
        process may interrupt this one mid-batch: fast-forward commits
        KV/allocator state ahead of the simulated clock within a
        stretch, which is only safe while no other process can observe
        or preempt the executor between events.
    eager_score_buffers:
        If True (legacy eager-attention models, i.e. Phi-2), hold
        per-layer full-context score buffers whose footprint grows
        quadratically with context — the phenomenological model of the
        Phi-2 memory blow-up and its sl>=512 OOM (see DESIGN.md).
    workspace_bytes:
        Fixed + batch-dependent runtime workspace to hold for the run.
    """

    def __init__(
        self,
        timer: StepTimer,
        allocator: CachingAllocator,
        kv_mode: str = "dynamic",
        eager_score_buffers: Optional[bool] = None,
        workspace_bytes: int = 0,
        fast_forward: bool = True,
    ):
        self.timer = timer
        self.allocator = allocator
        self.kv_mode = kv_mode
        arch = timer.arch
        if eager_score_buffers is None:
            eager_score_buffers = arch.attention_impl == "eager"
        self.eager_score_buffers = eager_score_buffers
        self.workspace_bytes = int(workspace_bytes)
        self.fast_forward = fast_forward
        #: Batches served by the memoized-trajectory fast path (tests).
        self.fastpath_batches = 0

    # -- memory helpers ------------------------------------------------------
    def _make_kv(self, batch_size: int, gen):
        """KV cache for one batch — the hook runtime backends override.

        The returned object must expose the growth protocol the decode
        loop drives: ``prefill(n)``, ``append_token()``, ``seq_len``,
        ``concat_traffic_bytes()`` and ``release()``.
        """
        return KVCache(
            self.timer.arch.kv_cache_spec(),
            self.allocator,
            batch_size=batch_size,
            mode=self.kv_mode,
            max_seq_len=gen.total_tokens if self.kv_mode == "static" else None,
        )

    def _eager_bytes(self, batch_size: int, context: int) -> int:
        arch = self.timer.arch
        # fp16 scores + fp32 softmax upcast per layer, all layers resident.
        return batch_size * arch.n_layers * arch.n_heads * context * context * 6

    def _activation_bytes(self, batch_size: int) -> int:
        arch = self.timer.arch
        per_seq = (4 * arch.hidden_size + 2 * arch.intermediate_size) * 2
        logits = arch.vocab_size * 4 * 2  # fp32 logits + softmax scratch
        return batch_size * (per_seq + logits)

    # -- the process -----------------------------------------------------------
    def run(
        self,
        env: Environment,
        request: BatchRequest,
        state: EngineState,
        trace: Optional[Trace] = None,
        obs: Observer = NULL_OBSERVER,
        track: str = "engine",
    ):
        """Generator process: yields timeouts; returns a BatchResult.

        On simulated OOM the result is returned with ``oom=True`` (all
        held memory is released first), mirroring a caught
        ``torch.cuda.OutOfMemoryError``.

        ``obs`` receives one prefill span and one decode span per
        fast-forward stretch (or per token in step mode), stamped with
        the same simulated timestamps either path produces — observing
        a run never perturbs its numbers.
        """
        bs = request.batch_size
        gen = request.gen
        result = BatchResult(request=request, latency_s=0.0, prefill_s=0.0, decode_s=0.0)
        start = env.now

        if self.fast_forward and self._fastpath_eligible():
            # The whole batch's allocator trajectory is timing-independent:
            # resolve it (memoized) and apply the end state up front, then
            # emit the exact same events/timestamps the loop below would.
            return (yield from self._run_trajectory(
                env, request, state, result, start, trace, obs, track))

        held: List[Allocation] = []
        kv = None
        eager_buf: Optional[Allocation] = None
        try:
            held.append(
                self.allocator.alloc(
                    self.workspace_bytes + self._activation_bytes(bs), tag="workspace"
                )
            )
            kv = self._make_kv(bs, gen)

            # ---- prefill ----
            kv.prefill(gen.input_tokens)
            if self.eager_score_buffers:
                eager_buf = self.allocator.alloc(
                    self._eager_bytes(bs, gen.input_tokens), tag="eager-scores"
                )
            cost = self.timer.prefill(bs, gen.input_tokens)
            state.set("prefill", _util_of(cost))
            prefill_start = env.now
            yield env.timeout(cost.seconds)
            result.prefill_s = cost.seconds
            if obs.enabled:
                obs.complete(kinds.PREFILL, prefill_start, env.now,
                             cat=kinds.CAT_ENGINE, track=track, batch=bs,
                             tokens=gen.input_tokens)
            if trace is not None:
                trace.record(env.now, kinds.PREFILL,
                             seconds=cost.seconds, batch=bs)

            # ---- decode ----
            if self.fast_forward:
                # Collapse decode steps between scheduled events: advance
                # KV/allocator state and accumulate step times in plain
                # Python, then yield one absolute-time timeout per
                # stretch.  The stretch ends at the step whose interval
                # contains the next heap event (a power-sampler tick), so
                # the sampler always reads the utilization of the step in
                # progress at its tick — exactly as step-by-step would.
                # Timestamps accumulate left-to-right from env.now, the
                # same float-addition order the per-token path produces.
                remaining = gen.output_tokens
                while remaining:
                    horizon = env.peek()
                    t = env.now
                    stretch_start = env.now
                    stretch_tokens = remaining
                    cost = None
                    pending_oom: Optional[OutOfMemoryError] = None
                    while remaining:
                        try:
                            context = kv.seq_len
                            concat = kv.concat_traffic_bytes()
                            kv.append_token()
                            if self.eager_score_buffers:
                                assert eager_buf is not None
                                buf, eager_buf = eager_buf, None
                                self.allocator.free(buf)
                                eager_buf = self.allocator.alloc(
                                    self._eager_bytes(bs, kv.seq_len),
                                    tag="eager-scores",
                                )
                        except OutOfMemoryError as exc:
                            # Surface the OOM only after simulated time
                            # has caught up with the completed steps, so
                            # the recorded latency matches step-by-step.
                            pending_oom = exc
                            break
                        cost = self.timer.decode_step(bs, context,
                                                      concat_bytes=concat)
                        t = t + cost.seconds
                        result.step_seconds.append(cost.seconds)
                        remaining -= 1
                        if t >= horizon:
                            break
                    if cost is not None:
                        state.set("decode", _util_of(cost))
                        yield env.timeout_at(t)
                        if obs.enabled:
                            # One span per fast-forward stretch: same
                            # endpoints the per-token path would span,
                            # so traces stay bit-identical in content.
                            obs.complete(
                                kinds.DECODE, stretch_start, env.now,
                                cat=kinds.CAT_ENGINE, track=track, batch=bs,
                                tokens=stretch_tokens - remaining,
                            )
                    if pending_oom is not None:
                        raise pending_oom
            else:
                for _ in range(gen.output_tokens):
                    context = kv.seq_len
                    concat = kv.concat_traffic_bytes()
                    kv.append_token()
                    if self.eager_score_buffers:
                        assert eager_buf is not None
                        # Free-then-alloc: the runtime reuses the buffer in
                        # place when it can; only the footprint grows.  Clear
                        # the reference first so an OOM here cannot cause a
                        # double free in the cleanup path.
                        buf, eager_buf = eager_buf, None
                        self.allocator.free(buf)
                        eager_buf = self.allocator.alloc(
                            self._eager_bytes(bs, kv.seq_len), tag="eager-scores"
                        )
                    cost = self.timer.decode_step(bs, context, concat_bytes=concat)
                    state.set("decode", _util_of(cost))
                    step_start = env.now
                    yield env.timeout(cost.seconds)
                    result.step_seconds.append(cost.seconds)
                    if obs.enabled:
                        obs.complete(kinds.DECODE, step_start, env.now,
                                     cat=kinds.CAT_ENGINE, track=track,
                                     batch=bs, tokens=1)
            result.decode_s = sum(result.step_seconds)
            result.latency_s = env.now - start
        except OutOfMemoryError:
            result.oom = True
            result.latency_s = env.now - start
        finally:
            state.set_idle()
            if eager_buf is not None:
                self.allocator.free(eager_buf)
            if kv is not None:
                kv.release()
            for h in held:
                self.allocator.free(h)
        return result

    # -- memoized-trajectory fast path --------------------------------------
    def _fastpath_eligible(self) -> bool:
        """The trajectory replay assumes the stock KV growth protocol on
        the stock allocator; backends that override either (e.g. the
        paged executor's block pool) keep the generic loop above."""
        return (
            type(self)._make_kv is BatchExecutor._make_kv
            and type(self.allocator) is CachingAllocator
            and self.kv_mode in ("dynamic", "static")
        )

    def _run_trajectory(self, env, request, state, result, start, trace,
                        obs, track):
        """Fast-forward one batch via a memoized allocator trajectory.

        Identical observables to the generic loop in :meth:`run`: the
        allocator ends in the same state (same segments, stats and
        peaks, via :class:`~repro.memsys.fastpath.TrajectoryDelta`), and
        timing/spans/utilization are emitted from the vectorized
        :meth:`~repro.engine.kernels.StepTimer.decode_run` with
        timestamps accumulated in the same float order (``np.cumsum`` is
        bit-identical to the sequential left fold).
        """
        bs = request.batch_size
        gen = request.gen
        kv_spec = self.timer.arch.kv_cache_spec()
        static = self.kv_mode == "static"
        n_out = gen.output_tokens
        if self.eager_score_buffers:
            eager_prefill = self._eager_bytes(bs, gen.input_tokens)
            eager_steps = tuple(self._eager_bytes(bs, gen.input_tokens + j + 1)
                                for j in range(n_out))
        else:
            eager_prefill = None
            eager_steps = ()
        stream = StreamSpec(
            workspace_bytes=self.workspace_bytes + self._activation_bytes(bs),
            n_kv_tensors=2 * kv_spec.n_layers,
            kv_prefill_bytes=kv_spec.layer_tensor_bytes(
                bs, gen.total_tokens if static else gen.input_tokens),
            kv_step_bytes=() if static else tuple(
                kv_spec.layer_tensor_bytes(bs, gen.input_tokens + j + 1)
                for j in range(n_out)),
            eager_prefill_bytes=eager_prefill,
            eager_step_bytes=eager_steps,
            n_tokens=n_out,
        )
        delta = TRAJECTORY_CACHE.delta_for(self.allocator, stream)
        apply_delta(self.allocator, delta)
        self.fastpath_batches += 1
        try:
            if delta.oom is not None and delta.oom[0] == "setup":
                # The generic path raises before its first yield; no
                # prefill span, zero elapsed time.
                result.oom = True
                result.latency_s = env.now - start
                return result

            # ---- prefill ----
            cost = self.timer.prefill(bs, gen.input_tokens)
            state.set("prefill", _util_of(cost))
            prefill_start = env.now
            yield env.timeout(cost.seconds)
            result.prefill_s = cost.seconds
            if obs.enabled:
                obs.complete(kinds.PREFILL, prefill_start, env.now,
                             cat=kinds.CAT_ENGINE, track=track, batch=bs,
                             tokens=gen.input_tokens)
            if trace is not None:
                trace.record(env.now, kinds.PREFILL,
                             seconds=cost.seconds, batch=bs)

            # ---- decode ----
            n_timed = delta.oom[1] if delta.oom is not None else n_out
            if n_timed:
                concat_coef = 0 if static else kv_spec.bytes_total(bs, 1)
                run = self.timer.decode_run(bs, gen.input_tokens, n_timed,
                                            concat_coef)
                sec = run.seconds
                ts = np.cumsum(np.concatenate(
                    ((env.now,), np.asarray(sec, dtype=np.float64))))[1:]
                i = 0
                while i < n_timed:
                    horizon = env.peek()
                    stretch_start = env.now
                    # First step whose completion time reaches the next
                    # scheduled event ends the stretch (inclusive) —
                    # the `t >= horizon` break of the generic loop.
                    end = int(np.searchsorted(ts, horizon, side="left")) + 1
                    if end <= i:
                        end = i + 1
                    if end > n_timed:
                        end = n_timed
                    result.step_seconds.extend(sec[i:end])
                    last = end - 1
                    state.set("decode", ComponentUtilization(
                        gpu_compute=run.gpu_compute_frac[last],
                        gpu_busy=run.gpu_busy_frac[last],
                        mem_bw=run.mem_bw_frac[last],
                        cpu_cores_active=run.cpu_cores_active[last],
                    ))
                    yield env.timeout_at(float(ts[last]))
                    if obs.enabled:
                        obs.complete(kinds.DECODE, stretch_start, env.now,
                                     cat=kinds.CAT_ENGINE, track=track,
                                     batch=bs, tokens=end - i)
                    i = end
            if delta.oom is not None:
                result.oom = True
                result.latency_s = env.now - start
                return result
            result.decode_s = sum(result.step_seconds)
            result.latency_s = env.now - start
            return result
        finally:
            state.set_idle()
