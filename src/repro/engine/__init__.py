"""The simulated inference runtime.

Mirrors the paper's serving stack (PyTorch + HF ``generate`` on the
device) as a discrete-event simulation:

- :mod:`repro.engine.kernels` — the per-step cost model (roofline with
  partial overlap, kernel-execution floors, host-side overheads,
  quantization kernel costs) and its calibratable parameters.
- :mod:`repro.engine.request` — batch descriptors and results.
- :mod:`repro.engine.state` — live engine state the power sampler reads.
- :mod:`repro.engine.executor` — the prefill/decode loop as a DES
  process, driving the caching allocator for weights/KV/workspace.
- :mod:`repro.engine.runtime` — :class:`ServingEngine`, the public API:
  load a model at a precision on a device, run batched workloads with
  the paper's warmup + 5-run protocol, collect metrics.
"""

from repro.engine.kernels import EngineCostParams, StepCost, StepTimer
from repro.engine.request import BatchRequest, BatchResult, GenerationSpec
from repro.engine.runtime import RunResult, ServingEngine
from repro.engine.state import EngineState
from repro.engine.scheduler import (
    ContinuousBatchScheduler,
    ServeRequest,
    ServingReport,
    StaticBatchScheduler,
    poisson_workload,
)
from repro.engine.splitwise import SplitServingResult, simulate_phase_split
from repro.engine.sustained import SustainedSample, run_sustained

__all__ = [
    "ContinuousBatchScheduler",
    "ServeRequest",
    "ServingReport",
    "SplitServingResult",
    "StaticBatchScheduler",
    "poisson_workload",
    "simulate_phase_split",
    "BatchRequest",
    "BatchResult",
    "EngineCostParams",
    "EngineState",
    "GenerationSpec",
    "RunResult",
    "ServingEngine",
    "StepCost",
    "StepTimer",
    "SustainedSample",
    "run_sustained",
]
