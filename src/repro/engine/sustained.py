"""Sustained serving with thermal feedback (extension beyond the paper).

The paper measures short sessions; §4 calls out sustained serving as
future work.  This module closes the loop: batches run back-to-back,
each batch's power heats the lumped thermal model, and when the junction
crosses the throttle point the GPU clock steps down (and recovers with
hysteresis) — showing where MAXN's headline throughput is *not*
sustainable on a passively cooled board while a reduced power mode is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.kernels import EngineCostParams, StepTimer
from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.hardware.device import EdgeDevice
from repro.hardware.thermal import ThermalModel
from repro.models.architecture import TransformerArchitecture
from repro.power.model import ComponentUtilization, PowerModel
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class SustainedSample:
    """State after one batch of a sustained session."""

    t_end_s: float
    batch_latency_s: float
    throughput_tok_s: float
    power_w: float
    temp_c: float
    throttled: bool


def run_sustained(
    device: EdgeDevice,
    arch: TransformerArchitecture,
    precision: Precision,
    duration_s: float,
    batch_size: int = 32,
    gen: GenerationSpec = GenerationSpec(32, 64),
    thermal: Optional[ThermalModel] = None,
    params: Optional[EngineCostParams] = None,
    power_model: Optional[PowerModel] = None,
) -> List[SustainedSample]:
    """Serve batches back-to-back for ``duration_s`` simulated seconds.

    The device's GPU clock is modulated by the thermal model's throttle
    multiplier between batches.  Returns one sample per completed batch.
    """
    if duration_s <= 0:
        raise ExperimentError("duration must be positive")
    thermal = thermal or ThermalModel()
    power_model = power_model or PowerModel()
    timer = StepTimer(arch, device, precision, params)

    nominal_gpu_hz = device.gpu.freq_hz
    samples: List[SustainedSample] = []
    now = 0.0
    while now < duration_s:
        target = max(
            device.gpu.min_freq_hz, nominal_gpu_hz * thermal.freq_multiplier
        )
        device.gpu.set_freq(target)

        prefill = timer.prefill(batch_size, gen.input_tokens)
        latency = prefill.seconds
        # Decode at the mid-context cost (costs are near-linear in t).
        mid = gen.input_tokens + gen.output_tokens // 2
        step = timer.decode_step(batch_size, mid)
        latency += step.seconds * gen.output_tokens

        util = ComponentUtilization(
            gpu_compute=step.gpu_compute_frac,
            gpu_busy=step.gpu_busy_frac,
            mem_bw=step.mem_bw_frac,
            cpu_cores_active=step.cpu_cores_active,
        )
        watts = power_model.power_w(device, util)
        temp = thermal.advance(watts, latency)
        now += latency
        samples.append(
            SustainedSample(
                t_end_s=now,
                batch_latency_s=latency,
                throughput_tok_s=batch_size * gen.total_tokens / latency,
                power_w=watts,
                temp_c=temp,
                throttled=thermal.throttled,
            )
        )
    device.gpu.set_freq(nominal_gpu_hz)
    return samples
