"""Analytic-vs-DES cross-validation: ``repro plan --validate``.

The fluid planner is only trustworthy if it tracks the discrete-event
simulator it abstracts.  This module replays a workload × router ×
runtime grid through *both* tiers — the DES via
:class:`~repro.cluster.cluster.EdgeCluster`, the analytic tier via
:func:`repro.plan.fluid.integrate` fed the **same deterministic
arrival trace** — and reports per-cell relative error on steady
throughput and mean request latency.  The committed CSV under
``benchmarks/results/`` is the evidence behind the planner's stated
error budget; CI re-runs the grid and byte-diffs it.

Feeding the exact arrival times (rather than the fluid arrival-process
approximation) isolates the error the planner actually adds: the
continuous-service relaxation.  Divergence sources are catalogued in
``docs/mechanisms.md`` §14.
"""

from __future__ import annotations

import dataclasses
import io
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cache import payload_fingerprint
from repro.errors import ConfigError
from repro.plan import spec as _planspec
from repro.plan.fluid import integrate
from repro.plan.rates import ServiceRates

#: Relative-error tolerance the committed grid is held to, and the
#: fraction of cells that must land inside it (both metrics at once).
DEFAULT_TOLERANCE = 0.15
DEFAULT_PASS_FRACTION = 0.90

#: The validation workloads: name -> (generator kind, parameters).
#: Rates are sized for a 2-node llama3.1-8b fp16 fleet (~60-70 tok/s
#: per node at batch 8): the grid spans comfortably-stable through
#: near-saturation operating points.
VALIDATION_WORKLOADS: Dict[str, Dict] = {
    "poisson-low": {"kind": "poisson", "rate_per_s": 0.8},
    "poisson-high": {"kind": "poisson", "rate_per_s": 1.5},
    "bursty": {"kind": "bursty", "rate_calm_per_s": 0.6,
               "rate_burst_per_s": 2.4},
    "diurnal": {"kind": "diurnal", "mean_rate_per_s": 1.0},
}


@dataclass(frozen=True)
class ValidationSpec:
    """One analytic-vs-DES validation grid (frozen, content-addressable)."""

    model: str = "llama3.1-8b"
    device: str = "jetson-orin-agx-64gb"
    precision: str = "fp16"
    power_mode: str = "MAXN"
    nodes: int = 2
    n_requests: int = 60
    input_tokens: int = 64
    output_tokens: int = 64
    max_batch: int = 8
    workloads: Tuple[str, ...] = tuple(VALIDATION_WORKLOADS)
    routers: Tuple[str, ...] = ("round-robin", "jsq", "least-kv")
    runtimes: Tuple[str, ...] = ("hf-transformers", "paged", "gguf")
    tolerance: float = DEFAULT_TOLERANCE
    seed: int = 0

    def __post_init__(self) -> None:
        from repro.backends import get_backend
        from repro.cluster.router import get_router
        from repro.hardware import get_device
        from repro.models import get_model

        get_model(self.model)
        get_device(self.device)
        if not self.workloads or not self.routers or not self.runtimes:
            raise ConfigError("validation axes must be non-empty")
        for w in self.workloads:
            if w not in VALIDATION_WORKLOADS:
                known = ", ".join(sorted(VALIDATION_WORKLOADS))
                raise ConfigError(
                    f"unknown validation workload {w!r}; known: {known}")
        for r in self.routers:
            get_router(r)
        for rt in self.runtimes:
            get_backend(rt)
        if self.nodes < 1 or self.n_requests < 1:
            raise ConfigError("nodes and n_requests must be >= 1")
        if not 0.0 < self.tolerance < 1.0:
            raise ConfigError("tolerance must be in (0, 1)")

    def cache_key(self) -> str:
        """Content address folding the fluid-model version."""
        payload = dataclasses.asdict(self)
        # Read through the module so a PLAN_VERSION bump invalidates
        # validation artifacts too, not just plan ones.
        payload["plan_version"] = _planspec.PLAN_VERSION
        return payload_fingerprint(payload)


@dataclass
class ValidationReport:
    """All grid cells plus the pass/fail roll-up."""

    spec: ValidationSpec
    rows: List[Dict] = dataclasses.field(default_factory=list)

    @property
    def within_fraction(self) -> float:
        """Fraction of cells with both metrics inside the tolerance."""
        if not self.rows:
            return 0.0
        ok = sum(1 for r in self.rows if r["within_tol"])
        return ok / len(self.rows)

    def table(self) -> str:
        """Aligned text table of the rows (stable formatting)."""
        if not self.rows:
            return ""
        cols = list(self.rows[0])
        widths = {c: max(len(c), *(len(str(r[c])) for r in self.rows))
                  for c in cols}
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in self.rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)


def _make_workload(spec: ValidationSpec, name: str) -> List:
    from repro.cluster.workload import (
        bursty_workload,
        diurnal_workload,
        poisson_workload,
    )

    cfg = VALIDATION_WORKLOADS[name]
    shape = dict(input_tokens=spec.input_tokens,
                 output_tokens=spec.output_tokens, seed=spec.seed)
    if cfg["kind"] == "poisson":
        return poisson_workload(cfg["rate_per_s"], spec.n_requests, **shape)
    if cfg["kind"] == "bursty":
        return bursty_workload(cfg["rate_calm_per_s"],
                               cfg["rate_burst_per_s"],
                               spec.n_requests, **shape)
    return diurnal_workload(cfg["mean_rate_per_s"], spec.n_requests, **shape)


def _rel_err(analytic: float, des: float) -> float:
    if des <= 0:
        return 0.0 if analytic <= 0 else float("inf")
    return abs(analytic - des) / des


def _run_cell(spec: ValidationSpec, workload_name: str, router: str,
              runtime: str) -> Dict:
    from repro.cluster import EdgeCluster, FleetSpec, NodeSpec

    workload = _make_workload(spec, workload_name)
    fleet = FleetSpec.of(
        [NodeSpec(spec.device, power_mode=spec.power_mode,
                  max_batch=spec.max_batch, runtime=runtime)
         for _ in range(spec.nodes)],
        model=spec.model, precision=spec.precision, policy=router,
    )
    cluster = EdgeCluster.of(fleet)
    report = cluster.run(workload)
    done = [r for r in report.requests if r.latency_s is not None]
    des_latency = (sum(r.latency_s for r in done) / len(done)
                   if done else 0.0)

    rates = ServiceRates(spec.model, spec.precision, runtime,
                         device=spec.device, power_mode=spec.power_mode)
    est = integrate(rates, [r.arrival_s for r in workload],
                    spec.input_tokens, spec.output_tokens,
                    nodes=spec.nodes, max_batch=spec.max_batch)

    tput_err = _rel_err(est.throughput_tok_s, report.throughput_tok_s)
    lat_err = _rel_err(est.latency_s, des_latency)
    return {
        "workload": workload_name,
        "router": router,
        "runtime": runtime,
        "des_tput_tok_s": round(report.throughput_tok_s, 2),
        "fluid_tput_tok_s": round(est.throughput_tok_s, 2),
        "tput_rel_err": round(tput_err, 4),
        "des_latency_s": round(des_latency, 3),
        "fluid_latency_s": round(est.latency_s, 3),
        "latency_rel_err": round(lat_err, 4),
        "des_makespan_s": round(report.makespan_s, 2),
        "fluid_makespan_s": round(est.makespan_s, 2),
        "within_tol": bool(tput_err <= spec.tolerance
                           and lat_err <= spec.tolerance),
    }


def run_validation(spec: ValidationSpec) -> ValidationReport:
    """Replay the whole grid through both tiers (deterministic order)."""
    report = ValidationReport(spec=spec)
    for workload_name in spec.workloads:
        for router in spec.routers:
            for runtime in spec.runtimes:
                report.rows.append(
                    _run_cell(spec, workload_name, router, runtime))
    return report


def validation_rows_csv(report: ValidationReport) -> str:
    """Canonical CSV of the grid (what CI byte-diffs and gates on)."""
    buf = io.StringIO()
    if not report.rows:
        return ""
    cols = list(report.rows[0])
    buf.write(",".join(cols) + "\n")
    for r in report.rows:
        buf.write(",".join(str(r[c]) for c in cols) + "\n")
    return buf.getvalue()
