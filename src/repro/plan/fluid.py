"""The fluid/ODE approximation of one node's serving dynamics.

The DES serve loop alternates two activities on one server: serial
prompt prefills for newly admitted requests (batch 1, ``p`` seconds
each) and whole-batch decode steps (``d(b, c)`` seconds, one token per
active request).  The fluid model replaces the discrete requests with
two continuous levels — ``Q(t)`` waiting and ``N(t)`` running — and
moves probability mass between them at the calibrated rates:

- arrivals raise ``Q`` (rate ``lambda``, or impulse arrivals when a
  concrete trace is supplied);
- admission drains ``Q`` into ``N`` at the serial-prefill rate
  ``1/p``, gated by the concurrency bound ``B = min(max_batch,
  M_total / tokens-per-request)``;
- decode drains ``N`` at the completion rate ``N / (d(N, c(N)) *
  L_out)`` using whatever server time prefill left in the slice.

The batch context follows the DES's ``max`` rule in expectation: with
``b`` staggered requests the oldest has generated ``L_out * b/(b+1)``
tokens, so ``c(b) = L_in + round(L_out * b/(b+1))``.

Two entry points share that state machine.  :func:`steady_state` solves
the fixed point directly (microseconds — the capacity search's inner
loop), and :func:`integrate` runs an explicit Euler pass over a
concrete arrival trace (milliseconds), which is what the DES
cross-validation compares against.  Where the fluid view knowingly
diverges from the DES — deterministic admission ignores queueing noise,
the mean-context rule ignores context spread, thermal feedback is
checked but not fed back — is catalogued in ``docs/mechanisms.md``
section 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.plan.rates import ServiceRates

#: Mass below which a fluid level counts as drained.
_EPS = 1e-9

#: Hard ceiling on Euler steps; reached only when an overloaded queue
#: refuses to drain (the estimate is then flagged unstable).
_MAX_STEPS = 2_000_000


@dataclass(frozen=True)
class FluidEstimate:
    """Steady-state (or trace-horizon) predictions for one fleet."""

    stable: bool
    nodes: int
    #: Steady (or time-averaged) running batch per node.
    batch: float
    #: Busy fraction of each node's server.
    utilization: float
    #: Fleet decode tokens per second.
    throughput_tok_s: float
    ttft_s: float
    tpot_s: float
    latency_s: float
    #: Fleet average power draw (idle floor included).
    watts: float
    j_per_token: float
    #: Steady KV occupancy per node, in cache tokens.
    kv_tokens: float
    #: M_total per node, in cache tokens.
    kv_capacity_tokens: int
    #: B: the sustainable per-node running-batch bound.
    concurrency_cap: int
    #: Fleet decode-token capacity ceiling (tokens/s).
    capacity_tok_s: float
    #: Whether steady power would push the lumped RC model past its
    #: throttle point (the fluid model does not feed this back).
    throttle_risk: bool = False
    #: Horizon of the trace integration (0 for steady-state solves).
    makespan_s: float = 0.0


def _context_at(batch: int, input_tokens: int, output_tokens: int) -> int:
    """Expected DES context (max over staggered active requests)."""
    return input_tokens + int(round(output_tokens * batch / (batch + 1)))


def _infeasible(rates: ServiceRates, nodes: int, cap: int) -> FluidEstimate:
    idle = rates.idle_watts() if rates.fits else 0.0
    return FluidEstimate(
        stable=False, nodes=nodes, batch=0.0, utilization=0.0,
        throughput_tok_s=0.0, ttft_s=math.inf, tpot_s=math.inf,
        latency_s=math.inf, watts=idle * nodes, j_per_token=math.inf,
        kv_tokens=0.0, kv_capacity_tokens=rates.kv_capacity_tokens,
        concurrency_cap=cap, capacity_tok_s=0.0)


def steady_state(
    rates: ServiceRates,
    rate_per_s: float,
    input_tokens: int,
    output_tokens: int,
    nodes: int = 1,
    max_batch: int = 8,
) -> FluidEstimate:
    """Solve the fluid fixed point under constant fleet arrivals.

    The stability condition is the operations-research one: per-node
    token demand ``lambda * L_out`` must not exceed the decode capacity
    left after prefill takes its ``lambda * p`` share of server time,
    at the largest batch the M_total/B budgets allow.
    """
    if rate_per_s <= 0 or nodes < 1:
        raise ConfigError("need a positive rate and >= 1 node")
    if input_tokens < 1 or output_tokens < 1:
        raise ConfigError("token counts must be >= 1")
    cap = rates.concurrency_cap(input_tokens, output_tokens, max_batch)
    if cap < 1:
        return _infeasible(rates, nodes, cap)

    lam = rate_per_s / nodes
    p = rates.prefill_cost(input_tokens).seconds
    phi_p = lam * p  # prefill's share of server time

    def d_of(b: int) -> float:
        return rates.decode_cost(
            b, _context_at(b, input_tokens, output_tokens)).seconds

    demand_tok = lam * output_tokens
    capacity_tok = (1.0 - phi_p) * cap / d_of(cap) if phi_p < 1.0 else 0.0
    if phi_p >= 1.0 or demand_tok > capacity_tok:
        est = _infeasible(rates, nodes, cap)
        steady_w = rates.watts(rates.decode_cost(
            cap, _context_at(cap, input_tokens, output_tokens)))
        return FluidEstimate(
            stable=False, nodes=nodes, batch=float(cap), utilization=1.0,
            throughput_tok_s=capacity_tok * nodes, ttft_s=math.inf,
            tpot_s=d_of(cap) / max(1.0 - phi_p, _EPS), latency_s=math.inf,
            watts=steady_w * nodes,
            j_per_token=(steady_w / capacity_tok if capacity_tok > 0
                         else math.inf),
            kv_tokens=float(cap * rates.reservation_tokens(
                input_tokens, output_tokens)),
            kv_capacity_tokens=est.kv_capacity_tokens,
            concurrency_cap=cap, capacity_tok_s=capacity_tok * nodes)

    # Little's-law fixed point: N = demand * d(N) / (1 - phi_p).
    n_run = 1.0
    for _ in range(64):
        b = max(1, min(cap, int(math.ceil(n_run - _EPS))))
        n_new = min(float(cap), demand_tok * d_of(b) / (1.0 - phi_p))
        if abs(n_new - n_run) < 1e-9:
            n_run = n_new
            break
        n_run = n_new
    b = max(1, min(cap, int(math.ceil(n_run - _EPS))))
    d_s = d_of(b)

    tpot = d_s / (1.0 - phi_p)
    ttft = p + d_s
    latency = ttft + (output_tokens - 1) * tpot
    busy_dec = demand_tok * d_s / b
    util = min(1.0, phi_p + busy_dec)

    w_pre = rates.watts(rates.prefill_cost(input_tokens))
    w_dec = rates.watts(rates.decode_cost(
        b, _context_at(b, input_tokens, output_tokens)))
    w_idle = rates.idle_watts()
    node_w = phi_p * w_pre + busy_dec * w_dec + (1.0 - util) * w_idle
    thermal_risk = _steady_throttle_risk(rates, node_w)
    return FluidEstimate(
        stable=True, nodes=nodes, batch=n_run, utilization=util,
        throughput_tok_s=demand_tok * nodes, ttft_s=ttft, tpot_s=tpot,
        latency_s=latency, watts=node_w * nodes,
        j_per_token=node_w / demand_tok,
        kv_tokens=n_run * rates.reservation_tokens(
            input_tokens, output_tokens),
        kv_capacity_tokens=rates.kv_capacity_tokens,
        concurrency_cap=cap, capacity_tok_s=capacity_tok * nodes,
        throttle_risk=thermal_risk)


def _steady_throttle_risk(rates: ServiceRates, node_watts: float) -> bool:
    """Would sustained ``node_watts`` cross the stock RC throttle point?

    The fluid model checks the equilibrium temperature but does not
    model the clock feedback; a risky cell is flagged so the planner
    can warn rather than silently over-promise.
    """
    from repro.hardware.thermal import ThermalModel

    t = ThermalModel()
    return t.steady_state_c(node_watts) >= t.throttle_temp_c


@dataclass
class _NodeTrace:
    """Per-node integrals of one Euler pass (for fleet aggregation)."""

    n_requests: int
    makespan_s: float
    tokens: float
    int_q: float      # ∫ Q dt  (queue-wait mass)
    int_sys: float    # ∫ (Q+N) dt  (total sojourn mass)
    int_n: float      # ∫ N dt  (decode-residence mass)
    busy_s: float
    energy_j: float
    mean_step_s: float
    drained: bool


def _integrate_node(
    rates: ServiceRates,
    arrivals: Sequence[float],
    input_tokens: int,
    output_tokens: int,
    cap: int,
) -> _NodeTrace:
    """Explicit Euler pass over one node's concrete arrival times.

    Service is fluid but completion is Lagrangian: the integrator keeps
    a decode *step counter* ``S`` advancing at ``1/d(b)`` steps per
    busy second, and each admitted parcel of mass completes exactly
    ``L_out`` steps after its admission stamp — the continuous-batching
    invariant the DES enforces (every decode step gives every running
    request one token).  Draining mass proportionally instead would
    shrink the batch before its requests actually finish and
    systematically understate the tail throughput.
    """
    n = len(arrivals)
    p = rates.prefill_cost(input_tokens).seconds
    w_pre = rates.watts(rates.prefill_cost(input_tokens))
    w_idle = rates.idle_watts()
    d_cap = rates.decode_cost(
        cap, _context_at(cap, input_tokens, output_tokens)).seconds
    dt = max(1e-3, min(0.5, d_cap))

    t = 0.0
    q = 0.0
    running = 0.0
    steps = 0.0          # S: decode steps completed so far
    active: list = []    # FIFO of [admit_step, mass] parcels
    i = 0
    tokens = 0.0
    int_q = int_sys = int_n = 0.0
    busy = energy = 0.0
    d_time_sum = d_weight = 0.0
    drained = True
    for _ in range(_MAX_STEPS):
        if i >= n and q + running <= 1e-6:
            break
        while i < n and arrivals[i] < t + dt:
            q += 1.0
            i += 1
        want = min(q, float(cap) - running)
        t_pre = min(dt, max(0.0, want) * p) if p > 0 else 0.0
        adm = t_pre / p if p > 0 else max(0.0, want)
        if adm > _EPS:
            q -= adm
            running += adm
            active.append([steps, adm])
        t_dec = dt - t_pre
        energy += w_pre * t_pre
        int_n += running * dt
        int_sys += (q + running) * dt
        int_q += q * dt
        if running > _EPS and t_dec > 0:
            b = max(1, min(cap, int(round(running))))
            cost = rates.decode_cost(
                b, _context_at(b, input_tokens, output_tokens))
            d_step = steps
            steps += t_dec / cost.seconds
            tokens += running * (steps - d_step)
            d_time_sum += cost.seconds * t_dec
            d_weight += t_dec
            busy += t_pre + t_dec
            energy += rates.watts(cost) * t_dec
            while active and active[0][0] + output_tokens <= steps:
                running -= active.pop(0)[1]
            running = max(0.0, running)
        else:
            energy += w_idle * t_dec
            busy += t_pre
        t += dt
    else:
        drained = False
    return _NodeTrace(
        n_requests=n, makespan_s=t, tokens=tokens, int_q=int_q,
        int_sys=int_sys, int_n=int_n, busy_s=busy, energy_j=energy,
        mean_step_s=(d_time_sum / d_weight if d_weight > 0 else 0.0),
        drained=drained)


def integrate(
    rates: ServiceRates,
    arrivals: Sequence[float],
    input_tokens: int,
    output_tokens: int,
    nodes: int = 1,
    max_batch: int = 8,
    router: Optional[str] = None,
) -> FluidEstimate:
    """Fluid-integrate a concrete arrival trace over a homogeneous fleet.

    Arrivals are split round-robin across the nodes — for a homogeneous
    fleet every load-balancing router in the DES (round-robin, jsq,
    least-kv, energy-aware) converges to an even split, so one fluid
    split serves the whole router axis (``router`` is accepted for
    symmetry and ignored).  Fleet metrics recombine via Little's law:
    total sojourn mass over requests gives mean latency, queue mass
    gives the waiting part of TTFT.
    """
    if not arrivals:
        raise ConfigError("need at least one arrival")
    if nodes < 1:
        raise ConfigError("need >= 1 node")
    cap = rates.concurrency_cap(input_tokens, output_tokens, max_batch)
    if cap < 1:
        return _infeasible(rates, nodes, cap)
    times = sorted(float(a) for a in arrivals)
    traces = []
    for k in range(nodes):
        node_arr = times[k::nodes]
        if node_arr:
            traces.append(_integrate_node(
                rates, node_arr, input_tokens, output_tokens, cap))
    n_total = sum(tr.n_requests for tr in traces)
    makespan = max(tr.makespan_s for tr in traces)
    tokens = sum(tr.tokens for tr in traces)
    # Nodes that drain early idle (at idle watts) until the fleet ends,
    # exactly like their DES power samplers keep integrating.
    w_idle = rates.idle_watts()
    energy = sum(tr.energy_j + w_idle * (makespan - tr.makespan_s)
                 for tr in traces)
    # Idle nodes beyond the trace count (possible when nodes > requests).
    energy += w_idle * makespan * (nodes - len(traces))
    p = rates.prefill_cost(input_tokens).seconds
    mean_step = (sum(tr.mean_step_s * tr.n_requests for tr in traces)
                 / n_total)
    ttft = sum(tr.int_q for tr in traces) / n_total + p + mean_step
    latency = sum(tr.int_sys for tr in traces) / n_total
    tpot = (sum(tr.int_n for tr in traces) / tokens) if tokens > 0 else 0.0
    util = sum(tr.busy_s for tr in traces) / (nodes * makespan)
    batch = sum(tr.int_n for tr in traces) / (len(traces) * makespan)
    stable = all(tr.drained for tr in traces)
    node_w = energy / makespan / nodes
    return FluidEstimate(
        stable=stable, nodes=nodes, batch=batch, utilization=util,
        throughput_tok_s=tokens / makespan, ttft_s=ttft, tpot_s=tpot,
        latency_s=latency, watts=energy / makespan,
        j_per_token=energy / tokens if tokens > 0 else math.inf,
        kv_tokens=batch * rates.reservation_tokens(
            input_tokens, output_tokens),
        kv_capacity_tokens=rates.kv_capacity_tokens,
        concurrency_cap=cap,
        capacity_tok_s=nodes * cap / rates.decode_cost(
            cap, _context_at(cap, input_tokens, output_tokens)).seconds,
        throttle_risk=_steady_throttle_risk(rates, node_w),
        makespan_s=makespan)
