"""``PlanSpec`` and the capacity search behind ``repro plan``.

One frozen spec describes the question an operator asks before buying
or re-flashing hardware: *this model, this traffic, this SLO — what do
I deploy?*  :func:`plan` answers it analytically: for every candidate
(runtime, precision, power mode) it solves the fluid steady state at
increasing node counts until the SLO holds with headroom, then ranks
the feasible configurations by node count and fleet watts.  A full
search over the default axes answers in well under a second — the
whole point of the analytic tier — and every number it emits comes
from the same calibrated :class:`~repro.engine.kernels.StepTimer`
costs the DES replays, so ``repro plan --validate`` can hold it to a
measured error budget.

The engine-probing feasibility searches that used to live in
``repro.core.planner`` are methods here (:meth:`PlanSpec.feasibility`,
:meth:`PlanSpec.max_batch_size`, :meth:`PlanSpec.max_seq_len`); the
old function signatures survive as ``DeprecationWarning`` shims.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cache import payload_fingerprint
from repro.errors import ConfigError
from repro.plan.fluid import FluidEstimate, steady_state
from repro.plan.rates import ServiceRates

#: Bump when the fluid model's semantics change (folded into cache keys
#: so committed artifacts never silently mix model generations).
PLAN_VERSION = 1


@dataclass(frozen=True)
class PlanSpec:
    """One capacity-planning question (frozen, content-addressable)."""

    model: str = "llama3.1-8b"
    device: str = "jetson-orin-agx-64gb"
    # -- traffic ---------------------------------------------------------
    rate_per_s: float = 2.0
    input_tokens: int = 64
    output_tokens: int = 64
    # -- SLO targets (None disables a dimension) -------------------------
    slo_ttft_s: Optional[float] = 10.0
    slo_tpot_s: Optional[float] = 1.0
    slo_e2e_s: Optional[float] = None
    # -- candidate axes the search ranges over ---------------------------
    runtimes: Tuple[str, ...] = ("hf-transformers", "paged", "gguf")
    precisions: Tuple[str, ...] = ("fp16",)
    power_modes: Tuple[str, ...] = ("MAXN",)
    max_nodes: int = 8
    max_batch: int = 8
    #: Refuse operating points busier than this (stochastic queueing the
    #: fluid model cannot see blows up near saturation).
    max_utilization: float = 0.9
    #: Optional carbon objective (``repro.sustain``): the deployment
    #: region's grid intensity in g CO₂/kWh.  When set, every row gains
    #: a ``g_per_token`` column and the winner ranking appends it after
    #: nodes and watts; when None (the default) the plan is byte-for-
    #: byte what it always was.
    carbon_gco2_per_kwh: Optional[float] = None

    def __post_init__(self) -> None:
        from repro.backends import get_backend
        from repro.hardware import get_device
        from repro.models import get_model
        from repro.power.modes import get_power_mode
        from repro.quant.dtypes import Precision

        get_model(self.model)        # typed error on unknown names,
        get_device(self.device)      # each listing the known set
        if not self.runtimes or not self.precisions or not self.power_modes:
            raise ConfigError("candidate axes must be non-empty")
        for rt in self.runtimes:
            get_backend(rt)
        for prec in self.precisions:
            Precision.parse(prec)
        for mode in self.power_modes:
            get_power_mode(mode)
        if self.rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        if self.input_tokens < 1 or self.output_tokens < 1:
            raise ConfigError("token counts must be >= 1")
        if self.max_nodes < 1 or self.max_batch < 1:
            raise ConfigError("max_nodes and max_batch must be >= 1")
        if not 0.0 < self.max_utilization <= 1.0:
            raise ConfigError("max_utilization must be in (0, 1]")
        for name in ("slo_ttft_s", "slo_tpot_s", "slo_e2e_s"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ConfigError(f"{name} must be positive")
        if (self.carbon_gco2_per_kwh is not None
                and self.carbon_gco2_per_kwh <= 0):
            raise ConfigError("carbon_gco2_per_kwh must be positive")

    def cache_key(self) -> str:
        """Content address folding the fluid-model version."""
        payload = dataclasses.asdict(self)
        payload["plan_version"] = PLAN_VERSION
        return payload_fingerprint(payload)

    # -- engine-probing feasibility (the folded legacy planner) ----------
    def max_batch_size(self, upper: int = 4096) -> Optional[int]:
        """Largest engine-feasible batch at this spec's request shape."""
        from repro.engine.request import GenerationSpec
        from repro.plan.feasibility import probe_max_batch
        from repro.quant.dtypes import Precision

        return probe_max_batch(
            self.model, Precision.parse(self.precisions[0]), self.device,
            GenerationSpec(self.input_tokens, self.output_tokens), upper)

    def max_seq_len(self, batch_size: int = 32,
                    input_fraction: float = 0.25,
                    upper: int = 65536) -> Optional[int]:
        """Longest engine-feasible total sequence at ``batch_size``."""
        from repro.plan.feasibility import probe_max_seq_len
        from repro.quant.dtypes import Precision

        return probe_max_seq_len(
            self.model, Precision.parse(self.precisions[0]), self.device,
            batch_size, input_fraction, upper)

    def feasibility(self, upper_batch: int = 4096, batch_size: int = 32,
                    input_fraction: float = 0.25,
                    upper_seq: int = 65536):
        """Both OOM boundaries in one :class:`FeasibilityEnvelope`."""
        from repro.plan.feasibility import FeasibilityEnvelope

        bs = self.max_batch_size(upper=upper_batch)
        sl = (self.max_seq_len(batch_size=batch_size,
                               input_fraction=input_fraction,
                               upper=upper_seq)
              if bs is not None else None)
        return FeasibilityEnvelope(max_batch_size=bs, max_seq_len=sl)


@dataclass
class PlanReport:
    """Capacity-search outcome: one row per candidate, best first marked.

    ``chosen`` is the feasible row with the fewest nodes (fleet watts
    breaking ties); ``None`` when nothing inside the axes meets the SLO.
    """

    spec: PlanSpec
    rows: List[Dict] = dataclasses.field(default_factory=list)
    chosen: Optional[Dict] = None

    def table(self) -> str:
        """Aligned text table of the rows (stable formatting)."""
        if not self.rows:
            return ""
        cols = list(self.rows[0])
        widths = {c: max(len(c), *(len(str(r[c])) for r in self.rows))
                  for c in cols}
        lines = ["  ".join(c.ljust(widths[c]) for c in cols)]
        for r in self.rows:
            lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
        return "\n".join(lines)


def _fin(value: float, digits: int) -> object:
    """Round finite values; render unbounded ones as ``inf``."""
    return "inf" if math.isinf(value) else round(value, digits)


def _meets_slo(spec: PlanSpec, est: FluidEstimate) -> bool:
    if not est.stable or est.utilization > spec.max_utilization:
        return False
    if spec.slo_ttft_s is not None and est.ttft_s > spec.slo_ttft_s:
        return False
    if spec.slo_tpot_s is not None and est.tpot_s > spec.slo_tpot_s:
        return False
    if spec.slo_e2e_s is not None and est.latency_s > spec.slo_e2e_s:
        return False
    return True


def _row_of(spec: PlanSpec, runtime: str, precision: str, mode: str,
            est: FluidEstimate, feasible: bool) -> Dict:
    row = {
        "runtime": runtime,
        "precision": precision,
        "power_mode": mode,
        "nodes": est.nodes,
        "slo_ok": feasible,
        "stable": est.stable,
        "batch": round(est.batch, 2),
        "utilization": round(est.utilization, 3),
        "throughput_tok_s": round(est.throughput_tok_s, 1),
        "capacity_tok_s": round(est.capacity_tok_s, 1),
        "ttft_s": _fin(est.ttft_s, 3),
        "tpot_s": _fin(est.tpot_s, 4),
        "latency_s": _fin(est.latency_s, 2),
        "watts": round(est.watts, 1),
        "j_per_token": _fin(est.j_per_token, 4),
        "kv_tokens": round(est.kv_tokens, 1),
        "kv_cap_tokens": est.kv_capacity_tokens,
        "throttle_risk": est.throttle_risk,
    }
    if spec.carbon_gco2_per_kwh is not None:
        from repro.sustain.trace import J_PER_KWH

        row["g_per_token"] = _fin(
            est.j_per_token / J_PER_KWH * spec.carbon_gco2_per_kwh, 6)
    return row


def plan(spec: PlanSpec) -> PlanReport:
    """Run the capacity search over the spec's candidate axes.

    For each (runtime, precision, power mode) the search walks node
    counts upward and keeps the first fleet size that meets the SLO
    with utilization headroom; candidates that never fit (weights
    exceed the board) or never stabilise inside ``max_nodes`` appear
    with ``slo_ok=False`` at ``max_nodes`` so the table still shows
    *why* they lost.
    """
    report = PlanReport(spec=spec)
    for runtime in spec.runtimes:
        for precision in spec.precisions:
            for mode in spec.power_modes:
                rates = ServiceRates(
                    spec.model, precision, runtime,
                    device=spec.device, power_mode=mode)
                best: Optional[FluidEstimate] = None
                feasible = False
                for nodes in range(1, spec.max_nodes + 1):
                    est = steady_state(
                        rates, spec.rate_per_s, spec.input_tokens,
                        spec.output_tokens, nodes=nodes,
                        max_batch=spec.max_batch)
                    best = est
                    if _meets_slo(spec, est):
                        feasible = True
                        break
                report.rows.append(_row_of(
                    spec, runtime, precision, mode, best, feasible))
    winners = [r for r in report.rows if r["slo_ok"]]
    if winners:
        def rank(r: Dict):
            key = [r["nodes"], r["watts"]]
            if spec.carbon_gco2_per_kwh is not None:
                g = r["g_per_token"]
                key.append(math.inf if g == "inf" else g)
            return tuple(key)

        report.chosen = min(winners, key=rank)
    return report
