"""Service-rate extraction: one operating point -> calibrated rates.

The fluid planner does not invent its own cost model.  A
:class:`ServiceRates` binds the exact objects a
:class:`~repro.cluster.node.ClusterNode` would build for a (model,
precision, runtime, device, power mode) tuple — the backend's
:class:`~repro.engine.kernels.StepTimer`, the
:class:`~repro.power.model.PowerModel`, and the node's natural KV
budget — and exposes them as the per-phase rates the ODE needs:
seconds per prompt prefill, seconds per decode step at a batch and
context, watts for each, and the M_total/B token budgets.  Because the
DES reads the same timer through the same backend hooks (DynamicCache
concat traffic included), analytic and discrete-event predictions can
only diverge through the *dynamics* approximation, never through the
cost model.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import resolve_backend
from repro.cluster.node import natural_kv_budget
from repro.engine.kernels import EngineCostParams, StepCost
from repro.errors import ConfigError
from repro.models import get_model
from repro.power.model import ComponentUtilization, PowerModel
from repro.power.modes import device_at_mode
from repro.quant.dtypes import Precision


class ServiceRates:
    """Calibrated prefill/decode rates at one operating point.

    Construction applies the power mode to a fresh device instance, so
    every cost below is evaluated at exactly the clocks and core counts
    the DES node would run — including the GGUF backend's host-loop
    timer subclass and the paged backend's zero concat traffic.
    """

    def __init__(
        self,
        model: str,
        precision: str,
        runtime: str,
        device: str = "jetson-orin-agx-64gb",
        power_mode: str = "MAXN",
        params: Optional[EngineCostParams] = None,
        power_model: Optional[PowerModel] = None,
    ):
        self.model = model
        self.runtime = runtime
        self.power_mode = power_mode
        self.arch = get_model(model)
        self.precision = Precision.parse(precision)
        self.backend = resolve_backend(runtime)
        self.device = device_at_mode(device, power_mode)
        self.timer = self.backend.make_timer(
            self.arch, self.device, self.precision, params)
        self.power_model = power_model or PowerModel()
        self.kv_per_token = (
            self.arch.kv_cache_spec().bytes_per_token_per_layer
            * self.arch.n_layers
        )
        #: Natural KV budget (may be <= 0 when weights alone overflow).
        self.kv_budget_bytes = natural_kv_budget(
            self.device, self.backend, self.arch, self.precision)

    @property
    def fits(self) -> bool:
        """True iff the weights leave any KV budget on the board."""
        return self.kv_budget_bytes > 0

    @property
    def kv_capacity_tokens(self) -> int:
        """M_total: the KV budget expressed in cache tokens."""
        if not self.fits:
            return 0
        return self.kv_budget_bytes // self.kv_per_token

    # -- per-phase costs ---------------------------------------------------
    def prefill_cost(self, prompt_tokens: int) -> StepCost:
        """One request's prompt ingestion (the node prefills at bs=1)."""
        return self.timer.prefill(1, max(1, prompt_tokens))

    def decode_cost(self, batch: int, context: int) -> StepCost:
        """One decode iteration, with the backend's concat traffic —
        the same call the node's serve loop issues."""
        concat = self.backend.decode_concat_bytes(
            self.kv_per_token * batch * context)
        return self.timer.decode_step(batch, context, concat_bytes=concat)

    def watts(self, cost: StepCost) -> float:
        """Board power while executing ``cost`` (CMOS decomposition)."""
        return self.power_model.power_w(
            self.device, ComponentUtilization.from_step_cost(cost))

    def idle_watts(self) -> float:
        return self.power_model.power_w(
            self.device, ComponentUtilization.idle())

    # -- budgets -----------------------------------------------------------
    def reservation_tokens(self, input_tokens: int,
                           output_tokens: int) -> int:
        """KV tokens one request occupies at steady state.

        Reservation backends (hf/gguf) charge the whole lifetime at
        admission; the paged backend admits by prompt blocks and grows,
        so its sustainable occupancy is the staggered-batch mean — the
        prompt plus half the output, block-rounded.
        """
        if self.backend.admits_by_free_blocks:
            nbytes = self.backend.live_kv_bytes(
                input_tokens, output_tokens // 2, output_tokens,
                self.kv_per_token)
        else:
            nbytes = self.backend.request_kv_reservation(
                input_tokens, output_tokens, self.kv_per_token)
        return max(1, nbytes // self.kv_per_token)

    def concurrency_cap(self, input_tokens: int, output_tokens: int,
                        max_batch: int = 8) -> int:
        """B: the sustainable running-batch bound — the node's batch cap
        clipped by how many requests the KV budget can hold at once."""
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if not self.fits:
            return 0
        by_kv = self.kv_capacity_tokens // self.reservation_tokens(
            input_tokens, output_tokens)
        return min(max_batch, by_kv)
