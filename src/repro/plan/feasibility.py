"""Engine-probing feasibility search (the legacy ``core.planner`` logic).

These searches answer the paper's OOM-cell questions by probing the
*actual simulated engine* (same allocator, same buffers): the largest
batch at a sequence length, the longest sequence at a batch.  They are
exact where the fluid planner is approximate, and slow where it is
fast — a handful of engine runs per probe.  The public surface is
:meth:`repro.plan.PlanSpec.feasibility` and friends; the historical
function-style entry points in :mod:`repro.core.planner` delegate here
behind ``DeprecationWarning`` shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.request import GenerationSpec
from repro.errors import ExperimentError
from repro.quant.dtypes import Precision


@dataclass(frozen=True)
class FeasibilityEnvelope:
    """The OOM boundary of one (model, precision, device) triple.

    ``None`` means even the smallest probe OOMed (the weights alone
    exceed the board).
    """

    max_batch_size: Optional[int]
    max_seq_len: Optional[int]


def engine_feasible(model: str, precision: Precision, device: str,
                    batch_size: int, gen: GenerationSpec) -> bool:
    """Does one engine run at this configuration complete without OOM?

    Probed at the board's *native* operating point (``power_mode=None``):
    the OOM boundary depends on memory capacity, not clocks, and the
    paper's named modes carry AGX clock values that the smaller family
    members (Orin NX, Nano) cannot apply.
    """
    from repro.core.experiment import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        model=model, precision=precision, device=device,
        batch_size=batch_size, gen=gen, n_runs=1, warmup=0,
        power_mode=None,
    )
    return not run_experiment(spec).oom


def probe_max_batch(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    gen: GenerationSpec = GenerationSpec(32, 64),
    upper: int = 4096,
) -> Optional[int]:
    """Largest feasible batch size at ``gen``; None if even bs=1 OOMs."""
    if upper < 1:
        raise ExperimentError("upper bound must be >= 1")
    if not engine_feasible(model, precision, device, 1, gen):
        return None
    # Exponential probe then binary search.
    lo, hi = 1, 2
    while hi <= upper and engine_feasible(model, precision, device, hi, gen):
        lo, hi = hi, hi * 2
    if hi > upper:
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if engine_feasible(model, precision, device, mid, gen):
            lo = mid
        else:
            hi = mid
    return lo


def probe_max_seq_len(
    model: str,
    precision: Precision,
    device: str = "jetson-orin-agx-64gb",
    batch_size: int = 32,
    input_fraction: float = 0.25,
    upper: int = 65536,
) -> Optional[int]:
    """Longest feasible total sequence length at ``batch_size``.

    Sequence lengths follow the paper's convention: ``input_fraction``
    of the total is prompt, the rest generated.  Returns None if even
    sl=8 OOMs.
    """
    if not (0.0 < input_fraction < 1.0):
        raise ExperimentError("input_fraction must be in (0, 1)")

    def gen_for(sl: int) -> GenerationSpec:
        inp = max(1, int(sl * input_fraction))
        return GenerationSpec(inp, max(1, sl - inp))

    if not engine_feasible(model, precision, device, batch_size, gen_for(8)):
        return None
    lo, hi = 8, 16
    while hi <= upper and engine_feasible(model, precision, device,
                                          batch_size, gen_for(hi)):
        lo, hi = hi, hi * 2
    if hi > upper:
        return lo
    while hi - lo > 8:
        mid = (lo + hi) // 2
        if engine_feasible(model, precision, device, batch_size,
                           gen_for(mid)):
            lo = mid
        else:
            hi = mid
    return lo
