"""Analytic capacity planning: the fluid tier above the DES.

The discrete-event simulator answers "what happens if I run exactly
this"; this package answers the question operators ask first — "what
should I run?"  A fluid/ODE approximation of the serving dynamics
turns the same calibrated :class:`~repro.engine.kernels.StepTimer`
costs into closed-form steady-state predictions (throughput, TTFT,
latency, utilization, J/token) and a sub-second capacity search over
runtime × precision × power-mode × node-count
(:class:`PlanSpec` / :func:`plan`).  ``repro plan --validate`` holds
the approximation to a measured error budget against the DES.

Modules
-------
- :mod:`repro.plan.rates` — operating point -> calibrated service rates.
- :mod:`repro.plan.fluid` — the ODE: closed-form steady state and the
  trace-driven Euler integrator.
- :mod:`repro.plan.spec` — :class:`PlanSpec`, the capacity search.
- :mod:`repro.plan.feasibility` — engine-probing OOM envelope (the
  folded legacy ``core.planner``).
- :mod:`repro.plan.validate` — the analytic-vs-DES error grid.
"""

from repro.plan.feasibility import (
    FeasibilityEnvelope,
    engine_feasible,
    probe_max_batch,
    probe_max_seq_len,
)
from repro.plan.fluid import FluidEstimate, integrate, steady_state
from repro.plan.rates import ServiceRates
from repro.plan.spec import PLAN_VERSION, PlanReport, PlanSpec, plan
from repro.plan.validate import (
    DEFAULT_PASS_FRACTION,
    DEFAULT_TOLERANCE,
    VALIDATION_WORKLOADS,
    ValidationReport,
    ValidationSpec,
    run_validation,
    validation_rows_csv,
)

__all__ = [
    "DEFAULT_PASS_FRACTION",
    "DEFAULT_TOLERANCE",
    "FeasibilityEnvelope",
    "FluidEstimate",
    "PLAN_VERSION",
    "PlanReport",
    "PlanSpec",
    "ServiceRates",
    "VALIDATION_WORKLOADS",
    "ValidationReport",
    "ValidationSpec",
    "engine_feasible",
    "integrate",
    "plan",
    "probe_max_batch",
    "probe_max_seq_len",
    "run_validation",
    "steady_state",
    "validation_rows_csv",
]
